"""Central configuration objects.

Every calibration constant in the reproduction lives here, in one of a
handful of frozen dataclasses, so experiments can be described as pure data
and the mapping back to the paper's Section IV (Methodology) stays
auditable.  The defaults reproduce the paper's test datacenter:

* 2U servers with 4x Xeon E7-4809 v4 (32 cores), 100 W idle / 500 W peak;
* 4.0 L of commercial paraffin wax at 35.7 deg C melting point per server;
* 20 deg C nominal inlet air, lumped air-path resistance calibrated so the
  round-robin cluster peaks *just below* the melt point (paper Fig. 9);
* a 1-minute wax model / scheduler update period (Section IV-A).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .errors import ConfigurationError


@dataclass(frozen=True)
class ServerConfig:
    """Physical and electrical description of one server (Section IV-A)."""

    sockets: int = 4
    cores_per_socket: int = 8
    idle_power_w: float = 100.0
    peak_power_w: float = 500.0

    @property
    def cores(self) -> int:
        """Total physical cores in the server."""
        return self.sockets * self.cores_per_socket

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigurationError("server must have at least one core")
        if self.idle_power_w < 0:
            raise ConfigurationError("idle power must be non-negative")
        if self.peak_power_w <= self.idle_power_w:
            raise ConfigurationError("peak power must exceed idle power")


@dataclass(frozen=True)
class WaxConfig:
    """Per-server PCM deployment (Section IV-A, 'Wax Placement').

    The paper deploys 4.0 liters of commercial paraffin (melting point
    35.7 deg C, the lowest commercially available) split across four
    aluminum containers behind the CPU heat sinks.
    """

    volume_liters: float = 4.0
    density_kg_per_m3: float = 880.0
    melt_temp_c: float = 35.7
    latent_heat_j_per_kg: float = 230e3
    specific_heat_solid_j_per_kg_k: float = 2100.0
    specific_heat_liquid_j_per_kg_k: float = 2400.0

    @property
    def mass_kg(self) -> float:
        """Wax mass per server."""
        return self.volume_liters / 1000.0 * self.density_kg_per_m3

    @property
    def latent_capacity_j(self) -> float:
        """Total latent heat storage per server (J)."""
        return self.mass_kg * self.latent_heat_j_per_kg

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.volume_liters < 0:
            raise ConfigurationError("wax volume must be non-negative")
        if self.density_kg_per_m3 <= 0:
            raise ConfigurationError("wax density must be positive")
        if self.latent_heat_j_per_kg < 0:
            raise ConfigurationError("latent heat must be non-negative")
        if (self.specific_heat_solid_j_per_kg_k <= 0
                or self.specific_heat_liquid_j_per_kg_k <= 0):
            raise ConfigurationError("specific heats must be positive")

    def scaled_latent(self, factor: float) -> "WaxConfig":
        """Return a copy with the heat of fusion scaled by ``factor``.

        Used by the GV -> VMT mapping derivation (Table II), which matches
        the hot group's available storage by modifying the heat of fusion.
        """
        if factor < 0:
            raise ConfigurationError("latent scale factor must be >= 0")
        return dataclasses.replace(
            self, latent_heat_j_per_kg=self.latent_heat_j_per_kg * factor)

    def with_melt_temp(self, melt_temp_c: float) -> "WaxConfig":
        """Return a copy with a different physical melting temperature."""
        return dataclasses.replace(self, melt_temp_c=melt_temp_c)


@dataclass(frozen=True)
class ThermalConfig:
    """Lumped thermal parameters of the server air path and wax coupling.

    ``r_air_c_per_w`` is the steady-state temperature rise of the air at
    the wax per watt of IT power; ``tau_air_s`` is the first-order time
    constant of that air node; ``ha_w_per_k`` is the convective
    conductance between the air and the wax containers.  Defaults are
    calibrated per DESIGN.md Section 4.
    """

    inlet_temp_c: float = 20.0
    inlet_stdev_c: float = 0.0
    r_air_c_per_w: float = 0.068
    tau_air_s: float = 300.0
    ha_w_per_k: float = 14.0
    air_sensor_noise_c: float = 0.5
    wax_sensor_noise_c: float = 0.2

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.r_air_c_per_w <= 0:
            raise ConfigurationError("air thermal resistance must be positive")
        if self.tau_air_s <= 0:
            raise ConfigurationError("air time constant must be positive")
        if self.ha_w_per_k < 0:
            raise ConfigurationError("air-wax conductance must be >= 0")
        if self.inlet_stdev_c < 0:
            raise ConfigurationError("inlet stdev must be >= 0")
        if self.air_sensor_noise_c < 0 or self.wax_sensor_noise_c < 0:
            raise ConfigurationError("sensor noise must be >= 0")


@dataclass(frozen=True)
class HardwareClass:
    """One server hardware class a fleet site can deploy.

    The paper's cluster is 1,000 *identical* CPU servers; real fleets
    mix generations and accelerators.  A hardware class bundles the two
    per-server knobs the physics consumes -- the power curve
    (:class:`ServerConfig`, feeding ``LinearPowerModel``) and the PCM
    loadout (:class:`WaxConfig`, feeding ``PCMBank``) -- under a stable
    name, so heterogeneous sites stay declarative data.
    """

    name: str
    server: ServerConfig = field(default_factory=ServerConfig)
    wax: WaxConfig = field(default_factory=WaxConfig)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if not self.name:
            raise ConfigurationError("hardware class needs a name")
        self.server.validate()
        self.wax.validate()

    def apply_to(self, config: "SimulationConfig") -> "SimulationConfig":
        """A copy of ``config`` running on this hardware class."""
        return config.replace(server=self.server, wax=self.wax)


#: Built-in hardware classes.  ``cpu`` is exactly the paper's 2U Xeon
#: box (identical to a default :class:`ServerConfig`/:class:`WaxConfig`,
#: so selecting it never changes a result); ``gpu`` is an
#: accelerator-dense chassis: fewer, hotter sockets, a wider
#: idle-to-peak dynamic range, and a proportionally larger wax loadout
#: behind the heat sinks.
HARDWARE_CLASSES: Dict[str, HardwareClass] = {
    "cpu": HardwareClass(name="cpu"),
    "gpu": HardwareClass(
        name="gpu",
        server=ServerConfig(sockets=2, cores_per_socket=8,
                            idle_power_w=250.0, peak_power_w=1100.0),
        wax=WaxConfig(volume_liters=6.0)),
}


def hardware_class(name: str) -> HardwareClass:
    """Look up a built-in hardware class by name."""
    try:
        return HARDWARE_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(HARDWARE_CLASSES))
        raise ConfigurationError(
            f"unknown hardware class {name!r}; known: {known}") from None


@dataclass(frozen=True)
class BatteryConfig:
    """Site battery storage: a second time-shifting medium beside wax.

    The wax shifts *thermal* load inside the server; a battery shifts
    the cooling plant's *electrical* draw on the grid side.  The model
    is a rate- and capacity-limited energy store with a round-trip
    efficiency split evenly between charge and discharge legs; dispatch
    policy lives in :mod:`repro.fleet.battery`.
    """

    capacity_kwh: float = 0.0
    max_charge_kw: float = 0.0
    max_discharge_kw: float = 0.0
    round_trip_efficiency: float = 0.90
    initial_soc: float = 0.5

    @property
    def enabled(self) -> bool:
        """Whether this battery can ever move any energy."""
        return (self.capacity_kwh > 0 and self.max_charge_kw > 0
                and self.max_discharge_kw > 0)

    @property
    def one_way_efficiency(self) -> float:
        """Per-leg efficiency (round trip split evenly)."""
        return math.sqrt(self.round_trip_efficiency)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.capacity_kwh < 0:
            raise ConfigurationError("battery capacity must be >= 0")
        if self.max_charge_kw < 0 or self.max_discharge_kw < 0:
            raise ConfigurationError("battery rates must be >= 0")
        if not 0.0 < self.round_trip_efficiency <= 1.0:
            raise ConfigurationError(
                "round-trip efficiency must be in (0, 1]")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ConfigurationError("initial SOC must be in [0, 1]")


#: Demand-event kinds a trace overlay supports.
DEMAND_EVENT_KINDS = ("surge", "curtail")


@dataclass(frozen=True)
class DemandEventSpec:
    """One scripted demand event layered onto the diurnal trace.

    ``surge`` multiplies utilization by ``magnitude`` (> 1 for a flash
    crowd / Black-Friday spike); ``curtail`` caps utilization at
    ``magnitude`` (a demand-response curtailment).  Both ramp linearly
    over ``ramp_hours`` at each edge of the ``[start_hour, end_hour]``
    window so the overlay never introduces a step discontinuity the
    schedulers could exploit.
    """

    kind: str
    start_hour: float
    end_hour: float
    magnitude: float
    ramp_hours: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.kind not in DEMAND_EVENT_KINDS:
            raise ConfigurationError(
                f"demand event kind must be one of {DEMAND_EVENT_KINDS}")
        if self.start_hour < 0 or self.end_hour <= self.start_hour:
            raise ConfigurationError(
                "demand event needs 0 <= start_hour < end_hour")
        if self.ramp_hours < 0:
            raise ConfigurationError("demand event ramp must be >= 0")
        if self.kind == "surge" and self.magnitude <= 0:
            raise ConfigurationError("surge magnitude must be positive")
        if self.kind == "curtail" and not 0.0 <= self.magnitude <= 1.0:
            raise ConfigurationError(
                "curtail magnitude (a utilization cap) must be in [0, 1]")


@dataclass(frozen=True)
class TraceConfig:
    """Shape of the synthetic two-day diurnal load trace (Fig. 8).

    The paper uses a Google trace normalized per Kontorinis et al. with
    utilization peaking at 95% around hour 20 (and again around hour 46)
    and troughs near hours 5 and 29.  ``overlay`` layers scripted demand
    events (surges, curtailments) onto that skeleton; an empty overlay
    leaves the generated trace bit-identical to earlier releases.
    """

    duration_hours: float = 48.0
    step_seconds: float = 60.0
    peak_utilization: float = 0.95
    trough_utilization: float = 0.35
    peak_hour: float = 20.0
    noise_stdev: float = 0.01
    seed: int = 2018
    overlay: Tuple[DemandEventSpec, ...] = ()

    @property
    def num_steps(self) -> int:
        """Number of simulation steps covered by the trace."""
        return int(round(self.duration_hours * 3600.0 / self.step_seconds))

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.duration_hours <= 0:
            raise ConfigurationError("trace duration must be positive")
        if self.step_seconds <= 0:
            raise ConfigurationError("trace step must be positive")
        if not 0.0 < self.peak_utilization <= 1.0:
            raise ConfigurationError("peak utilization must be in (0, 1]")
        if not 0.0 <= self.trough_utilization < self.peak_utilization:
            raise ConfigurationError(
                "trough utilization must be in [0, peak_utilization)")
        if self.noise_stdev < 0:
            raise ConfigurationError("noise stdev must be >= 0")
        for event in self.overlay:
            event.validate()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceConfig":
        """Rebuild a trace config from :meth:`to_dict`-style output."""
        fields = dict(data)
        fields["overlay"] = tuple(
            DemandEventSpec(**e) if isinstance(e, dict) else e
            for e in fields.get("overlay", ()))
        return cls(**fields)


@dataclass(frozen=True)
class SchedulerConfig:
    """Parameters shared by the VMT schedulers (Section III).

    ``grouping_value`` (GV) sizes the hot group via Eq. 1,
    ``hot_group_size = GV / PMT * num_servers``.  ``wax_threshold`` is the
    melted fraction above which VMT-WA considers a server fully melted
    (fixed at 0.98 in the paper's experiments, swept in Fig. 17).
    """

    grouping_value: float = 22.0
    wax_threshold: float = 0.98
    update_period_s: float = 60.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.grouping_value <= 0:
            raise ConfigurationError("grouping value must be positive")
        if not 0.0 < self.wax_threshold <= 1.0:
            raise ConfigurationError("wax threshold must be in (0, 1]")
        if self.update_period_s <= 0:
            raise ConfigurationError("update period must be positive")


@dataclass(frozen=True)
class AmbientEventSpec:
    """One scripted ambient (outside-weather) excursion.

    Supply-air temperature rises by ``delta_c`` across
    ``[start_hour, end_hour]``, ramping linearly over ``ramp_hours`` at
    each edge -- the building block for heat waves and cold snaps
    (negative ``delta_c``).
    """

    start_hour: float
    end_hour: float
    delta_c: float
    ramp_hours: float = 1.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.start_hour < 0 or self.end_hour <= self.start_hour:
            raise ConfigurationError(
                "ambient event needs 0 <= start_hour < end_hour")
        if self.ramp_hours < 0:
            raise ConfigurationError("ambient event ramp must be >= 0")
        if not -50.0 <= self.delta_c <= 50.0:
            raise ConfigurationError(
                "ambient delta must be within +-50 deg C")


@dataclass(frozen=True)
class AmbientConfig:
    """Time-varying ambient profile shifting every server inlet.

    The paper holds supply air at a fixed nominal inlet; real plants see
    weather.  The profile is a uniform, deterministic inlet offset:
    an optional sinusoidal diurnal swing (hottest at
    ``diurnal_peak_hour``) plus scripted :class:`AmbientEventSpec`
    excursions.  The default profile is identically zero and leaves the
    simulation bit-identical to a fixed-inlet build.
    """

    diurnal_amplitude_c: float = 0.0
    diurnal_peak_hour: float = 15.0
    events: Tuple[AmbientEventSpec, ...] = ()

    @property
    def is_active(self) -> bool:
        """Whether this profile can ever produce a nonzero offset."""
        return self.diurnal_amplitude_c != 0.0 or bool(self.events)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.diurnal_amplitude_c < 0:
            raise ConfigurationError(
                "diurnal amplitude must be >= 0 (use events for cold "
                "snaps)")
        if not 0.0 <= self.diurnal_peak_hour < 24.0:
            raise ConfigurationError(
                "diurnal peak hour must be in [0, 24)")
        for event in self.events:
            event.validate()

    def offset_c_at(self, time_s: float) -> float:
        """The inlet offset (deg C) at a simulation time.

        Pure function of the configuration and the clock, so checkpoint
        resume needs no extra state and two runs can never disagree.
        """
        hours = time_s / 3600.0
        offset = 0.0
        if self.diurnal_amplitude_c:
            angle = 2.0 * math.pi * (hours - self.diurnal_peak_hour) / 24.0
            offset += self.diurnal_amplitude_c * math.cos(angle)
        for event in self.events:
            offset += event.delta_c * _ramp_weight(
                hours, event.start_hour, event.end_hour, event.ramp_hours)
        return offset

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AmbientConfig":
        """Rebuild an ambient profile from :meth:`to_dict`-style output."""
        fields = dict(data)
        fields["events"] = tuple(
            AmbientEventSpec(**e) if isinstance(e, dict) else e
            for e in fields.get("events", ()))
        return cls(**fields)


def _ramp_weight(hour: float, start: float, end: float,
                 ramp: float) -> float:
    """Trapezoidal window weight in [0, 1] with linear edge ramps.

    Full strength inside ``[start, end]``; ramps from 0 over ``ramp``
    hours before ``start`` and back to 0 over ``ramp`` hours after
    ``end``.
    """
    if hour <= start - ramp or hour >= end + ramp:
        return 0.0
    if hour < start:
        return (hour - (start - ramp)) / ramp
    if hour <= end:
        return 1.0
    return ((end + ramp) - hour) / ramp


#: Sensor channels a fault can target.
SENSOR_TARGETS = ("air", "wax")

#: Supported sensor fault modes (see ``repro.server.sensors``).
SENSOR_FAULT_MODES = ("stuck", "dropout", "drift")


@dataclass(frozen=True)
class ServerFaultSpec:
    """One scripted server failure.

    The server goes dark at ``time_s`` (zero power, zero capacity, jobs
    displaced); when ``repair_after_s`` is set it rejoins the cluster
    that many seconds later, otherwise it stays down for the run.
    """

    time_s: float
    server_id: int
    repair_after_s: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.time_s < 0:
            raise ConfigurationError("fault time must be >= 0")
        if self.server_id < 0:
            raise ConfigurationError("server id must be >= 0")
        if self.repair_after_s is not None and self.repair_after_s <= 0:
            raise ConfigurationError("repair delay must be positive")


@dataclass(frozen=True)
class SensorFaultSpec:
    """One scripted sensor fault on a server's air or wax sensor.

    Modes: ``stuck`` freezes the reading at its value when the fault
    fires, ``dropout`` replaces it with the sensor's fallback value, and
    ``drift`` adds ``drift_c_per_hour`` times the elapsed hours.
    """

    time_s: float
    server_id: int
    sensor: str = "wax"          # one of SENSOR_TARGETS
    mode: str = "stuck"          # one of SENSOR_FAULT_MODES
    drift_c_per_hour: float = 0.0
    stuck_value_c: Optional[float] = None
    clear_after_s: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.time_s < 0:
            raise ConfigurationError("fault time must be >= 0")
        if self.server_id < 0:
            raise ConfigurationError("server id must be >= 0")
        if self.sensor not in SENSOR_TARGETS:
            raise ConfigurationError(
                f"sensor must be one of {SENSOR_TARGETS}")
        if self.mode not in SENSOR_FAULT_MODES:
            raise ConfigurationError(
                f"mode must be one of {SENSOR_FAULT_MODES}")
        if self.clear_after_s is not None and self.clear_after_s <= 0:
            raise ConfigurationError("clear delay must be positive")


@dataclass(frozen=True)
class CoolingFaultSpec:
    """One scripted cooling-plant derating.

    At ``time_s`` the plant's deliverable capacity drops to
    ``capacity_factor`` of nominal; supply air warms accordingly (see
    ``FaultConfig.derate_inlet_rise_c``).  ``restore_after_s`` brings the
    plant back to full capacity.
    """

    time_s: float
    capacity_factor: float
    restore_after_s: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.time_s < 0:
            raise ConfigurationError("fault time must be >= 0")
        if not 0.0 <= self.capacity_factor <= 1.0:
            raise ConfigurationError("capacity factor must be in [0, 1]")
        if self.restore_after_s is not None and self.restore_after_s <= 0:
            raise ConfigurationError("restore delay must be positive")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection scenario for one run (Section IV-D made live).

    Disabled by default: a default-constructed config injects nothing
    and leaves every simulation bit-identical to a fault-free build.
    ``hazard_failures`` samples random failures each tick from the
    reliability hazard at each server's current temperature (hot-group
    servers genuinely fail more often); ``hazard_acceleration`` scales
    that rate so multi-year MTBFs produce visible failures inside a
    two-day trace.  Scripted specs fire deterministically.
    """

    enabled: bool = False
    hazard_failures: bool = False
    hazard_acceleration: float = 1.0
    mtbf_hours: float = 70_000.0
    repair_time_s: float = 4 * 3600.0
    auto_repair: bool = True
    derate_inlet_rise_c: float = 8.0
    server_faults: Tuple[ServerFaultSpec, ...] = ()
    sensor_faults: Tuple[SensorFaultSpec, ...] = ()
    cooling_faults: Tuple[CoolingFaultSpec, ...] = ()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if self.hazard_acceleration < 0:
            raise ConfigurationError(
                "hazard acceleration must be >= 0")
        if self.mtbf_hours <= 0:
            raise ConfigurationError("MTBF must be positive")
        if self.repair_time_s <= 0:
            raise ConfigurationError("repair time must be positive")
        if self.derate_inlet_rise_c < 0:
            raise ConfigurationError("derate inlet rise must be >= 0")
        for spec in (self.server_faults + self.sensor_faults
                     + self.cooling_faults):
            spec.validate()

    @property
    def any_scripted(self) -> bool:
        """Whether the scenario contains any deterministic events."""
        return bool(self.server_faults or self.sensor_faults
                    or self.cooling_faults)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultConfig":
        """Rebuild a fault scenario from :meth:`to_dict`-style output."""
        def build(spec_cls, entries):
            return tuple(spec_cls(**e) if isinstance(e, dict) else e
                         for e in entries)
        fields = dict(data)
        fields["server_faults"] = build(
            ServerFaultSpec, fields.get("server_faults", ()))
        fields["sensor_faults"] = build(
            SensorFaultSpec, fields.get("sensor_faults", ()))
        fields["cooling_faults"] = build(
            CoolingFaultSpec, fields.get("cooling_faults", ()))
        return cls(**fields)


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of one cluster simulation run."""

    num_servers: int = 100
    server: ServerConfig = field(default_factory=ServerConfig)
    wax: WaxConfig = field(default_factory=WaxConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    ambient: AmbientConfig = field(default_factory=AmbientConfig)
    seed: int = 7

    def validate(self) -> None:
        """Validate the config tree; raise :class:`ConfigurationError`."""
        if self.num_servers <= 0:
            raise ConfigurationError("cluster must contain servers")
        self.server.validate()
        self.wax.validate()
        self.thermal.validate()
        self.trace.validate()
        self.scheduler.validate()
        self.faults.validate()
        self.ambient.validate()
        for spec in (self.faults.server_faults + self.faults.sensor_faults):
            if spec.server_id >= self.num_servers:
                raise ConfigurationError(
                    f"fault targets server {spec.server_id} but the "
                    f"cluster has {self.num_servers} servers")

    @property
    def total_cores(self) -> int:
        """Total cores across the cluster."""
        return self.num_servers * self.server.cores

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the full configuration tree to plain dictionaries."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            num_servers=data.get("num_servers", 100),
            server=ServerConfig(**data.get("server", {})),
            wax=WaxConfig(**data.get("wax", {})),
            thermal=ThermalConfig(**data.get("thermal", {})),
            trace=TraceConfig.from_dict(data.get("trace", {})),
            scheduler=SchedulerConfig(**data.get("scheduler", {})),
            faults=FaultConfig.from_dict(data.get("faults", {})),
            ambient=AmbientConfig.from_dict(data.get("ambient", {})),
            seed=data.get("seed", 7),
        )


def paper_cluster_config(num_servers: int = 1000,
                         grouping_value: float = 22.0,
                         seed: int = 7,
                         inlet_stdev_c: float = 0.0,
                         wax_threshold: float = 0.98) -> SimulationConfig:
    """Convenience constructor for the paper's evaluation cluster.

    The paper runs most headline experiments on 1,000 servers and the
    parameter sweeps on 100 servers "to reduce total compute time"
    (Section IV-A); pass ``num_servers=100`` for the latter.
    """
    return SimulationConfig(
        num_servers=num_servers,
        scheduler=SchedulerConfig(grouping_value=grouping_value,
                                  wax_threshold=wax_threshold),
        thermal=ThermalConfig(inlet_stdev_c=inlet_stdev_c),
        seed=seed,
    )

"""Unit helpers and physical constants.

The library uses SI units internally: watts, joules, kilograms, seconds,
degrees Celsius (temperatures never cross 0 K so Celsius is safe for
differences and lookups alike).  These helpers keep unit conversions
explicit at API boundaries instead of scattering magic factors through the
code.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
HOURS_PER_MONTH = 730.5  # 365.25 * 24 / 12, used by the reliability model
MONTHS_PER_YEAR = 12

KJ = 1e3  # joules per kilojoule
MJ = 1e6  # joules per megajoule
KW = 1e3  # watts per kilowatt
MW = 1e6  # watts per megawatt

LITERS_PER_CUBIC_METER = 1e3
KG_PER_TON = 907.185  # US (short) ton, as in "paraffin at $1,000 per ton"


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def kilojoules(value: float) -> float:
    """Convert kilojoules to joules."""
    return value * KJ


def to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / KW


def to_megawatts(watts: float) -> float:
    """Convert watts to megawatts."""
    return watts / MW


def liters_to_cubic_meters(liters: float) -> float:
    """Convert liters to cubic meters."""
    return liters / LITERS_PER_CUBIC_METER


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return celsius + 273.15

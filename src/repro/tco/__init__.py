"""TCO model for the cooling system (Section IV-F and V-E).

Adapts the Kontorinis et al. cost methodology the paper uses: cooling
infrastructure depreciates linearly over 10 years at $7.00 per kW of
critical power per month ($84,000 per MW-year), so a 25 MW datacenter
carries a $21M lifetime cooling cost and a 12.8% peak reduction is worth
~$2.69M.  Wax deployment costs come from the materials database.
"""

from .energy import (CarbonIntensityCurve, CoolingEnergyAccount,
                     ElectricityTariff, EnergyBill, PlantOverloadWarning,
                     compare_cooling_bills, cooling_energy_account,
                     cooling_energy_cost_usd)
from .model import TCOModel, VMTSavings
from .wax_cost import (n_paraffin_alternative_cost_usd,
                       wax_deployment_cost_usd, wax_cost_fraction_of_server)

__all__ = [
    "TCOModel", "VMTSavings", "wax_deployment_cost_usd",
    "n_paraffin_alternative_cost_usd", "wax_cost_fraction_of_server",
    "ElectricityTariff", "EnergyBill", "compare_cooling_bills",
    "cooling_energy_cost_usd",
    "CarbonIntensityCurve", "CoolingEnergyAccount",
    "PlantOverloadWarning", "cooling_energy_account",
]

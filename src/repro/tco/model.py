"""Cooling-system TCO and VMT savings arithmetic."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import WaxConfig
from ..errors import ConfigurationError
from ..units import MONTHS_PER_YEAR, MW
from .wax_cost import wax_deployment_cost_usd


@dataclass(frozen=True)
class TCOModel:
    """Kontorinis-style cooling cost model.

    ``cooling_usd_per_kw_month`` is the reported depreciation cost of the
    cooling system per kilowatt of critical power per month ($7.00); with
    a 10-year depreciation horizon that is $84,000 per MW-year and $21M
    total for 25 MW.
    """

    cooling_usd_per_kw_month: float = 7.00
    cooling_lifetime_years: float = 10.0
    server_lifetime_years: float = 4.0

    def __post_init__(self) -> None:
        if self.cooling_usd_per_kw_month <= 0:
            raise ConfigurationError("cooling cost must be positive")
        if self.cooling_lifetime_years <= 0:
            raise ConfigurationError("cooling lifetime must be positive")

    def cooling_cost_usd_per_mw_year(self) -> float:
        """$84,000 with the defaults."""
        return self.cooling_usd_per_kw_month * 1000.0 * MONTHS_PER_YEAR

    def lifetime_cooling_cost_usd(self, critical_power_w: float) -> float:
        """Total cooling cost over the depreciation horizon ($21M @25 MW)."""
        if critical_power_w <= 0:
            raise ConfigurationError("critical power must be positive")
        return (self.cooling_cost_usd_per_mw_year()
                * (critical_power_w / MW)
                * self.cooling_lifetime_years)

    def cooling_savings_usd(self, critical_power_w: float,
                            peak_reduction_fraction: float) -> float:
        """Lifetime savings from a smaller cooling plant (gross of wax)."""
        if not 0.0 <= peak_reduction_fraction < 1.0:
            raise ConfigurationError("reduction must be in [0, 1)")
        return (self.lifetime_cooling_cost_usd(critical_power_w)
                * peak_reduction_fraction)

    def vmt_savings(self, critical_power_w: float,
                    peak_reduction_fraction: float, wax: WaxConfig,
                    num_servers: int) -> "VMTSavings":
        """Full savings breakdown for a VMT deployment."""
        gross = self.cooling_savings_usd(critical_power_w,
                                         peak_reduction_fraction)
        wax_cost = wax_deployment_cost_usd(wax, num_servers)
        return VMTSavings(
            peak_reduction=peak_reduction_fraction,
            gross_cooling_savings_usd=gross,
            wax_deployment_cost_usd=wax_cost,
        )


@dataclass(frozen=True)
class VMTSavings:
    """Savings breakdown: smaller cooling plant minus wax deployment."""

    peak_reduction: float
    gross_cooling_savings_usd: float
    wax_deployment_cost_usd: float

    @property
    def net_savings_usd(self) -> float:
        """Cooling savings net of the (small) wax deployment cost."""
        return self.gross_cooling_savings_usd - self.wax_deployment_cost_usd

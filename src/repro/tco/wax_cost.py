"""Wax deployment costs.

"The cost to add wax to each server is very small (less than 0.5% of the
purchase cost per server at a wax price of $1000/ton)" (Section IV-F),
while reaching a ~30 deg C melting point with molecular n-paraffin and
plain TTS "would cost on the order of $10 million" datacenter-wide
(Section V-E).
"""

from __future__ import annotations

from ..config import WaxConfig
from ..errors import ConfigurationError
from ..thermal.materials import (MaterialProperties, N_PARAFFIN,
                                 material_cost_usd)


def wax_deployment_cost_usd(wax: WaxConfig, num_servers: int,
                            cost_usd_per_ton: float = 1000.0) -> float:
    """Fleet-wide cost of the deployed commercial wax."""
    if num_servers < 0:
        raise ConfigurationError("server count must be non-negative")
    material = MaterialProperties(
        name="deployed-paraffin",
        melt_temp_c=wax.melt_temp_c,
        latent_heat_j_per_kg=wax.latent_heat_j_per_kg,
        density_kg_per_m3=wax.density_kg_per_m3,
        specific_heat_solid_j_per_kg_k=wax.specific_heat_solid_j_per_kg_k,
        specific_heat_liquid_j_per_kg_k=wax.specific_heat_liquid_j_per_kg_k,
        cost_usd_per_ton=cost_usd_per_ton,
    )
    return material_cost_usd(material, wax.mass_kg) * num_servers


def n_paraffin_alternative_cost_usd(wax: WaxConfig,
                                    num_servers: int) -> float:
    """Cost of deploying low-melt n-paraffin instead (the TTS-only path)."""
    if num_servers < 0:
        raise ConfigurationError("server count must be non-negative")
    return material_cost_usd(N_PARAFFIN, wax.mass_kg) * num_servers


def wax_cost_fraction_of_server(wax: WaxConfig,
                                server_cost_usd: float = 6500.0,
                                cost_usd_per_ton: float = 1000.0) -> float:
    """Per-server wax cost as a fraction of server purchase cost.

    The default server price is representative of the paper's 4-socket 2U
    configuration; the paper's claim is that the fraction stays below
    0.5%, which holds across any realistic price.
    """
    if server_cost_usd <= 0:
        raise ConfigurationError("server cost must be positive")
    per_server = wax_deployment_cost_usd(wax, 1, cost_usd_per_ton)
    return per_server / server_cost_usd

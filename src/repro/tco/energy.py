"""Electricity tariffs, carbon intensity, and cooling energy costs.

Section V-E: "There may be additional benefits offered by the ability to
control the melting temperature day-to-day, such as leveraging less
expensive off-peak power or green power when cooling energy can be
temporally shifted as well."  This module prices that: a time-of-use
tariff (wrapped overnight windows included), a diurnal grid
carbon-intensity curve, the cooling plant's electrical energy under a
load series, and the bill comparison between scheduling policies.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..thermal.plant import ChillerPlant


class PlantOverloadWarning(UserWarning):
    """A cooling bill was priced with the plant above capacity.

    The part-load model clips PLR to 1.0, so overloaded ticks are
    billed as if the plant kept up -- the bill under-counts exactly
    when an undersized plant is being evaluated.  Callers comparing
    resized plants must check the recorded overloaded tick fraction.
    """


@dataclass(frozen=True)
class ElectricityTariff:
    """A two-rate time-of-use tariff.

    ``peak_window_h`` is the daily interval (start, end) billed at the
    peak rate; everything else is off-peak.  ``start > end`` means the
    peak window *wraps midnight* (e.g. ``(22, 8)`` is 10 pm to 8 am,
    the overnight-peak shape common outside the US and exactly what
    battery arbitrage wants to trade against).  Defaults reflect a
    typical US commercial TOU spread.
    """

    peak_rate_usd_per_kwh: float = 0.16
    off_peak_rate_usd_per_kwh: float = 0.08
    peak_window_h: Tuple[float, float] = (12.0, 22.0)

    def __post_init__(self) -> None:
        if self.peak_rate_usd_per_kwh < 0 \
                or self.off_peak_rate_usd_per_kwh < 0:
            raise ConfigurationError("rates must be non-negative")
        start, end = self.peak_window_h
        if not (0.0 <= start <= 24.0 and 0.0 <= end <= 24.0):
            raise ConfigurationError(
                "peak window hours must lie within [0, 24]")
        if start == end:
            raise ConfigurationError(
                "peak window must not be empty (start == end); widen it "
                "or set both rates equal for a flat tariff")

    @property
    def wraps_midnight(self) -> bool:
        """Whether the peak window crosses midnight (``start > end``)."""
        start, end = self.peak_window_h
        return start > end

    def is_peak(self, times_h: np.ndarray) -> np.ndarray:
        """Mask of samples falling in the daily peak-rate window."""
        hour_of_day = np.mod(np.asarray(times_h, dtype=np.float64), 24.0)
        start, end = self.peak_window_h
        if self.wraps_midnight:
            return (hour_of_day >= start) | (hour_of_day < end)
        return (hour_of_day >= start) & (hour_of_day < end)

    def rate_usd_per_kwh(self, times_h: np.ndarray) -> np.ndarray:
        """Per-sample rate."""
        return np.where(self.is_peak(times_h),
                        self.peak_rate_usd_per_kwh,
                        self.off_peak_rate_usd_per_kwh)


@dataclass(frozen=True)
class CarbonIntensityCurve:
    """Diurnal grid carbon intensity (gCO2e per kWh drawn).

    A flat base plus an optional cosine swing peaking at
    ``peak_hour`` -- evening peaker plants make most grids dirtiest
    when demand peaks, which is exactly when VMT has already shifted
    the cooling work away.  Defaults are a typical mixed grid; a
    hydro-heavy region might use ``base=60``, a coal-heavy one
    ``base=700``.
    """

    base_g_per_kwh: float = 400.0
    amplitude_g_per_kwh: float = 0.0
    peak_hour: float = 19.0

    def __post_init__(self) -> None:
        if self.base_g_per_kwh < 0:
            raise ConfigurationError("carbon base must be >= 0")
        if not 0.0 <= self.amplitude_g_per_kwh <= self.base_g_per_kwh:
            raise ConfigurationError(
                "carbon amplitude must be in [0, base] (intensity can "
                "never go negative)")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigurationError("carbon peak hour must be in [0, 24)")

    def intensity_g_per_kwh(self, times_h: np.ndarray) -> np.ndarray:
        """Per-sample grid carbon intensity."""
        hours = np.asarray(times_h, dtype=np.float64)
        if self.amplitude_g_per_kwh == 0.0:
            return np.full(hours.shape, self.base_g_per_kwh)
        angle = 2.0 * np.pi * (hours - self.peak_hour) / 24.0
        return self.base_g_per_kwh \
            + self.amplitude_g_per_kwh * np.cos(angle)

    def carbon_kg(self, electrical_kw: Sequence[float],
                  times_h: Sequence[float], dt_s: float) -> float:
        """Total emissions (kg CO2e) of an electrical draw series."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        power = np.asarray(electrical_kw, dtype=np.float64)
        times = np.asarray(times_h, dtype=np.float64)
        if power.shape != times.shape:
            raise ConfigurationError("power and time series must align")
        grams = (power * self.intensity_g_per_kwh(times)).sum() \
            * dt_s / 3600.0
        return float(grams / 1e3)


def cooling_energy_cost_usd(plant: ChillerPlant,
                            thermal_load_w: Sequence[float],
                            times_h: Sequence[float],
                            tariff: ElectricityTariff,
                            dt_s: float) -> float:
    """Electricity bill to remove a thermal load series.

    Integrates the plant's electrical draw against the time-of-use rate.
    Emits :class:`PlantOverloadWarning` when any sample exceeds the
    plant's capacity: those ticks are billed at the full-load draw,
    which *under-counts* the true cost of an undersized plant.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt must be positive")
    load = np.asarray(thermal_load_w, dtype=np.float64)
    times = np.asarray(times_h, dtype=np.float64)
    if load.shape != times.shape:
        raise ConfigurationError("load and time series must align")
    overloaded = plant.overloaded_tick_fraction(load)
    if overloaded > 0.0:
        warnings.warn(
            f"plant ({plant.capacity_w / 1e3:.1f} kW thermal) is over "
            f"capacity for {overloaded:.1%} of ticks; the bill "
            f"under-counts those ticks (PLR clipped to 1.0)",
            PlantOverloadWarning, stacklevel=2)
    electrical_kw = plant.electrical_power_w(load) / 1e3
    rates = tariff.rate_usd_per_kwh(times)
    return float((electrical_kw * rates).sum() * dt_s / 3600.0)


@dataclass(frozen=True)
class CoolingEnergyAccount:
    """Energy, cost, carbon, and saturation of one cooling load series."""

    energy_kwh: float
    cost_usd: float
    carbon_kg: float
    overloaded_tick_fraction: float


def cooling_energy_account(plant: ChillerPlant,
                           thermal_load_w: Sequence[float],
                           times_h: Sequence[float],
                           tariff: ElectricityTariff,
                           dt_s: float, *,
                           carbon: Optional[CarbonIntensityCurve] = None,
                           ambient_c=None,
                           warn_on_overload: bool = True
                           ) -> CoolingEnergyAccount:
    """Full account of a cooling load: kWh, dollars, kg CO2e, saturation.

    The one-stop costing path the fleet layer uses: the plant's
    electrical draw (optionally ambient-derated) is integrated against
    the tariff and the carbon curve, and the overloaded tick fraction
    is recorded instead of silently clipped.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt must be positive")
    load = np.asarray(thermal_load_w, dtype=np.float64)
    times = np.asarray(times_h, dtype=np.float64)
    if load.shape != times.shape:
        raise ConfigurationError("load and time series must align")
    overloaded = plant.overloaded_tick_fraction(load)
    if overloaded > 0.0 and warn_on_overload:
        warnings.warn(
            f"plant ({plant.capacity_w / 1e3:.1f} kW thermal) is over "
            f"capacity for {overloaded:.1%} of ticks; the account "
            f"under-counts those ticks (PLR clipped to 1.0)",
            PlantOverloadWarning, stacklevel=2)
    electrical_kw = plant.electrical_power_w(load, ambient_c) / 1e3
    rates = tariff.rate_usd_per_kwh(times)
    cost = float((electrical_kw * rates).sum() * dt_s / 3600.0)
    energy = float(electrical_kw.sum() * dt_s / 3600.0)
    curve = carbon if carbon is not None else CarbonIntensityCurve()
    emitted = curve.carbon_kg(electrical_kw, times, dt_s)
    return CoolingEnergyAccount(energy_kwh=energy, cost_usd=cost,
                                carbon_kg=emitted,
                                overloaded_tick_fraction=overloaded)


@dataclass(frozen=True)
class EnergyBill:
    """Cooling energy comparison between a baseline and a VMT policy."""

    baseline_cost_usd: float
    vmt_cost_usd: float
    baseline_energy_kwh: float
    vmt_energy_kwh: float
    #: Fraction of ticks each load series spent above plant capacity.
    #: Nonzero fractions mean the corresponding cost is an
    #: *under-count* -- exactly the failure mode that makes an
    #: undersized "smaller plant" look cheaper than it is.
    baseline_overloaded_tick_fraction: float = 0.0
    vmt_overloaded_tick_fraction: float = 0.0

    @property
    def overloaded_tick_fraction(self) -> float:
        """Worst saturation across the two priced series."""
        return max(self.baseline_overloaded_tick_fraction,
                   self.vmt_overloaded_tick_fraction)

    @property
    def saturated(self) -> bool:
        """Whether either series ever exceeded plant capacity."""
        return self.overloaded_tick_fraction > 0.0

    @property
    def cost_savings_usd(self) -> float:
        """Positive when the VMT policy's bill is lower."""
        return self.baseline_cost_usd - self.vmt_cost_usd

    @property
    def peak_energy_shifted(self) -> bool:
        """Whether VMT moved cooling energy without inflating it much.

        TTS/VMT do not remove heat; total energy stays within a few
        percent while its *timing* (and therefore its price) changes.
        """
        if self.baseline_energy_kwh == 0:
            return False
        drift = abs(self.vmt_energy_kwh - self.baseline_energy_kwh)
        return drift / self.baseline_energy_kwh < 0.05


def compare_cooling_bills(plant: ChillerPlant,
                          baseline_load_w: Sequence[float],
                          vmt_load_w: Sequence[float],
                          times_h: Sequence[float],
                          tariff: ElectricityTariff,
                          dt_s: float) -> EnergyBill:
    """Price two cooling load series under the same plant and tariff.

    When either series exceeds the plant's capacity the bill records
    the overloaded tick fraction (and the cost path warns): a resized
    plant that saturates is not actually delivering the cheaper bill
    it reports.
    """
    return EnergyBill(
        baseline_cost_usd=cooling_energy_cost_usd(
            plant, baseline_load_w, times_h, tariff, dt_s),
        vmt_cost_usd=cooling_energy_cost_usd(
            plant, vmt_load_w, times_h, tariff, dt_s),
        baseline_energy_kwh=plant.energy_kwh(baseline_load_w, dt_s),
        vmt_energy_kwh=plant.energy_kwh(vmt_load_w, dt_s),
        baseline_overloaded_tick_fraction=plant.overloaded_tick_fraction(
            baseline_load_w),
        vmt_overloaded_tick_fraction=plant.overloaded_tick_fraction(
            vmt_load_w),
    )

"""Electricity tariffs and cooling energy costs.

Section V-E: "There may be additional benefits offered by the ability to
control the melting temperature day-to-day, such as leveraging less
expensive off-peak power or green power when cooling energy can be
temporally shifted as well."  This module prices that: a time-of-use
tariff, the cooling plant's electrical energy under a load series, and
the bill comparison between scheduling policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..thermal.plant import ChillerPlant


@dataclass(frozen=True)
class ElectricityTariff:
    """A two-rate time-of-use tariff.

    ``peak_window_h`` is the daily interval (start, end) billed at the
    peak rate; everything else is off-peak.  Defaults reflect a typical
    US commercial TOU spread.
    """

    peak_rate_usd_per_kwh: float = 0.16
    off_peak_rate_usd_per_kwh: float = 0.08
    peak_window_h: Tuple[float, float] = (12.0, 22.0)

    def __post_init__(self) -> None:
        if self.peak_rate_usd_per_kwh < 0 \
                or self.off_peak_rate_usd_per_kwh < 0:
            raise ConfigurationError("rates must be non-negative")
        start, end = self.peak_window_h
        if not 0.0 <= start < end <= 24.0:
            raise ConfigurationError(
                "peak window must satisfy 0 <= start < end <= 24")

    def is_peak(self, times_h: np.ndarray) -> np.ndarray:
        """Mask of samples falling in the daily peak-rate window."""
        hour_of_day = np.mod(np.asarray(times_h, dtype=np.float64), 24.0)
        start, end = self.peak_window_h
        return (hour_of_day >= start) & (hour_of_day < end)

    def rate_usd_per_kwh(self, times_h: np.ndarray) -> np.ndarray:
        """Per-sample rate."""
        return np.where(self.is_peak(times_h),
                        self.peak_rate_usd_per_kwh,
                        self.off_peak_rate_usd_per_kwh)


def cooling_energy_cost_usd(plant: ChillerPlant,
                            thermal_load_w: Sequence[float],
                            times_h: Sequence[float],
                            tariff: ElectricityTariff,
                            dt_s: float) -> float:
    """Electricity bill to remove a thermal load series.

    Integrates the plant's electrical draw against the time-of-use rate.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt must be positive")
    load = np.asarray(thermal_load_w, dtype=np.float64)
    times = np.asarray(times_h, dtype=np.float64)
    if load.shape != times.shape:
        raise ConfigurationError("load and time series must align")
    electrical_kw = plant.electrical_power_w(load) / 1e3
    rates = tariff.rate_usd_per_kwh(times)
    return float((electrical_kw * rates).sum() * dt_s / 3600.0)


@dataclass(frozen=True)
class EnergyBill:
    """Cooling energy comparison between a baseline and a VMT policy."""

    baseline_cost_usd: float
    vmt_cost_usd: float
    baseline_energy_kwh: float
    vmt_energy_kwh: float

    @property
    def cost_savings_usd(self) -> float:
        """Positive when the VMT policy's bill is lower."""
        return self.baseline_cost_usd - self.vmt_cost_usd

    @property
    def peak_energy_shifted(self) -> bool:
        """Whether VMT moved cooling energy without inflating it much.

        TTS/VMT do not remove heat; total energy stays within a few
        percent while its *timing* (and therefore its price) changes.
        """
        if self.baseline_energy_kwh == 0:
            return False
        drift = abs(self.vmt_energy_kwh - self.baseline_energy_kwh)
        return drift / self.baseline_energy_kwh < 0.05


def compare_cooling_bills(plant: ChillerPlant,
                          baseline_load_w: Sequence[float],
                          vmt_load_w: Sequence[float],
                          times_h: Sequence[float],
                          tariff: ElectricityTariff,
                          dt_s: float) -> EnergyBill:
    """Price two cooling load series under the same plant and tariff."""
    return EnergyBill(
        baseline_cost_usd=cooling_energy_cost_usd(
            plant, baseline_load_w, times_h, tariff, dt_s),
        vmt_cost_usd=cooling_energy_cost_usd(
            plant, vmt_load_w, times_h, tariff, dt_s),
        baseline_energy_kwh=plant.energy_kwh(baseline_load_w, dt_s),
        vmt_energy_kwh=plant.energy_kwh(vmt_load_w, dt_s),
    )

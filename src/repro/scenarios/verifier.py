"""Per-scenario property and metamorphic checks.

The PR 4 sanitizer audits *within-run* physics invariants every tick.
This layer sits above it and checks *between-run* (metamorphic)
properties: a scenario run is compared against its matched unstressed
baseline (:meth:`ScenarioSpec.baseline` -- same cluster, same seed, same
policy, stress layers stripped) and the relationship that defines the
scenario must hold.  Hotter ambient must never lower the peak air
temperature nor leave the wax less depleted; scripted faults must never
*raise* availability; a demand-response curtailment must never raise
total IT energy.

Checks are pure functions ``(spec, result, baseline) -> Optional[str]``
returning ``None`` on pass or a human-readable violation description.
They are registered by the kebab-case keys that
:attr:`ScenarioSpec.checks` names, so the library stays declarative and
the test-suite can prove each check has teeth by tampering with a result
and watching the check fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..cluster.metrics import SimulationResult
from ..errors import ConfigurationError
from .spec import ScenarioSpec

#: Relative slack for floating-point comparisons between two runs.
REL_TOL = 1e-9
#: Absolute slack for temperature comparisons, degrees C.
ABS_TOL_C = 1e-6

CheckFn = Callable[[ScenarioSpec, SimulationResult, SimulationResult],
                   Optional[str]]

CHECK_REGISTRY: Dict[str, CheckFn] = {}


def register_check(key: str) -> Callable[[CheckFn], CheckFn]:
    """Register a verifier property under its kebab-case key."""
    def _register(fn: CheckFn) -> CheckFn:
        if key in CHECK_REGISTRY:  # pragma: no cover - authoring error
            raise ConfigurationError(f"duplicate check key {key!r}")
        CHECK_REGISTRY[key] = fn
        return fn
    return _register


@register_check("ambient-never-lowers-peak-temp")
def _ambient_peak_temp(spec: ScenarioSpec, result: SimulationResult,
                       baseline: SimulationResult) -> Optional[str]:
    """Hotter ambient must never *lower* the peak air temperature.

    Note this is deliberately a temperature property, not a peak-
    *cooling-load* property: a heat wave can legitimately lower the
    instantaneous peak cooling load by pre-melting the wax so it is
    still absorbing at the demand peak (the PCM doing its job).  Peak
    air temperature, by contrast, is monotone in the ambient forcing.
    """
    peak = float(result.mean_temp_c.max())
    base = float(baseline.mean_temp_c.max())
    if peak < base - ABS_TOL_C:
        return (f"peak mean air temperature dropped under hotter "
                f"ambient: {peak:.3f} C vs baseline {base:.3f} C")
    return None


@register_check("ambient-never-reduces-melt")
def _ambient_melt(spec: ScenarioSpec, result: SimulationResult,
                  baseline: SimulationResult) -> Optional[str]:
    """Hotter ambient must never leave the wax *less* depleted.

    This is the paper's weather mechanism: warm outdoor air eats the
    PCM buffer, so the stressed run's maximum melt fraction can only
    match or exceed nominal weather's.
    """
    melt = result.max_melt_fraction
    base = baseline.max_melt_fraction
    if melt < base - REL_TOL:
        return (f"max melt fraction dropped under hotter ambient: "
                f"{melt:.4f} vs baseline {base:.4f}")
    return None


@register_check("faults-never-raise-availability")
def _faults_availability(spec: ScenarioSpec, result: SimulationResult,
                         baseline: SimulationResult) -> Optional[str]:
    """Injected faults must never report *better* availability."""
    low, base = result.min_availability, baseline.min_availability
    if low > base + REL_TOL:
        return (f"min availability rose under faults: {low:.6f} vs "
                f"baseline {base:.6f}")
    end_s = float(result.times_s[-1]) if len(result.times_s) else 0.0
    fired = [f for f in spec.faults.server_faults if f.time_s <= end_s]
    if fired and low >= 1.0:
        return ("scripted server faults left min availability at 1.0 "
                "(faults did not bite)")
    return None


@register_check("curtail-never-raises-it-energy")
def _curtail_it_energy(spec: ScenarioSpec, result: SimulationResult,
                       baseline: SimulationResult) -> Optional[str]:
    """Capping demand must never *raise* total IT energy."""
    total, base = result.total_it_energy_j, baseline.total_it_energy_j
    if total > base * (1.0 + REL_TOL):
        return (f"total IT energy rose under curtailment: {total:.1f} J "
                f"vs baseline {base:.1f} J")
    return None


@register_check("surge-never-lowers-it-energy")
def _surge_it_energy(spec: ScenarioSpec, result: SimulationResult,
                     baseline: SimulationResult) -> Optional[str]:
    """Extra demand must never *lower* total IT energy."""
    total, base = result.total_it_energy_j, baseline.total_it_energy_j
    if total < base * (1.0 - REL_TOL):
        return (f"total IT energy dropped under a surge: {total:.1f} J "
                f"vs baseline {base:.1f} J")
    return None


@register_check("sensor-faults-leave-demand-served")
def _sensor_demand_served(spec: ScenarioSpec, result: SimulationResult,
                          baseline: SimulationResult) -> Optional[str]:
    """Lying sensors mislead placement, but must never shed demand."""
    served, base = result.total_job_seconds, baseline.total_job_seconds
    if served < base * (1.0 - REL_TOL):
        return (f"demand served dropped under sensor faults: "
                f"{served:.1f} vs baseline {base:.1f} job-seconds")
    return None


@register_check("sane-series")
def _sane_series(spec: ScenarioSpec, result: SimulationResult,
                 baseline: SimulationResult) -> Optional[str]:
    """Stress must never corrupt the recorded series themselves."""
    for name in ("cooling_load_w", "it_power_w", "mean_temp_c",
                 "mean_melt_fraction"):
        series = getattr(result, name)
        if not np.all(np.isfinite(series)):
            return f"series {name!r} contains non-finite values"
    melt = result.mean_melt_fraction
    if melt.min() < -REL_TOL or melt.max() > 1.0 + REL_TOL:
        return "mean melt fraction escaped [0, 1]"
    if result.availability is not None and len(result.availability):
        avail = result.availability
        if avail.min() < -REL_TOL or avail.max() > 1.0 + REL_TOL:
            return "availability escaped [0, 1]"
    return None


@dataclass(frozen=True)
class CheckOutcome:
    """One verifier property evaluated for one (scenario, policy) run."""

    scenario: str
    policy: str
    check: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        tail = f": {self.detail}" if self.detail else ""
        return f"[{status}] {self.scenario}/{self.policy} {self.check}{tail}"


def verify_scenario(spec: ScenarioSpec, result: SimulationResult,
                    baseline: SimulationResult, *,
                    policy: str = "") -> List[CheckOutcome]:
    """Evaluate every check the spec names against one run pair."""
    outcomes = []
    for key in spec.checks:
        try:
            check = CHECK_REGISTRY[key]
        except KeyError:
            known = ", ".join(sorted(CHECK_REGISTRY))
            raise ConfigurationError(
                f"scenario {spec.name!r} names unknown check {key!r}; "
                f"registered: {known}") from None
        detail = check(spec, result, baseline)
        outcomes.append(CheckOutcome(
            scenario=spec.name, policy=policy, check=key,
            passed=detail is None, detail=detail or ""))
    return outcomes

"""The named scenario library.

Each entry is a :class:`~repro.scenarios.spec.ScenarioSpec` stressing one
robustness axis the paper's single two-day trace never exercises:
weather (heat waves, diurnal ambient swing), demand variation (flash
crowds, demand-response curtailment -- Rostami et al. 2023), fault
storms (PR 1 banks), and mis-calibration (GV overestimate).  Stress
windows are deliberately front-loaded or centered on the hour-20 load
peak so the suite stays meaningful when CI runs it at reduced duration.

All scenarios compile against the paper's 100-server sweep cluster by
default; :meth:`ScenarioSpec.with_overrides` rescales them without
editing the definitions here.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import (AmbientConfig, AmbientEventSpec, DemandEventSpec,
                      FaultConfig, SensorFaultSpec, ServerFaultSpec)
from ..errors import ConfigurationError
from .spec import ScenarioSpec

_H = 3600.0


def _heat_wave() -> ScenarioSpec:
    """A 12-hour +8 C heat wave square across the evening load peak."""
    return ScenarioSpec(
        name="heat-wave",
        description="+8 C ambient excursion covering the hour-20 peak",
        ambient=AmbientConfig(events=(
            AmbientEventSpec(start_hour=12.0, end_hour=24.0, delta_c=8.0,
                             ramp_hours=2.0),)),
        checks=("ambient-never-lowers-peak-temp",
                "ambient-never-reduces-melt", "sane-series"),
        tags=("weather",),
    )


def _diurnal_ambient_swing() -> ScenarioSpec:
    """A +-5 C sinusoidal outdoor swing, hottest mid-afternoon."""
    return ScenarioSpec(
        name="diurnal-ambient-swing",
        description="+-5 C sinusoidal ambient, hottest at 15:00",
        ambient=AmbientConfig(diurnal_amplitude_c=5.0,
                              diurnal_peak_hour=15.0),
        checks=("ambient-never-lowers-peak-temp",
                "ambient-never-reduces-melt", "sane-series"),
        tags=("weather",),
    )


def _demand_response_curtailment() -> ScenarioSpec:
    """Grid-driven demand-response: cap utilization at 50% over the peak."""
    return ScenarioSpec(
        name="demand-response-curtailment",
        description="utilization capped at 0.50 during hours 17-22",
        demand_events=(
            DemandEventSpec(kind="curtail", start_hour=17.0, end_hour=22.0,
                            magnitude=0.50, ramp_hours=0.5),),
        checks=("curtail-never-raises-it-energy", "sane-series"),
        tags=("demand",),
    )


def _black_friday_surge() -> ScenarioSpec:
    """A 1.35x flash crowd riding the evening ramp into the peak."""
    return ScenarioSpec(
        name="black-friday-surge",
        description="1.35x demand surge, hours 14-23",
        demand_events=(
            DemandEventSpec(kind="surge", start_hour=14.0, end_hour=23.0,
                            magnitude=1.35, ramp_hours=1.0),),
        checks=("surge-never-lowers-it-energy", "sane-series"),
        tags=("demand",),
    )


def _rolling_maintenance() -> ScenarioSpec:
    """Rolling 4-server maintenance waves, each repaired after 2 hours."""
    waves = []
    for wave, start_hour in enumerate((2.0, 6.0, 10.0, 14.0, 18.0)):
        for k in range(4):
            waves.append(ServerFaultSpec(
                time_s=start_hour * _H, server_id=wave * 4 + k,
                repair_after_s=2.0 * _H))
    return ScenarioSpec(
        name="rolling-maintenance",
        description="5 waves x 4 servers drained 2 h each, hours 2-18",
        faults=FaultConfig(enabled=True, server_faults=tuple(waves)),
        checks=("faults-never-raise-availability", "sane-series"),
        tags=("faults",),
    )


def _sensor_fault_storm() -> ScenarioSpec:
    """A storm of stuck/dropout/drift wax+air sensor faults from hour 3."""
    faults: List[SensorFaultSpec] = []
    modes = ("stuck", "dropout", "drift")
    for i in range(12):
        faults.append(SensorFaultSpec(
            time_s=(3.0 + 0.5 * i) * _H, server_id=2 * i,
            sensor="wax" if i % 2 == 0 else "air",
            mode=modes[i % 3],
            drift_c_per_hour=1.5 if modes[i % 3] == "drift" else 0.0,
            stuck_value_c=45.0 if i % 4 == 0 else None,
            clear_after_s=6.0 * _H))
    return ScenarioSpec(
        name="sensor-fault-storm",
        description="12 mixed sensor faults (stuck/dropout/drift), "
                    "hours 3-9, clearing after 6 h",
        faults=FaultConfig(enabled=True, sensor_faults=tuple(faults)),
        checks=("sensor-faults-leave-demand-served", "sane-series"),
        tags=("faults", "sensors"),
    )


def _correlated_rack_failure() -> ScenarioSpec:
    """A whole rack (16 contiguous low-id servers) dies overnight.

    The failure lands in the demand trough (hour 3): at the evening
    peak the cluster runs ~93% utilized, so losing a 16-server rack
    there exceeds surviving capacity for *every* policy -- that abort
    path is exercised separately by the suite's fault-tolerance tests.
    """
    rack = tuple(ServerFaultSpec(time_s=3.0 * _H, server_id=sid,
                                 repair_after_s=3.0 * _H)
                 for sid in range(16))
    return ScenarioSpec(
        name="correlated-rack-failure",
        description="16 contiguous hot-group servers fail at hour 3, "
                    "repaired after 3 h",
        faults=FaultConfig(enabled=True, server_faults=rack),
        checks=("faults-never-raise-availability", "sane-series"),
        tags=("faults",),
    )


def _gv_misestimate_stress() -> ScenarioSpec:
    """GV badly overestimated while demand surges past the estimate.

    The paper assumes an oracle grouping value; this scenario sets GV
    ~30% high (an over-aggressive hot group) and adds a surge, probing
    how the VMT policies degrade when the sizing assumption is wrong.
    """
    return ScenarioSpec(
        name="gv-misestimate-stress",
        description="GV=28.5 (30% overestimate) plus a 1.2x surge at "
                    "the peak",
        grouping_value=28.5,
        demand_events=(
            DemandEventSpec(kind="surge", start_hour=16.0, end_hour=22.0,
                            magnitude=1.2, ramp_hours=1.0),),
        checks=("surge-never-lowers-it-energy", "sane-series"),
        tags=("calibration", "demand"),
    )


def _cooling_brownout() -> ScenarioSpec:
    """The plant loses 30% capacity across the peak (PR 1 derate path)."""
    from ..config import CoolingFaultSpec
    return ScenarioSpec(
        name="cooling-brownout",
        description="cooling derated to 70% capacity, hours 16-24",
        faults=FaultConfig(
            enabled=True,
            cooling_faults=(CoolingFaultSpec(time_s=16.0 * _H,
                                             capacity_factor=0.7,
                                             restore_after_s=8.0 * _H),)),
        checks=("faults-never-raise-availability", "sane-series"),
        tags=("faults", "cooling"),
    )


_BUILDERS = (
    _heat_wave,
    _diurnal_ambient_swing,
    _demand_response_curtailment,
    _black_friday_surge,
    _rolling_maintenance,
    _sensor_fault_storm,
    _correlated_rack_failure,
    _gv_misestimate_stress,
    _cooling_brownout,
)


def _build_library() -> Dict[str, ScenarioSpec]:
    library: Dict[str, ScenarioSpec] = {}
    for builder in _BUILDERS:
        spec = builder()
        spec.validate()
        if spec.name in library:  # pragma: no cover - authoring error
            raise ConfigurationError(
                f"duplicate scenario name {spec.name!r}")
        library[spec.name] = spec
    return library


#: The named scenario library, in definition order.
SCENARIO_LIBRARY: Dict[str, ScenarioSpec] = _build_library()


def scenario_names() -> List[str]:
    """All library scenario names, in definition order."""
    return list(SCENARIO_LIBRARY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a library scenario by name."""
    try:
        return SCENARIO_LIBRARY[name]
    except KeyError:
        known = ", ".join(SCENARIO_LIBRARY)
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {known}") from None

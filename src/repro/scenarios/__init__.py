"""Scenario engine: declarative stress scenarios with verified suites.

Public surface:

* :class:`ScenarioSpec` -- pure-data scenario that compiles into a
  :class:`~repro.config.SimulationConfig`;
* :data:`SCENARIO_LIBRARY` / :func:`get_scenario` /
  :func:`scenario_names` -- the named library;
* :func:`verify_scenario` / :data:`CHECK_REGISTRY` -- metamorphic
  property checks against matched baselines;
* :func:`run_suite` / :class:`SuiteReport` -- fault-tolerant
  library x policies execution with a ranked report.
"""

from .library import SCENARIO_LIBRARY, get_scenario, scenario_names
from .spec import ScenarioSpec
from .suite import (LeaderboardEntry, PolicyRanking, ScenarioRunRecord,
                    SuiteReport, build_suite_specs, qos_ok_fraction,
                    run_suite)
from .verifier import (CHECK_REGISTRY, CheckOutcome, register_check,
                       verify_scenario)

__all__ = [
    "CHECK_REGISTRY",
    "CheckOutcome",
    "LeaderboardEntry",
    "PolicyRanking",
    "SCENARIO_LIBRARY",
    "ScenarioRunRecord",
    "ScenarioSpec",
    "SuiteReport",
    "build_suite_specs",
    "get_scenario",
    "qos_ok_fraction",
    "register_check",
    "run_suite",
    "scenario_names",
    "verify_scenario",
]

"""The scenario suite runner: library x policies, fault-tolerant.

``run_suite`` compiles every scenario against every policy, adds the
deduplicated set of matched baseline runs the verifier needs, executes
the whole batch on :class:`~repro.perf.runner.ExperimentRunner`, runs
the per-scenario metamorphic checks, and folds everything into one
:class:`SuiteReport` with a policy ranking.

The suite is *never aborted* by a sick run: per-spec wall-clock budgets
turn hangs into :class:`RunFailure` rows, a SIGKILLed worker triggers
the runner's bounded serial retry, and a job that still fails lands in
the report as a structured failure next to the runs that succeeded.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.metrics import SimulationResult
from ..config import SimulationConfig
from ..core.policies import SCHEDULER_NAMES
from ..errors import ConfigurationError
from ..obs.ledger import config_sha256
from ..perf.runner import ExperimentRunner, RunFailure, RunSpec
from .library import SCENARIO_LIBRARY, get_scenario
from .spec import ScenarioSpec
from .verifier import CheckOutcome, verify_scenario

#: CPU junction temperature above which jobs throttle and QoS suffers.
QOS_THROTTLE_TEMP_C = 85.0


def qos_ok_fraction(result: SimulationResult,
                    throttle_temp_c: float = QOS_THROTTLE_TEMP_C) -> float:
    """Fraction of ticks free of thermal throttling (the QoS proxy).

    Latency SLOs in this model are violated exactly when a CPU crosses
    the throttle point, so the throttle-free tick fraction is the
    scheduler-comparable QoS number.  NaN when the run predates CPU
    temperature tracking.
    """
    temps = result.max_cpu_temp_c
    if temps is None or len(temps) == 0:
        return float("nan")
    finite = np.isfinite(np.asarray(temps))
    if not finite.any():
        return float("nan")
    return float((np.asarray(temps)[finite] <= throttle_temp_c).mean())


@dataclass(frozen=True)
class ScenarioRunRecord:
    """One (scenario, policy) cell of the suite matrix."""

    scenario: str
    policy: str
    failure: Optional[RunFailure] = None
    checks: Tuple[CheckOutcome, ...] = ()
    peak_cooling_kw: float = float("nan")
    #: Peak cooling relative to the matched unstressed baseline
    #: (1.0 = stress did not move the peak; NaN when either run failed).
    peak_ratio_vs_baseline: float = float("nan")
    min_availability: float = float("nan")
    #: Fraction of ticks free of thermal throttling (see
    #: :func:`qos_ok_fraction`); NaN when the run failed.
    qos_ok_fraction: float = float("nan")
    #: Cooling electricity bill of this cell under the default
    #: time-of-use tariff, with the plant sized at the scenario's worst
    #: policy peak so costs compare across policies; NaN when the run
    #: failed.
    energy_cost_usd: float = float("nan")
    #: Cooling emissions of this cell under the default grid carbon
    #: curve; NaN when the run failed.
    carbon_kg: float = float("nan")
    note: str = ""

    @property
    def completed(self) -> bool:
        """Whether the stressed run itself produced a result."""
        return self.failure is None

    @property
    def violations(self) -> Tuple[CheckOutcome, ...]:
        """The verifier checks that failed for this cell."""
        return tuple(c for c in self.checks if not c.passed)


@dataclass(frozen=True)
class PolicyRanking:
    """One policy's aggregate standing across the whole suite."""

    policy: str
    completed: int
    failed: int
    checks_passed: int
    checks_failed: int
    mean_peak_ratio: float

    @property
    def sort_key(self) -> Tuple[float, float, float]:
        """Rank: fewest failures, fewest violations, lowest peak ratio."""
        ratio = self.mean_peak_ratio
        if ratio != ratio:  # NaN -> rank last on the tiebreak
            ratio = float("inf")
        return (float(self.failed), float(self.checks_failed), ratio)


@dataclass(frozen=True)
class LeaderboardEntry:
    """One policy's standing across the suite, on every axis at once.

    The four ranked dimensions the serving layer exposes: peak cooling
    (the paper's headline), QoS (throttle-free tick fraction),
    availability (worst fleet fraction alive), and TCO (net lifetime
    savings of the policy's mean peak reduction vs the round-robin
    cells of the same scenarios, through the Section V-E model).
    """

    rank: int
    policy: str
    scenarios: int
    failed: int
    check_violations: int
    mean_peak_cooling_kw: float
    mean_peak_ratio_vs_baseline: float
    mean_qos_ok_fraction: float
    min_availability: float
    mean_peak_reduction_vs_round_robin: float
    tco_net_savings_usd: float
    #: Mean per-scenario cooling electricity bill (default tariff,
    #: scenario-sized plant); the fleet/market axis on the leaderboard.
    mean_energy_cost_usd: float = float("nan")
    #: Mean per-scenario cooling emissions (default carbon curve).
    mean_carbon_kg: float = float("nan")

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict of this row (stable field names)."""
        return dataclasses.asdict(self)


def _spec_to_json(spec: RunSpec) -> Dict[str, Any]:
    """Serialize a RunSpec: the config canonically, the rest verbatim."""
    fields = {f.name: getattr(spec, f.name)
              for f in dataclasses.fields(RunSpec) if f.name != "config"}
    fields["config"] = spec.config.to_dict()
    return fields


def _spec_from_json(payload: Dict[str, Any]) -> RunSpec:
    payload = dict(payload)
    config = SimulationConfig.from_dict(payload.pop("config"))
    return RunSpec(config=config, **payload)


def _failure_to_json(failure: RunFailure) -> Dict[str, Any]:
    return {"spec": _spec_to_json(failure.spec),
            "error_type": failure.error_type,
            "message": failure.message,
            "traceback_text": failure.traceback_text,
            "attempts": failure.attempts}


def _failure_from_json(payload: Dict[str, Any]) -> RunFailure:
    return RunFailure(spec=_spec_from_json(payload["spec"]),
                      error_type=payload["error_type"],
                      message=payload["message"],
                      traceback_text=payload.get("traceback_text", ""),
                      attempts=int(payload.get("attempts", 1)))


@dataclass(frozen=True)
class SuiteReport:
    """Everything one suite execution produced, ready to rank/print."""

    records: Tuple[ScenarioRunRecord, ...]
    rankings: Tuple[PolicyRanking, ...]
    baseline_failures: Tuple[RunFailure, ...] = ()

    @property
    def failures(self) -> Tuple[RunFailure, ...]:
        """Every structured run failure, scenario runs and baselines."""
        scenario_failures = tuple(r.failure for r in self.records
                                  if r.failure is not None)
        return scenario_failures + self.baseline_failures

    @property
    def violations(self) -> Tuple[CheckOutcome, ...]:
        """Every failed verifier check across the suite."""
        out: List[CheckOutcome] = []
        for record in self.records:
            out.extend(record.violations)
        return tuple(out)

    @property
    def passed(self) -> bool:
        """True when every run completed and every check held."""
        return not self.failures and not self.violations

    def to_text(self) -> str:
        """Human-readable ranked report."""
        lines = ["scenario suite report", "====================="]
        lines.append(f"runs: {len(self.records)} scenario cells, "
                     f"{len(self.failures)} failed, "
                     f"{len(self.violations)} check violations")
        lines.append("")
        lines.append("policy ranking (fewest failures, fewest violations, "
                     "lowest mean peak-cooling ratio):")
        for place, ranking in enumerate(self.rankings, start=1):
            ratio = ranking.mean_peak_ratio
            ratio_text = f"{ratio:.4f}" if ratio == ratio else "n/a"
            lines.append(
                f"  {place}. {ranking.policy:<14s} "
                f"completed {ranking.completed:>2d}  "
                f"failed {ranking.failed:>2d}  "
                f"checks {ranking.checks_passed:>2d}P/"
                f"{ranking.checks_failed:d}F  "
                f"mean peak ratio {ratio_text}")
        failures = self.failures
        if failures:
            lines.append("")
            lines.append("failures:")
            for failure in failures:
                lines.append(f"  - {failure.spec.name}: "
                             f"{failure.error_type}: {failure.message} "
                             f"(attempts={failure.attempts})")
        violations = self.violations
        if violations:
            lines.append("")
            lines.append("check violations:")
            for outcome in violations:
                lines.append(f"  - {outcome}")
        return "\n".join(lines)

    def leaderboard(self, baseline_policy: str = "round-robin"
                    ) -> Tuple[LeaderboardEntry, ...]:
        """Rank every policy on peak cooling, QoS, availability, TCO.

        Ordering: fewest failed runs, fewest check violations, lowest
        mean peak cooling (all policies ran the identical scenario set,
        so raw kilowatts compare fairly).  The TCO column prices each
        policy's mean peak reduction against ``baseline_policy`` over
        the scenarios where both completed; the baseline prices its own
        (zero) reduction.
        """
        from ..cluster.datacenter import Datacenter
        from ..config import WaxConfig
        from ..tco.model import TCOModel

        policies = [r.policy for r in self.rankings]
        base_peaks = {r.scenario: r.peak_cooling_kw for r in self.records
                      if r.policy == baseline_policy and r.completed}
        datacenter = Datacenter()
        tco = TCOModel()
        wax = WaxConfig()

        rows = []
        for policy in policies:
            cells = [r for r in self.records if r.policy == policy]
            peaks = [r.peak_cooling_kw for r in cells
                     if r.completed and np.isfinite(r.peak_cooling_kw)]
            ratios = [r.peak_ratio_vs_baseline for r in cells
                      if np.isfinite(r.peak_ratio_vs_baseline)]
            qos = [r.qos_ok_fraction for r in cells
                   if np.isfinite(r.qos_ok_fraction)]
            avail = [r.min_availability for r in cells
                     if np.isfinite(r.min_availability)]
            costs = [r.energy_cost_usd for r in cells
                     if np.isfinite(r.energy_cost_usd)]
            carbon = [r.carbon_kg for r in cells
                      if np.isfinite(r.carbon_kg)]
            reductions = [
                1.0 - r.peak_cooling_kw / base_peaks[r.scenario]
                for r in cells
                if r.completed and r.scenario in base_peaks
                and base_peaks[r.scenario] > 0]
            mean_reduction = (float(np.mean(reductions)) if reductions
                              else float("nan"))
            # The TCO model prices reductions in [0, 1); a policy that
            # *raises* the peak vs round-robin gets NaN, not a made-up
            # negative bill.
            if np.isfinite(mean_reduction) and 0.0 <= mean_reduction < 1.0:
                savings = tco.vmt_savings(
                    datacenter.critical_power_w, mean_reduction, wax,
                    datacenter.num_servers)
                net_savings = float(savings.net_savings_usd)
            else:
                net_savings = float("nan")
            rows.append(LeaderboardEntry(
                rank=0,  # assigned after sorting
                policy=policy,
                scenarios=len(cells),
                failed=sum(1 for r in cells if not r.completed),
                check_violations=sum(len(r.violations) for r in cells),
                mean_peak_cooling_kw=(float(np.mean(peaks)) if peaks
                                      else float("nan")),
                mean_peak_ratio_vs_baseline=(
                    float(np.mean(ratios)) if ratios else float("nan")),
                mean_qos_ok_fraction=(float(np.mean(qos)) if qos
                                      else float("nan")),
                min_availability=(float(np.min(avail)) if avail
                                  else float("nan")),
                mean_peak_reduction_vs_round_robin=mean_reduction,
                tco_net_savings_usd=net_savings,
                mean_energy_cost_usd=(float(np.mean(costs)) if costs
                                      else float("nan")),
                mean_carbon_kg=(float(np.mean(carbon)) if carbon
                                else float("nan")),
            ))

        def sort_key(row: LeaderboardEntry):
            peak = row.mean_peak_cooling_kw
            return (row.failed, row.check_violations,
                    peak if np.isfinite(peak) else float("inf"))

        rows.sort(key=sort_key)
        return tuple(dataclasses.replace(row, rank=place)
                     for place, row in enumerate(rows, start=1))

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict that round-trips losslessly.

        This is the frozen v1 response schema for ``POST /v1/suites``
        jobs; run failures keep their full spec (config included) so a
        failed cell can be re-run from the payload alone.
        """
        return {
            "schema": "repro.suite/1",
            "records": [
                {**{f.name: getattr(r, f.name)
                    for f in dataclasses.fields(ScenarioRunRecord)
                    if f.name not in ("failure", "checks")},
                 "failure": (None if r.failure is None
                             else _failure_to_json(r.failure)),
                 "checks": [dataclasses.asdict(c) for c in r.checks]}
                for r in self.records],
            "rankings": [dataclasses.asdict(r) for r in self.rankings],
            "baseline_failures": [_failure_to_json(f)
                                  for f in self.baseline_failures],
            "leaderboard": [row.to_json() for row in self.leaderboard()],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SuiteReport":
        """Rebuild a report from :meth:`to_json` output."""
        from ..errors import SimulationError
        if payload.get("schema") != "repro.suite/1":
            raise SimulationError(
                f"not a repro.suite/1 payload "
                f"(schema={payload.get('schema')!r})")
        records = []
        for entry in payload["records"]:
            entry = dict(entry)
            failure = entry.pop("failure", None)
            checks = entry.pop("checks", [])
            records.append(ScenarioRunRecord(
                failure=(None if failure is None
                         else _failure_from_json(failure)),
                checks=tuple(CheckOutcome(**c) for c in checks),
                **entry))
        rankings = tuple(PolicyRanking(**r) for r in payload["rankings"])
        return cls(records=tuple(records), rankings=rankings,
                   baseline_failures=tuple(
                       _failure_from_json(f)
                       for f in payload["baseline_failures"]))


def _resolve_scenarios(scenarios: Optional[Sequence] = None
                       ) -> List[ScenarioSpec]:
    if scenarios is None:
        return list(SCENARIO_LIBRARY.values())
    resolved: List[ScenarioSpec] = []
    for entry in scenarios:
        if isinstance(entry, ScenarioSpec):
            resolved.append(entry)
        elif isinstance(entry, str):
            resolved.append(get_scenario(entry))
        else:
            raise ConfigurationError(
                f"scenarios must be names or ScenarioSpecs, "
                f"got {type(entry).__name__}")
    return resolved


def build_suite_specs(scenarios: Optional[Sequence] = None,
                      policies: Optional[Sequence[str]] = None, *,
                      base: Optional[SimulationConfig] = None,
                      num_servers: Optional[int] = None,
                      duration_hours: Optional[float] = None,
                      seed: Optional[int] = None,
                      timeout_s: Optional[float] = None,
                      telemetry_dir: Optional[str] = None,
                      checks: Optional[str] = None,
                      ) -> Tuple[List[RunSpec], List[RunSpec],
                                 List[ScenarioSpec], Dict[str, str]]:
    """Compile the suite into (scenario specs, baseline specs) batches.

    Baseline runs are deduplicated by (config sha, policy): scenarios
    without knob overrides share one unstressed baseline per policy, so
    an 8-scenario x 5-policy suite needs ~5 baseline runs, not 40.
    Returns the two RunSpec batches, the resolved scenario list, and the
    scenario->baseline-key mapping used to join results back together.
    """
    resolved = [s.with_overrides(num_servers=num_servers,
                                 duration_hours=duration_hours,
                                 seed=seed)
                for s in _resolve_scenarios(scenarios)]
    policy_list = list(policies) if policies is not None \
        else list(SCHEDULER_NAMES)
    if not policy_list:
        raise ConfigurationError("suite needs at least one policy")

    run_specs: List[RunSpec] = []
    baseline_specs: List[RunSpec] = []
    baseline_key_by_scenario: Dict[str, str] = {}
    seen_baselines = set()
    for spec in resolved:
        compiled = spec.compile(base)
        baseline_config = spec.baseline(base)
        baseline_sha = config_sha256(baseline_config)
        baseline_key_by_scenario[spec.name] = baseline_sha
        sha = spec.sha256()
        for policy in policy_list:
            run_specs.append(RunSpec(
                config=compiled, policy=policy,
                label=f"{spec.name}:{policy}",
                scenario=spec.name, scenario_sha256=sha,
                timeout_s=timeout_s, telemetry_dir=telemetry_dir,
                checks=checks))
            if (baseline_sha, policy) not in seen_baselines:
                seen_baselines.add((baseline_sha, policy))
                baseline_specs.append(RunSpec(
                    config=baseline_config, policy=policy,
                    label=f"baseline:{baseline_sha[:8]}:{policy}",
                    timeout_s=timeout_s, telemetry_dir=telemetry_dir,
                    checks=checks))
    return run_specs, baseline_specs, resolved, baseline_key_by_scenario


def run_suite(scenarios: Optional[Sequence] = None,
              policies: Optional[Sequence[str]] = None, *,
              base: Optional[SimulationConfig] = None,
              num_servers: Optional[int] = None,
              duration_hours: Optional[float] = None,
              seed: Optional[int] = None,
              max_workers: Optional[int] = None,
              timeout_s: Optional[float] = None,
              telemetry_dir: Optional[str] = None,
              checks: Optional[str] = None) -> SuiteReport:
    """Execute the scenario suite and return the ranked report.

    ``scenarios`` accepts library names and/or ad-hoc
    :class:`ScenarioSpec` objects (``None`` = the whole library);
    ``policies`` defaults to all five schedulers.  ``num_servers`` /
    ``duration_hours`` / ``seed`` rescale every scenario (the CI path);
    ``timeout_s`` bounds each individual run's wall clock.
    """
    run_specs, baseline_specs, resolved, baseline_keys = build_suite_specs(
        scenarios, policies, base=base, num_servers=num_servers,
        duration_hours=duration_hours, seed=seed, timeout_s=timeout_s,
        telemetry_dir=telemetry_dir, checks=checks)
    policy_list = list(policies) if policies is not None \
        else list(SCHEDULER_NAMES)

    runner = ExperimentRunner(max_workers=max_workers)
    outcomes = runner.run(run_specs + baseline_specs,
                          raise_on_error=False)
    run_outcomes = outcomes[:len(run_specs)]
    baseline_outcomes = outcomes[len(run_specs):]

    baselines: Dict[Tuple[str, str], SimulationResult] = {}
    baseline_failures: List[RunFailure] = []
    for spec, outcome in zip(baseline_specs, baseline_outcomes):
        if isinstance(outcome, RunFailure):
            baseline_failures.append(outcome)
            continue
        baselines[(config_sha256(spec.config), spec.policy)] = outcome

    # Cost/carbon accounting: one plant per scenario, sized at the
    # scenario's worst completed policy peak, so (a) no policy's bill
    # is silently clipped by an overloaded plant and (b) the dollars
    # compare across policies of the same scenario.
    scenario_peak_w: Dict[str, float] = {}
    for run_spec, outcome in zip(run_specs, run_outcomes):
        if not isinstance(outcome, RunFailure):
            scenario_peak_w[run_spec.scenario] = max(
                scenario_peak_w.get(run_spec.scenario, 0.0),
                float(outcome.peak_cooling_load_w))

    def _cost_carbon(scenario_name: str, outcome: SimulationResult
                     ) -> Tuple[float, float]:
        from ..tco.energy import (CarbonIntensityCurve, ElectricityTariff,
                                  cooling_energy_account)
        from ..thermal.plant import ChillerPlant
        plant = ChillerPlant(capacity_w=max(
            scenario_peak_w.get(scenario_name, 0.0), 1.0))
        account = cooling_energy_account(
            plant, outcome.cooling_load_w, outcome.times_s / 3600.0,
            ElectricityTariff(), outcome.config.trace.step_seconds,
            carbon=CarbonIntensityCurve(), warn_on_overload=False)
        return account.cost_usd, account.carbon_kg

    spec_by_name = {s.name: s for s in resolved}
    records: List[ScenarioRunRecord] = []
    for run_spec, outcome in zip(run_specs, run_outcomes):
        scenario = spec_by_name[run_spec.scenario]
        if isinstance(outcome, RunFailure):
            records.append(ScenarioRunRecord(
                scenario=scenario.name, policy=run_spec.policy,
                failure=outcome))
            continue
        cost_usd, carbon_kg = _cost_carbon(scenario.name, outcome)
        baseline = baselines.get(
            (baseline_keys[scenario.name], run_spec.policy))
        if baseline is None:
            records.append(ScenarioRunRecord(
                scenario=scenario.name, policy=run_spec.policy,
                peak_cooling_kw=outcome.peak_cooling_load_w / 1e3,
                min_availability=outcome.min_availability,
                qos_ok_fraction=qos_ok_fraction(outcome),
                energy_cost_usd=cost_usd, carbon_kg=carbon_kg,
                note="baseline run failed; checks skipped"))
            continue
        checks_run = verify_scenario(scenario, outcome, baseline,
                                     policy=run_spec.policy)
        base_peak = baseline.peak_cooling_load_w
        ratio = (outcome.peak_cooling_load_w / base_peak
                 if base_peak > 0 else float("nan"))
        records.append(ScenarioRunRecord(
            scenario=scenario.name, policy=run_spec.policy,
            checks=tuple(checks_run),
            peak_cooling_kw=outcome.peak_cooling_load_w / 1e3,
            peak_ratio_vs_baseline=ratio,
            min_availability=outcome.min_availability,
            qos_ok_fraction=qos_ok_fraction(outcome),
            energy_cost_usd=cost_usd, carbon_kg=carbon_kg))

    rankings = _rank_policies(records, policy_list)
    return SuiteReport(records=tuple(records), rankings=tuple(rankings),
                       baseline_failures=tuple(baseline_failures))


def _rank_policies(records: Sequence[ScenarioRunRecord],
                   policies: Sequence[str]) -> List[PolicyRanking]:
    rankings: List[PolicyRanking] = []
    for policy in policies:
        cells = [r for r in records if r.policy == policy]
        ratios = [r.peak_ratio_vs_baseline for r in cells
                  if r.peak_ratio_vs_baseline == r.peak_ratio_vs_baseline]
        rankings.append(PolicyRanking(
            policy=policy,
            completed=sum(1 for r in cells if r.completed),
            failed=sum(1 for r in cells if not r.completed),
            checks_passed=sum(
                sum(1 for c in r.checks if c.passed) for r in cells),
            checks_failed=sum(len(r.violations) for r in cells),
            mean_peak_ratio=(sum(ratios) / len(ratios) if ratios
                             else float("nan")),
        ))
    rankings.sort(key=lambda r: r.sort_key)
    return rankings

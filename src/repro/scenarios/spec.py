"""Declarative scenario specifications.

A :class:`ScenarioSpec` is pure data: a named bundle of stress
conditions -- demand events layered on the two-day trace, an ambient
(weather) profile, a fault script, and optional knob overrides -- that
*compiles* deterministically into a single
:class:`~repro.config.SimulationConfig`.  Because everything a scenario
does is expressed through the configuration tree, a compiled scenario
inherits the whole existing machinery for free: the trace cache keys on
it, the sanitizer audits it, checkpoints resume it, and the run ledger
fingerprints it.

Two specs with equal fields compile to equal configs; together with the
seeded construction path of the simulator that makes scenario runs
reproducible end to end, which :meth:`ScenarioSpec.sha256` captures in
one auditable hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..config import (AmbientConfig, DemandEventSpec, FaultConfig,
                      SimulationConfig, paper_cluster_config)
from ..errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")


def _cap_concurrent_downtime(server_faults, cap: int):
    """Drop faults so at most ``cap`` servers are ever down at once.

    Faults are considered in (server id, time) order and kept while
    their downtime interval overlaps fewer than ``cap`` already-kept
    intervals; original tuple order is preserved on return.  Entirely
    deterministic, so reduced-scale compilation stays reproducible.
    """
    if not server_faults:
        return server_faults
    kept = []
    for fault in sorted(server_faults,
                        key=lambda f: (f.server_id, f.time_s)):
        start = fault.time_s
        end = (start + fault.repair_after_s
               if fault.repair_after_s is not None else float("inf"))
        overlapping = sum(
            1 for other, other_end in kept
            if other.time_s < end and start < other_end)
        if overlapping < cap:
            kept.append((fault, end))
    kept_set = {id(fault) for fault, _ in kept}
    return tuple(f for f in server_faults if id(f) in kept_set)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, reproducible stress scenario.

    ``None`` knob overrides inherit from the base configuration the spec
    is compiled against (by default the paper's 100-server sweep
    cluster), so a scenario describes only what it *changes*.
    ``checks`` names the verifier properties
    (:mod:`repro.scenarios.verifier`) this scenario must satisfy.
    """

    name: str
    description: str = ""
    #: Cluster/scheduler knob overrides (``None`` = inherit base).
    num_servers: Optional[int] = None
    grouping_value: Optional[float] = None
    wax_threshold: Optional[float] = None
    inlet_stdev_c: Optional[float] = None
    duration_hours: Optional[float] = None
    seed: Optional[int] = None
    #: Stress layers (all default to inert).
    demand_events: Tuple[DemandEventSpec, ...] = ()
    ambient: AmbientConfig = field(default_factory=AmbientConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Verifier check keys this scenario is subject to.
    checks: Tuple[str, ...] = ()
    tags: Tuple[str, ...] = ()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if not _NAME_RE.match(self.name):
            raise ConfigurationError(
                f"scenario name must be kebab-case ([a-z0-9-]), "
                f"got {self.name!r}")
        if self.num_servers is not None and self.num_servers <= 0:
            raise ConfigurationError("num_servers override must be > 0")
        if self.duration_hours is not None and self.duration_hours <= 0:
            raise ConfigurationError("duration override must be > 0")
        for event in self.demand_events:
            event.validate()
        self.ambient.validate()
        self.faults.validate()

    # -- compilation --------------------------------------------------------

    def compile(self, base: Optional[SimulationConfig] = None
                ) -> SimulationConfig:
        """Compile into a full :class:`SimulationConfig`, deterministically.

        The returned config *is* the scenario: same spec + same base =>
        byte-identical config tree => identical trace, identical seeded
        run, identical ``SimulationResult.fingerprint()``.
        """
        self.validate()
        config = self._scaled_base(base)
        trace = dataclasses.replace(config.trace,
                                    overlay=tuple(self.demand_events))
        config = config.replace(trace=trace, ambient=self.ambient,
                                faults=self._clipped_faults(config))
        config.validate()
        return config

    def baseline(self, base: Optional[SimulationConfig] = None
                 ) -> SimulationConfig:
        """The matched *unstressed* config for metamorphic comparisons.

        Identical cluster, seed, and knob overrides -- but no demand
        events, nominal weather, and no faults.  Verifier properties
        compare a scenario run against this run (e.g. "hotter ambient
        never lowers peak cooling").
        """
        self.validate()
        config = self._scaled_base(base)
        config.validate()
        return config

    def _scaled_base(self, base: Optional[SimulationConfig]
                     ) -> SimulationConfig:
        """The base config with the spec's knob overrides applied."""
        if base is None:
            base = paper_cluster_config(
                num_servers=self.num_servers or 100,
                grouping_value=(self.grouping_value
                                if self.grouping_value is not None
                                else 22.0),
                seed=self.seed if self.seed is not None else 7,
                inlet_stdev_c=(self.inlet_stdev_c
                               if self.inlet_stdev_c is not None else 0.0),
                wax_threshold=(self.wax_threshold
                               if self.wax_threshold is not None
                               else 0.98))
        else:
            if self.num_servers is not None:
                base = base.replace(num_servers=self.num_servers)
            if self.seed is not None:
                base = base.replace(seed=self.seed)
            scheduler = base.scheduler
            if self.grouping_value is not None:
                scheduler = dataclasses.replace(
                    scheduler, grouping_value=self.grouping_value)
            if self.wax_threshold is not None:
                scheduler = dataclasses.replace(
                    scheduler, wax_threshold=self.wax_threshold)
            if scheduler is not base.scheduler:
                base = base.replace(scheduler=scheduler)
            if self.inlet_stdev_c is not None:
                base = base.replace(thermal=dataclasses.replace(
                    base.thermal, inlet_stdev_c=self.inlet_stdev_c))
        if self.duration_hours is not None:
            base = base.replace(trace=dataclasses.replace(
                base.trace, duration_hours=self.duration_hours))
        return base

    def _clipped_faults(self, config: SimulationConfig) -> FaultConfig:
        """The fault script rescaled to the compiled cluster size.

        Scenario fault scripts are written against the library's default
        cluster size; running the suite at reduced scale (CI) must not
        turn a 100-server rack failure into a config error -- or an
        unsurvivable capacity wipeout -- on a 12-server cluster.  Two
        deterministic rules: targets beyond the cluster are dropped
        (never aliased onto other servers), and *concurrently* downed
        servers are capped at a third of the fleet by dropping the
        highest-id overlapping faults.
        """
        faults = self.faults
        n = config.num_servers
        server_faults = tuple(s for s in faults.server_faults
                              if s.server_id < n)
        sensor_faults = tuple(s for s in faults.sensor_faults
                              if s.server_id < n)
        server_faults = _cap_concurrent_downtime(server_faults,
                                                 max(1, n // 3))
        if (server_faults != faults.server_faults
                or sensor_faults != faults.sensor_faults):
            faults = dataclasses.replace(faults,
                                         server_faults=server_faults,
                                         sensor_faults=sensor_faults)
        return faults

    # -- identity -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the spec to plain dictionaries (JSON-safe)."""
        return dataclasses.asdict(self)

    def sha256(self) -> str:
        """SHA-256 of the canonical (sorted-key JSON) spec tree.

        Recorded in the run ledger manifest of every suite run, so any
        result row can be traced back to the exact scenario definition
        that produced it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"), default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def with_overrides(self, *, num_servers: Optional[int] = None,
                       duration_hours: Optional[float] = None,
                       seed: Optional[int] = None) -> "ScenarioSpec":
        """A copy with reduced-scale (or reseeded) overrides applied.

        Used by the CI suite to run the full library on a small cluster
        and a short trace without editing the library definitions.
        """
        changes: Dict[str, Any] = {}
        if num_servers is not None:
            changes["num_servers"] = num_servers
        if duration_hours is not None:
            changes["duration_hours"] = duration_hours
        if seed is not None:
            changes["seed"] = seed
        return dataclasses.replace(self, **changes) if changes else self

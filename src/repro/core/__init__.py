"""The paper's contribution: VMT job placement (plus baselines).

* :mod:`~repro.core.scheduler` -- the scheduler interface, placement
  results, and the shared job-dealing machinery;
* :mod:`~repro.core.round_robin` -- the round-robin baseline (prior TTS
  work's scheduler);
* :mod:`~repro.core.coolest_first` -- the coolest-first thermal-aware
  baseline;
* :mod:`~repro.core.grouping` -- hot-group sizing (Eq. 1/2) and the
  empirical GV -> VMT mapping (Table II);
* :mod:`~repro.core.vmt_ta` -- VMT with Thermal Aware placement
  (Section III-A);
* :mod:`~repro.core.vmt_wa` -- VMT with Wax Aware placement
  (Section III-B);
* :mod:`~repro.core.policies` -- name-based factory.
"""

from .scheduler import Placement, Scheduler
from .round_robin import RoundRobinScheduler
from .coolest_first import CoolestFirstScheduler
from .grouping import (GroupSizer, derive_gv_vmt_mapping, hot_group_size)
from .planner import GVPlan, GVPlanner, LoadForecast
from .vmt_preserve import VMTPreserveScheduler
from .vmt_ta import VMTThermalAwareScheduler
from .vmt_wa import VMTWaxAwareScheduler
from .policies import make_scheduler, SCHEDULER_NAMES

__all__ = [
    "Placement", "Scheduler", "RoundRobinScheduler",
    "CoolestFirstScheduler", "GroupSizer", "GVPlan", "GVPlanner",
    "LoadForecast", "derive_gv_vmt_mapping", "hot_group_size",
    "VMTPreserveScheduler", "VMTThermalAwareScheduler",
    "VMTWaxAwareScheduler", "make_scheduler", "SCHEDULER_NAMES",
]

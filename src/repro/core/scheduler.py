"""Scheduler interface and shared job-dealing machinery.

A scheduler receives, once per tick, the demand vector (job-cores per
workload) and the scheduler-visible :class:`~repro.cluster.state.ClusterView`,
and returns a :class:`Placement`: a ``(servers x workloads)`` core
allocation plus (for VMT policies) the current hot-group mask.

The dealing helpers implement the placement primitives every policy
shares:

* :func:`waterfill_quotas` -- spread a job count over a server set as
  evenly as capacities allow (the "distributed evenly among the servers"
  of Section III-A);
* :func:`pack_quotas` -- fill servers to capacity in a given order (the
  coolest-first baseline);
* :func:`deal_types` -- turn per-workload counts plus per-server quotas
  into an allocation matrix, interleaving job types across servers the
  way an arrival-order dealer would.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.state import ClusterView
from ..config import SimulationConfig
from ..errors import CapacityError, SchedulingError
from ..sim.rng import RngStreams
from ..workloads.workload import WORKLOAD_LIST

NUM_WORKLOADS = len(WORKLOAD_LIST)


@dataclass(frozen=True)
class Placement:
    """One tick's scheduling decision."""

    allocation: np.ndarray                 # (num_servers, NUM_WORKLOADS)
    hot_group_mask: Optional[np.ndarray] = None  # bool (num_servers,)

    @property
    def jobs_placed(self) -> int:
        """Total job-cores placed."""
        return int(self.allocation.sum())


class Scheduler(abc.ABC):
    """Base class for all placement policies."""

    def __init__(self, config: SimulationConfig,
                 rng_streams: Optional[RngStreams] = None) -> None:
        config.validate()
        self._config = config
        streams = rng_streams if rng_streams is not None \
            else RngStreams(config.seed)
        self._rng = streams.stream(f"scheduler-{self.name}")
        self._tick = 0

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short policy name used in results and reports."""

    @property
    def config(self) -> SimulationConfig:
        """Simulation configuration the policy was built for."""
        return self._config

    @abc.abstractmethod
    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        """Policy-specific placement; demand has NUM_WORKLOADS entries."""

    def place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        """Validate, delegate to the policy, and verify conservation."""
        demand = np.asarray(demand, dtype=np.int64)
        if demand.shape != (NUM_WORKLOADS,):
            raise SchedulingError(
                f"demand must have {NUM_WORKLOADS} entries")
        if np.any(demand < 0):
            raise SchedulingError("demand must be non-negative")
        total = int(demand.sum())
        available = view.available_cores
        if total > available:
            if available < view.total_cores:
                failed = view.num_servers - view.num_active
                raise CapacityError(
                    f"demand {total} exceeds surviving capacity "
                    f"{available} ({failed} servers failed)")
            raise CapacityError(
                f"demand {total} exceeds cluster capacity "
                f"{view.total_cores}")
        placement = self._place(demand, view)
        placed = placement.allocation.sum(axis=0)
        if not np.array_equal(placed, demand):
            raise SchedulingError(
                f"{self.name}: placed {placed.tolist()} != demanded "
                f"{demand.tolist()}")
        self._tick += 1
        return placement

    def reset(self) -> None:
        """Clear per-run policy state (group extensions, tick counters)."""
        self._tick = 0

    def retarget_grouping(self, grouping_value: float) -> None:
        """Adopt a new grouping-value estimate mid-run (live control).

        The live engine's forecaster (or MPC controller) calls this at
        decision boundaries with its current GV estimate.  Policies
        without Eq. 1/2 grouping ignore it; VMT policies rebuild their
        group sizing.  The override never touches the configuration or
        the policy :attr:`name` (both encode the *configured* GV, which
        seeds the policy's RNG stream and keys snapshots), and calling
        with the configured GV is an exact no-op -- that is what makes a
        perfect forecaster bit-identical to the offline batch run.
        """

    def state_dict(self) -> dict:
        """Serializable mid-run state; subclasses extend via ``super()``.

        Includes the policy's own RNG state: schedulers built without a
        shared :class:`RngStreams` (the normal api/CLI path) own a
        private generator whose position is invisible to the
        simulation's stream registry, so it must travel with the policy.
        """
        return {"tick": self._tick,
                "rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._tick = int(state["tick"])
        self._rng.bit_generator.state = state["rng"]

    def register_metrics(self, registry) -> None:
        """Publish policy gauges on a :class:`~repro.obs.registry.MetricRegistry`.

        The base registers the tick counter and, for policies that
        expose one, the live hot-group size; subclasses extend via
        ``super().register_metrics(registry)``.  Gauges are
        callback-backed reads of existing state -- registration must
        never change placement behavior.
        """
        registry.gauge("scheduler.ticks", lambda: float(self._tick))
        if hasattr(type(self), "hot_group_size"):
            registry.gauge("scheduler.hot_group_size",
                           lambda: float(self.hot_group_size))


# -- dealing primitives ----------------------------------------------------


def waterfill_quotas(total: int, capacities: np.ndarray,
                     tie_offset: int = 0) -> np.ndarray:
    """Spread ``total`` jobs over servers as evenly as capacities allow.

    Every server receives the same count until its capacity binds; any
    sub-unit remainder goes to servers rotated by ``tie_offset`` so the
    leftover job does not always land on server 0.

    Raises :class:`CapacityError` when total capacity is insufficient.

    The even spread is the water level ``L``: every server gets
    ``min(cap, L)`` for the largest ``L`` that fits under ``total``, and
    the sub-unit remainder (one job each to the first few unsaturated
    servers, rotated) tops it up.  ``L`` is found in closed form from
    the sorted capacities -- with ``k`` servers saturated (the ``k``
    smallest), the level is ``(total - sum_of_k_smallest) // (n - k)``,
    and the right ``k`` is the first whose candidate level sits below
    the ``k``-th smallest capacity.
    """
    caps = np.asarray(capacities, dtype=np.int64)
    if np.any(caps < 0):
        raise SchedulingError("capacities must be >= 0")
    if total < 0:
        raise SchedulingError("total must be >= 0")
    if total > caps.sum():
        raise CapacityError(
            f"cannot place {total} jobs into capacity {int(caps.sum())}")
    if total == int(caps.sum()):
        return caps.copy()
    sorted_caps = np.sort(caps)
    saturated_sum = np.concatenate(([0], np.cumsum(sorted_caps)[:-1]))
    unsaturated = len(caps) - np.arange(len(caps))
    candidates = (total - saturated_sum) // unsaturated
    level = candidates[int(np.argmax(candidates < sorted_caps))]
    quotas = np.minimum(caps, level)
    remaining = total - int(quotas.sum())
    if remaining:
        active = np.flatnonzero(caps > level)
        rotated = np.roll(active, -(tie_offset % len(active)))
        quotas[rotated[:remaining]] += 1
    return quotas


def pack_quotas(total: int, capacities: np.ndarray,
                order: np.ndarray) -> np.ndarray:
    """Fill servers to capacity following ``order`` (e.g. coolest first)."""
    caps = np.asarray(capacities, dtype=np.int64)
    if total > caps.sum():
        raise CapacityError(
            f"cannot pack {total} jobs into capacity {int(caps.sum())}")
    quotas = np.zeros_like(caps)
    ordered_caps = caps[order]
    fill = np.minimum(ordered_caps,
                      np.maximum(0, total - np.concatenate(
                          ([0], np.cumsum(ordered_caps)[:-1]))))
    quotas[order] = fill
    return quotas


def deal_types(demand: np.ndarray, quotas: np.ndarray,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Turn per-workload demand and per-server quotas into an allocation.

    ``sum(demand) == sum(quotas)`` must hold.  Job types are shuffled (or
    left in workload order when ``rng is None``) and dealt across servers
    in round-robin slot order, reproducing the per-server workload-mix
    variance a real arrival-order dealer produces -- the reason round
    robin shows a wider temperature spread than coolest-first (Fig. 9 vs
    Fig. 10).
    """
    demand = np.asarray(demand, dtype=np.int64)
    quotas = np.asarray(quotas, dtype=np.int64)
    total = int(demand.sum())
    if total != int(quotas.sum()):
        raise SchedulingError(
            f"demand total {total} != quota total {int(quotas.sum())}")
    allocation = np.zeros((len(quotas), NUM_WORKLOADS), dtype=np.int64)
    if total == 0:
        return allocation

    types = np.repeat(np.arange(NUM_WORKLOADS), demand)
    if rng is not None:
        types = rng.permutation(types)

    # Slot order: slot j of server s ranks before slot j of server s+1 and
    # before slot j+1 of anyone, i.e. deal one job per server per round.
    ends = np.cumsum(quotas)
    starts = ends - quotas
    servers_for_slots = np.repeat(np.arange(len(quotas)), quotas)
    intra = np.arange(total) - np.repeat(starts, quotas)
    round_robin_order = np.argsort(intra, kind="stable")
    server_of_job = servers_for_slots[round_robin_order]

    flat = np.bincount(server_of_job * NUM_WORKLOADS + types,
                       minlength=len(quotas) * NUM_WORKLOADS)
    return flat.reshape(len(quotas), NUM_WORKLOADS)

"""Coolest-first baseline.

"The second is a more advanced coolest-first scheduler that presumes the
coolest servers have the greatest thermal headroom available and
schedules on them first." (Section V.)

Like the round-robin baseline this scheduler is job persistent with
churn, but its deltas are thermal aware: new arrivals pack onto the
coolest servers (by sensed air temperature) and departures drain from
the hottest.  That closed loop drives every server toward the fleet-mean
temperature -- the tight temperature band of Fig. 10 -- and still melts
no wax, because the fleet mean sits below the melting point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.state import ClusterView
from ..errors import ConfigurationError
from .round_robin import DEFAULT_CHURN_PER_TICK
from .scheduler import (NUM_WORKLOADS, Placement, Scheduler, deal_types,
                        pack_quotas)


class CoolestFirstScheduler(Scheduler):
    """Pack new jobs onto the coolest servers; drain the hottest first."""

    def __init__(self, *args, churn_per_tick: float = DEFAULT_CHURN_PER_TICK,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= churn_per_tick <= 1.0:
            raise ConfigurationError("churn must be in [0, 1]")
        self._churn = churn_per_tick
        self._alloc: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return "coolest-first"

    def reset(self) -> None:
        super().reset()
        self._alloc = None

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["alloc"] = None if self._alloc is None else self._alloc.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        alloc = state["alloc"]
        self._alloc = (None if alloc is None
                       else np.asarray(alloc, dtype=np.int64).copy())

    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        if self._alloc is None or len(self._alloc) != view.num_servers:
            self._alloc = np.zeros((view.num_servers, NUM_WORKLOADS),
                                   dtype=np.int64)
        alloc = self._alloc
        # Failures: clear dead rows so the displaced jobs re-enter the
        # arrival stream and pack onto surviving coolest servers.
        if view.active_mask is not None:
            alloc[~view.active_mask] = 0
        # Stable sorts on sensed temperature; ties break by server id.
        coolest_first = np.argsort(view.air_temp_c, kind="stable")
        hottest_first = coolest_first[::-1]

        # Churn: completed jobs leave; replacements re-enter as arrivals.
        if self._churn > 0 and alloc.sum():
            completed = self._rng.binomial(alloc, self._churn)
            alloc -= completed

        # Departures drain from the hottest servers running the workload.
        placed = alloc.sum(axis=0)
        for w in range(NUM_WORKLOADS):
            excess = int(placed[w] - demand[w])
            if excess > 0:
                removal = pack_quotas(excess, alloc[:, w], hottest_first)
                alloc[:, w] -= removal

        # Arrivals pack the coolest servers to capacity first.
        new = np.maximum(demand - alloc.sum(axis=0), 0)
        total_new = int(new.sum())
        if total_new:
            free = view.capacity_vector() - alloc.sum(axis=1)
            quotas = pack_quotas(total_new, free, coolest_first)
            alloc += deal_types(new, quotas, rng=self._rng)

        return Placement(allocation=alloc.copy())

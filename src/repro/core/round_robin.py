"""Round-robin baseline.

"In our experiments, we consider two baselines.  The first is a round
robin scheduler, the same used in prior work on TTS." (Section V.)

The scheduler is *job persistent with churn*: jobs placed in earlier
intervals stay where they are until they complete (an exponential
lifetime, ``churn_per_tick`` of running jobs finishing each minute);
each tick the completions plus the demand delta are re-dealt one per
server in rotation (classic round robin), and net departures drain
evenly from the servers running that workload.  Because arrivals mix
workload types randomly and linger for many minutes, individual servers
carry different hot/cold blends at any instant, which is exactly why the
round-robin heatmap (Fig. 9) shows a visible temperature spread even
though every server carries the same job *count*.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.state import ClusterView
from ..errors import ConfigurationError
from .scheduler import (NUM_WORKLOADS, Placement, Scheduler, deal_types,
                        waterfill_quotas)

#: Default fraction of running jobs completing per one-minute tick
#: (mean job lifetime ~10 minutes).
DEFAULT_CHURN_PER_TICK = 0.10


class RoundRobinScheduler(Scheduler):
    """Deal new jobs evenly across all servers; drain departures evenly."""

    def __init__(self, *args, churn_per_tick: float = DEFAULT_CHURN_PER_TICK,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= churn_per_tick <= 1.0:
            raise ConfigurationError("churn must be in [0, 1]")
        self._churn = churn_per_tick
        self._alloc: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return "round-robin"

    def reset(self) -> None:
        super().reset()
        self._alloc = None

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["alloc"] = None if self._alloc is None else self._alloc.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        alloc = state["alloc"]
        self._alloc = (None if alloc is None
                       else np.asarray(alloc, dtype=np.int64).copy())

    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        if self._alloc is None or len(self._alloc) != view.num_servers:
            self._alloc = np.zeros((view.num_servers, NUM_WORKLOADS),
                                   dtype=np.int64)
        alloc = self._alloc

        # Failures: jobs on dead servers are lost; clearing their rows
        # drops the placed count, so the displaced jobs re-enter the
        # arrival stream below and land on survivors.
        if view.active_mask is not None:
            alloc[~view.active_mask] = 0

        # Churn: a fraction of running jobs completes this minute; the
        # replacements re-enter the arrival stream below.
        if self._churn > 0 and alloc.sum():
            completed = self._rng.binomial(alloc, self._churn)
            alloc -= completed

        # Departures: jobs of each shrinking workload finish; drain them
        # evenly from the servers currently running that workload.
        placed = alloc.sum(axis=0)
        for w in range(NUM_WORKLOADS):
            excess = int(placed[w] - demand[w])
            if excess > 0:
                removal = waterfill_quotas(excess, alloc[:, w],
                                           tie_offset=self._tick)
                alloc[:, w] -= removal

        # Arrivals: deal the new jobs one per server in rotation.
        new = np.maximum(demand - alloc.sum(axis=0), 0)
        total_new = int(new.sum())
        if total_new:
            free = view.capacity_vector() - alloc.sum(axis=1)
            quotas = waterfill_quotas(total_new, free,
                                      tie_offset=self._tick)
            alloc += deal_types(new, quotas, rng=self._rng)

        return Placement(allocation=alloc.copy())

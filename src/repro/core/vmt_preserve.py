"""VMT with wax-preserving job placement (the paper's extension).

Section III notes that "VMT can also *raise* the melting temperature by
locating hot jobs in a subset of servers with already melted wax,
preserving wax in anticipation of a very hot peak still to come" -- the
paper leaves this direction as future work and focuses on lowering the
melting point.  This module implements it.

The policy is two-phase:

* **Preserve phase** (utilization below ``release_utilization``): hot
  jobs first pack onto servers whose wax is *already melted* (liquid wax
  absorbs nothing, so their heat is free), and the remainder is diluted
  evenly across the entire rest of the fleet.  Spreading minimizes
  melting because absorption is ``hA * (T - T_melt)+`` -- a convex
  function of per-server power -- so the same total heat melts the least
  wax when no server pokes far above the melt point;
* **Release phase** (utilization at or above the threshold, i.e. the
  very hot peak has arrived): the policy behaves exactly like VMT-WA --
  melted servers are held just warm, the preserved frozen servers take
  the peak's heat and melt, and the group extends if they too fill up.

Compared to VMT-TA, which would smear a long warm shoulder across the
whole hot group and arrive at the true peak with little latent capacity
left, preservation trades some shoulder-time absorption for capacity at
the moment the cooling plant actually needs it.
"""

from __future__ import annotations

import numpy as np

from ..cluster.state import ClusterView
from ..config import SimulationConfig
from ..errors import ConfigurationError
from .scheduler import NUM_WORKLOADS, Placement
from .vmt_ta import split_demand
from .vmt_wa import VMTWaxAwareScheduler


class VMTPreserveScheduler(VMTWaxAwareScheduler):
    """Preserve frozen wax for the hottest part of the day."""

    def __init__(self, config: SimulationConfig, *,
                 release_utilization: float = 0.85, **kwargs) -> None:
        super().__init__(config, **kwargs)
        if not 0.0 < release_utilization <= 1.0:
            raise ConfigurationError(
                "release utilization must be in (0, 1]")
        self._release_util = release_utilization
        self._released = False

    @property
    def name(self) -> str:
        return (f"vmt-preserve(gv="
                f"{self._config.scheduler.grouping_value:g})")

    @property
    def release_utilization(self) -> float:
        """Utilization at which the frozen reserve is committed."""
        return self._release_util

    def reset(self) -> None:
        super().reset()
        self._released = False

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["released"] = self._released
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._released = bool(state["released"])

    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        self._check_divergence(view)
        if self._degraded:
            # Preservation is steered entirely by the melt estimate; with
            # the estimator untrusted, fall through to the VMT-WA path,
            # which itself degrades to TA behaviour.
            return super()._place(demand, view)
        utilization = demand.sum() / view.total_cores
        # Hysteresis: once the reserve is committed, stay in release mode
        # through the whole peak and its descent (VMT-WA's keep-warm
        # taper paces the refreeze); re-arm only after the load has
        # fallen to the deep off-peak level.
        if utilization >= self._release_util:
            self._released = True
        elif utilization < self._keep_warm_release_util:
            self._released = False
        if self._released:
            # The very hot peak: spend the reserve, VMT-WA style.
            return super()._place(demand, view)
        return self._place_preserving(demand, view)

    def _place_preserving(self, demand: np.ndarray,
                          view: ClusterView) -> Placement:
        """Park hot load on melted servers; dilute the rest fleet-wide."""
        # Nothing is kept warm while preserving, so the keep-warm
        # hysteresis latch must not survive a release -> preserve
        # transition.
        self._kept_warm = np.zeros(view.num_servers, dtype=bool)
        self._observe_inlets(view)
        self._update_group_size(view)
        hot_demand, cold_demand = split_demand(demand)
        hot_size = self._hot_size

        # Failed servers expose zero capacity to every dealing pass.
        free = view.capacity_vector()
        allocation = np.zeros((view.num_servers, NUM_WORKLOADS),
                              dtype=np.int64)

        # Hot jobs: servers whose wax is already melted first -- their
        # liquid wax absorbs nothing, so the heat costs no reserve.
        melted_ids = np.flatnonzero(
            view.wax_melt_estimate >= self._wax_threshold)
        self._spread(hot_demand, melted_ids, free, allocation, pack=True)

        # Everything else -- hot remainder and all cold jobs -- spreads
        # evenly over the whole remaining fleet so no server approaches
        # the melting point.
        frozen_ids = np.flatnonzero(
            view.wax_melt_estimate < self._wax_threshold)
        self._spread(hot_demand, frozen_ids, free, allocation)
        self._spread(cold_demand, frozen_ids, free, allocation)
        self._spread(cold_demand, melted_ids, free, allocation, pack=True)

        self._record_allocation(allocation)
        hot_mask = np.zeros(view.num_servers, dtype=bool)
        hot_mask[:hot_size] = True
        return Placement(allocation=allocation, hot_group_mask=hot_mask)

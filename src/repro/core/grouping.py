"""Hot-group sizing (Eq. 1/2) and the empirical GV -> VMT mapping.

The Grouping Value (GV) is VMT's single tuning knob.  Equation 1 sizes
the hot group::

    hot_group_size = GV / PMT * num_servers

and Equation 2 gives the cold group the remainder.  The GV has no closed
-form mapping to an equivalent *virtual* melting temperature -- it depends
on the PMT, the workload power profile, and the mixture -- but a mapping
can be derived experimentally for a given configuration (Table II).  The
paper derives it "by running multiple experiments where the wax heat of
fusion is modified to match the available thermal energy storage in the
hot group and the PMT is swept above and below the starting melting
temperature"; :func:`derive_gv_vmt_mapping` reproduces that procedure.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError


def hot_group_size(grouping_value: float, melt_temp_c: float,
                   num_servers: int) -> int:
    """Equation 1: servers assigned to the hot group.

    The result is clipped to ``[0, num_servers]``: a GV at or above the
    PMT simply puts every server in the hot group (at which point VMT
    degenerates to plain TTS behaviour).

    Rounding convention: exact ``.5`` fractions round *half-up*
    (``floor(x + 0.5)``), so the hot group never loses a server to
    Python's banker's rounding.  ``round()`` would map a fractional
    size of 0.5 to an *empty* hot group (0 is even) and 56.5 to 56,
    making adjacent GV values non-monotone in hot-group size at
    half-way boundaries.
    """
    if grouping_value <= 0:
        raise ConfigurationError("grouping value must be positive")
    if melt_temp_c <= 0:
        raise ConfigurationError("melting temperature must be positive")
    if num_servers <= 0:
        raise ConfigurationError("num_servers must be positive")
    size = math.floor(grouping_value / melt_temp_c * num_servers + 0.5)
    return max(0, min(num_servers, size))


def cold_group_size(grouping_value: float, melt_temp_c: float,
                    num_servers: int) -> int:
    """Equation 2: the cold group is simply the remaining servers."""
    return num_servers - hot_group_size(grouping_value, melt_temp_c,
                                        num_servers)


@dataclass(frozen=True)
class GroupSizer:
    """Caches Eq. 1/2 for one cluster configuration."""

    grouping_value: float
    melt_temp_c: float
    num_servers: int

    @property
    def hot_size(self) -> int:
        """Servers in the hot group."""
        return hot_group_size(self.grouping_value, self.melt_temp_c,
                              self.num_servers)

    @property
    def cold_size(self) -> int:
        """Servers in the cold group."""
        return self.num_servers - self.hot_size

    @property
    def hot_fraction(self) -> float:
        """Fraction of the fleet in the hot group."""
        return self.hot_size / self.num_servers

    def hot_mask(self) -> np.ndarray:
        """Boolean membership mask; hot group occupies the low server ids.

        Note the paper's remark that hot-group servers "do not need to be
        physically clustered"; low ids are an arbitrary but deterministic
        labeling.
        """
        mask = np.zeros(self.num_servers, dtype=bool)
        mask[:self.hot_size] = True
        return mask


def _melting_onset_hour(result) -> Optional[float]:
    """First hour at which a run's wax melting becomes significant.

    "Significant" is 1% of the cluster's wax melted -- early enough to be
    an onset measure, late enough to ignore sensor-noise nibbles.
    """
    melted = result.mean_melt_fraction >= 0.01
    if not melted.any():
        return None
    return float(result.times_hours[int(np.argmax(melted))])


def derive_gv_vmt_mapping(
        config: SimulationConfig,
        grouping_values: Sequence[float],
        candidate_melt_temps_c: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float]]:
    """Empirically derive the GV -> VMT mapping (Table II).

    The paper derives its mapping "by running multiple experiments where
    the wax heat of fusion is modified to match the available thermal
    energy storage in the hot group and the PMT is swept above and below
    the starting melting temperature".  We reproduce that procedure with
    explicit equivalence semantics: the *virtual melting temperature* of
    a GV is the physical melting temperature ``T*`` at which a plain
    round-robin cluster -- its heat of fusion scaled down to the hot
    group's share, matching the available storage -- **starts melting wax
    at the same time** as VMT-TA does at that GV.  A hotter (smaller,
    lower-GV) hot group melts wax earlier, so it behaves like wax with a
    lower melting point: exactly the "reducing the melting point"
    framing of Section III.

    Returns ``[(gv, vmt_celsius), ...]``.  GVs whose hot group never
    melts map to the PMT itself (the paper notes such settings are
    indistinguishable because the datacenter no longer melts wax).  The
    mapping is non-linear and specific to the configuration's workload
    mixture, as the paper cautions.

    This runs ``len(grouping_values) + len(candidates)`` two-day
    simulations; use a 100-server config as the paper does for sweeps.
    """
    # Imported lazily: grouping is imported by the package __init__ before
    # the cluster simulation module finishes loading.
    from ..cluster.simulation import run_simulation
    from .round_robin import RoundRobinScheduler
    from .vmt_ta import VMTThermalAwareScheduler

    pmt = config.wax.melt_temp_c
    if candidate_melt_temps_c is None:
        candidate_melt_temps_c = [pmt + 2.0 - step
                                  for step in np.arange(0.0, 10.0, 0.5)]

    # Onset hour for each candidate physical melt temp under round robin
    # with fusion scaled to a nominal hot-group share.  (The scale factor
    # does not change the onset, only how long melting lasts; it mirrors
    # the paper's capacity-matching step.)
    nominal_share = GroupSizer(config.scheduler.grouping_value, pmt,
                               config.num_servers).hot_fraction
    candidate_onset: Dict[float, Optional[float]] = {}
    for melt_temp in candidate_melt_temps_c:
        scaled = config.replace(
            wax=config.wax.with_melt_temp(melt_temp).scaled_latent(
                max(nominal_share, 1e-9)))
        result = run_simulation(scaled, RoundRobinScheduler(scaled),
                                record_heatmaps=False)
        candidate_onset[melt_temp] = _melting_onset_hour(result)

    mapping: List[Tuple[float, float]] = []
    for gv in grouping_values:
        vmt_config = config.replace(
            scheduler=dataclasses.replace(config.scheduler,
                                          grouping_value=gv))
        result = run_simulation(vmt_config,
                                VMTThermalAwareScheduler(vmt_config),
                                record_heatmaps=False)
        onset = _melting_onset_hour(result)
        if onset is None:
            # No wax melts at this GV; indistinguishable from the PMT.
            mapping.append((gv, pmt))
            continue
        best_temp, best_gap = pmt, float("inf")
        for melt_temp, cand in candidate_onset.items():
            if cand is None:
                continue
            gap = abs(cand - onset)
            if gap < best_gap or (gap == best_gap
                                  and abs(melt_temp - pmt)
                                  < abs(best_temp - pmt)):
                best_temp, best_gap = melt_temp, gap
        mapping.append((gv, best_temp))
    return mapping

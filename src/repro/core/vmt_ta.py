"""VMT with Thermal Aware job placement (Section III-A).

The cluster is split once into a hot group (Eq. 1) and a cold group
(Eq. 2).  Hot jobs are distributed evenly among the hot group, cold jobs
among the cold group.  Group membership is static for the run -- the lack
of any reaction to the wax state is VMT-TA's defining weakness, exposed
when a low GV melts all the wax before the load peak (Fig. 13, GV=20).

Spillover: "care must be taken to ensure each group is large enough to
support the peak load for its respective subset of workloads ... This can
be handled ... by allowing jobs to be scheduled to the other group if one
group fills up."  We implement that overflow rule: jobs that do not fit
in their preferred group spill, evenly, into the other group's free
cores.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..cluster.state import ClusterView
from ..config import SimulationConfig
from ..errors import SchedulingError
from ..workloads.workload import COLD_INDICES, HOT_INDICES
from .grouping import GroupSizer
from .scheduler import (NUM_WORKLOADS, Placement, Scheduler, deal_types,
                        waterfill_quotas)


def split_demand(demand: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a demand vector into its hot-only and cold-only parts."""
    hot = np.zeros(NUM_WORKLOADS, dtype=np.int64)
    cold = np.zeros(NUM_WORKLOADS, dtype=np.int64)
    hot[list(HOT_INDICES)] = demand[list(HOT_INDICES)]
    cold[list(COLD_INDICES)] = demand[list(COLD_INDICES)]
    return hot, cold


class VMTThermalAwareScheduler(Scheduler):
    """Static hot/cold grouping by workload thermal class."""

    def __init__(self, config: SimulationConfig, **kwargs) -> None:
        super().__init__(config, **kwargs)
        self._sizer = GroupSizer(
            grouping_value=config.scheduler.grouping_value,
            melt_temp_c=config.wax.melt_temp_c,
            num_servers=config.num_servers,
        )
        self._gv_override: float = config.scheduler.grouping_value

    @property
    def name(self) -> str:
        return f"vmt-ta(gv={self._config.scheduler.grouping_value:g})"

    @property
    def sizer(self) -> GroupSizer:
        """The Eq. 1/2 group sizing in force."""
        return self._sizer

    def retarget_grouping(self, grouping_value: float) -> None:
        grouping_value = float(grouping_value)
        if grouping_value == self._gv_override:
            return
        self._gv_override = grouping_value
        self._sizer = GroupSizer(
            grouping_value=grouping_value,
            melt_temp_c=self._config.wax.melt_temp_c,
            num_servers=self._config.num_servers,
        )

    def reset(self) -> None:
        super().reset()
        self.retarget_grouping(self._config.scheduler.grouping_value)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["gv_override"] = self._gv_override
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        # .get(): snapshots written before live retargeting existed
        # carry no override and restore to the configured GV.
        self.retarget_grouping(
            state.get("gv_override",
                      self._config.scheduler.grouping_value))

    def _place_group(self, demand_part: np.ndarray,
                     member_ids: np.ndarray, free: np.ndarray,
                     allocation: np.ndarray) -> int:
        """Place as much of ``demand_part`` as fits evenly in a group.

        Mutates ``free`` and ``allocation``; returns the spillover count.
        ``demand_part`` is reduced in place proportionally when it cannot
        all fit (excess types are preserved for the spill pass).
        """
        total = int(demand_part.sum())
        if total == 0 or len(member_ids) == 0:
            return total
        capacity = int(free[member_ids].sum())
        fit = min(total, capacity)
        if fit == 0:
            return total
        # Take a proportional slice of each workload for this group; the
        # remainder spills with its type mix intact.
        taken = np.minimum(demand_part,
                           (demand_part * fit) // max(total, 1))
        shortfall = fit - int(taken.sum())
        if shortfall > 0:
            leftovers = demand_part - taken
            order = np.argsort(-leftovers)
            for idx in order:
                grab = min(shortfall, int(leftovers[idx]))
                taken[idx] += grab
                shortfall -= grab
                if shortfall == 0:
                    break
        quotas = waterfill_quotas(int(taken.sum()), free[member_ids],
                                  tie_offset=self._tick)
        allocation[member_ids] += deal_types(taken, quotas, rng=self._rng)
        free[member_ids] -= quotas
        demand_part -= taken
        return int(demand_part.sum())

    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        if view.num_servers != self._config.num_servers:
            raise SchedulingError("view does not match configured cluster")
        hot_demand, cold_demand = split_demand(demand)
        hot_mask = self._sizer.hot_mask()
        hot_ids = np.flatnonzero(hot_mask)
        cold_ids = np.flatnonzero(~hot_mask)

        # Failed servers contribute zero capacity, so the dealing passes
        # below route around them and displaced demand spills naturally.
        free = view.capacity_vector()
        allocation = np.zeros((view.num_servers, NUM_WORKLOADS),
                              dtype=np.int64)

        # Preferred groups first; whatever does not fit spills across.
        self._place_group(hot_demand, hot_ids, free, allocation)
        self._place_group(cold_demand, cold_ids, free, allocation)
        self._place_group(hot_demand, cold_ids, free, allocation)
        self._place_group(cold_demand, hot_ids, free, allocation)
        if hot_demand.sum() or cold_demand.sum():
            raise SchedulingError("VMT-TA failed to place all jobs")
        return Placement(allocation=allocation, hot_group_mask=hot_mask)

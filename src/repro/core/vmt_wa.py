"""VMT with Wax Aware job placement (Section III-B).

VMT-WA starts exactly like VMT-TA (Eq. 1 group sizing) but monitors the
per-server wax state and reacts when hot-group servers become fully
melted:

* the hot group is re-derived every update: "the scheduler restarts from
  the minimum hot group size and adds servers in order" -- one extra
  server per fully melted server (estimate >= the wax threshold);
* melted servers receive *just enough* hot load to stay above the melting
  temperature (releasing stored heat mid-peak would raise the cooling
  load), while the displaced load moves to the newly added servers to
  melt fresh wax;
* hot jobs that do not fit go to cold-group servers sequentially; cold
  jobs that do not fit prefer already-melted hot servers (minimal thermal
  impact), then anything else.

The "current load trends" that gate the keep-warm behaviour are modeled
with a utilization threshold: during the load peak melted servers are
held warm; once the cluster drops toward the trough, keep-warm disengages
so the wax can refreeze and release its energy overnight, as TTS
requires.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..cluster.state import ClusterView
from ..config import SimulationConfig
from ..errors import SchedulingError
from ..workloads.workload import HOT_INDICES, WORKLOAD_LIST
from .grouping import GroupSizer
from .scheduler import (NUM_WORKLOADS, Placement, Scheduler, deal_types,
                        pack_quotas, waterfill_quotas)
from .vmt_ta import split_demand


def keep_warm_power_w(config: SimulationConfig,
                      margin_c: float = 1.0) -> float:
    """Dynamic power needed to hold a server just above the melt point.

    Solves the steady-state air model ``T = inlet + R_air * P`` for
    ``T = melt + margin`` and subtracts the idle floor.
    """
    thermal = config.thermal
    target = config.wax.melt_temp_c + margin_c
    power_needed = (target - thermal.inlet_temp_c) / thermal.r_air_c_per_w
    return max(0.0, power_needed - config.server.idle_power_w)


def mean_hot_core_power_w(config: SimulationConfig,
                          hot_demand: Optional[np.ndarray] = None) -> float:
    """Mean per-core power of the hot workloads.

    When the current hot demand vector is supplied the mean is weighted
    by the observed mix (what a deployed scheduler would compute from its
    power sensors); otherwise the unweighted mean is used.
    """
    per_core = [WORKLOAD_LIST[i].per_core_power_w(
        config.server.cores_per_socket) for i in HOT_INDICES]
    if hot_demand is not None:
        weights = [float(hot_demand[i]) for i in HOT_INDICES]
        total = sum(weights)
        if total > 0:
            return sum(w * p for w, p in zip(weights, per_core)) / total
    return sum(per_core) / len(per_core)


def keep_warm_cores(config: SimulationConfig, margin_c: float = 1.0,
                    hot_demand: Optional[np.ndarray] = None) -> int:
    """Hot job-cores needed to hold an otherwise idle server melted."""
    mean_hot = mean_hot_core_power_w(config, hot_demand)
    dynamic = keep_warm_power_w(config, margin_c)
    cores = math.ceil(dynamic / mean_hot) if mean_hot > 0 else 0
    return min(cores, config.server.cores)


class VMTWaxAwareScheduler(Scheduler):
    """Dynamic hot-group extension driven by the wax state estimate."""

    def __init__(self, config: SimulationConfig, *,
                 keep_warm_margin_c: float = 0.4,
                 keep_warm_min_utilization: float = 0.6,
                 keep_warm_release_utilization: float = 0.35,
                 melted_hysteresis: float = 0.05,
                 detect_divergence: bool = True,
                 divergence_margin_c: float = 2.0,
                 divergence_ticks: int = 12,
                 **kwargs) -> None:
        super().__init__(config, **kwargs)
        self._base_sizer = GroupSizer(
            grouping_value=config.scheduler.grouping_value,
            melt_temp_c=config.wax.melt_temp_c,
            num_servers=config.num_servers,
        )
        self._wax_threshold = config.scheduler.wax_threshold
        if not 0.0 <= melted_hysteresis <= self._wax_threshold:
            raise SchedulingError(
                "melted_hysteresis must be in [0, wax_threshold]")
        self._release_threshold = self._wax_threshold - melted_hysteresis
        self._kept_warm = np.zeros(config.num_servers, dtype=bool)
        # Closed-loop keep-warm: per-server inlet estimate learned from
        # the air sensors and the scheduler's own past allocations.
        self._prev_power_w: Optional[np.ndarray] = None
        self._inlet_est: Optional[np.ndarray] = None
        self._inlet_ema_alpha = 0.1
        self._keep_warm_margin_c = keep_warm_margin_c
        self._keep_warm_min_util = keep_warm_min_utilization
        self._keep_warm_release_util = keep_warm_release_utilization
        self._hot_size = self._base_sizer.hot_size
        self._per_core_power = np.array(
            [w.per_core_power_w(config.server.cores_per_socket)
             for w in WORKLOAD_LIST])
        if divergence_ticks < 1:
            raise SchedulingError("divergence_ticks must be >= 1")
        self._detect_divergence = detect_divergence
        self._divergence_margin_c = divergence_margin_c
        self._divergence_ticks = divergence_ticks
        self._degraded = False
        self._prev_estimate: Optional[np.ndarray] = None
        self._suspect_ticks: Optional[np.ndarray] = None
        self._divergence_checked_tick = -1
        self._gv_override: float = config.scheduler.grouping_value

    @property
    def name(self) -> str:
        return f"vmt-wa(gv={self._config.scheduler.grouping_value:g})"

    @property
    def base_sizer(self) -> GroupSizer:
        """The Eq. 1/2 minimum group sizing."""
        return self._base_sizer

    def retarget_grouping(self, grouping_value: float) -> None:
        grouping_value = float(grouping_value)
        if grouping_value == self._gv_override:
            return
        self._gv_override = grouping_value
        self._base_sizer = GroupSizer(
            grouping_value=grouping_value,
            melt_temp_c=self._config.wax.melt_temp_c,
            num_servers=self._config.num_servers,
        )
        # _hot_size is re-derived from the new base on the next tick's
        # _update_group_size; no other cached state depends on the GV.

    @property
    def hot_group_size(self) -> int:
        """Current (possibly extended) hot group size."""
        return self._hot_size

    @property
    def degraded(self) -> bool:
        """True once estimator divergence has forced the TA fallback."""
        return self._degraded

    @property
    def wax_threshold(self) -> float:
        """Melt-estimate level at which a server counts as melted."""
        return self._wax_threshold

    @property
    def wax_release_threshold(self) -> float:
        """Estimate level below which a kept-warm server stops counting.

        Keep-warm holds melted servers *at* the melt point, which parks
        their estimate right at the threshold where sensor noise makes
        it flicker.  A server the scheduler is actively keeping warm
        therefore stays classified as melted until its estimate falls
        through this lower bound -- classic hysteresis, preventing the
        hot group from churning mid-peak on estimator noise.
        """
        return self._release_threshold

    @property
    def keep_warm_min_utilization(self) -> float:
        """Utilization at/above which keep-warm is fully engaged."""
        return self._keep_warm_min_util

    @property
    def keep_warm_release_utilization(self) -> float:
        """Utilization at/below which keep-warm fully disengages."""
        return self._keep_warm_release_util

    def reset(self) -> None:
        super().reset()
        self.retarget_grouping(self._config.scheduler.grouping_value)
        self._hot_size = self._base_sizer.hot_size
        self._degraded = False
        self._prev_estimate = None
        self._suspect_ticks = None
        self._divergence_checked_tick = -1
        self._kept_warm = np.zeros(self._config.num_servers, dtype=bool)
        self._prev_power_w = None
        self._inlet_est = None

    def state_dict(self) -> dict:
        def opt(arr):
            return None if arr is None else arr.copy()
        state = super().state_dict()
        state.update(
            kept_warm=self._kept_warm.copy(),
            prev_power_w=opt(self._prev_power_w),
            inlet_est=opt(self._inlet_est),
            hot_size=self._hot_size,
            degraded=self._degraded,
            prev_estimate=opt(self._prev_estimate),
            suspect_ticks=opt(self._suspect_ticks),
            divergence_checked_tick=self._divergence_checked_tick,
            gv_override=self._gv_override,
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        def opt(value, dtype):
            return (None if value is None
                    else np.asarray(value, dtype=dtype).copy())
        super().load_state_dict(state)
        # .get(): pre-live snapshots carry no override.
        self.retarget_grouping(
            state.get("gv_override",
                      self._config.scheduler.grouping_value))
        self._kept_warm = np.asarray(state["kept_warm"], dtype=bool).copy()
        self._prev_power_w = opt(state["prev_power_w"], np.float64)
        self._inlet_est = opt(state["inlet_est"], np.float64)
        self._hot_size = int(state["hot_size"])
        self._degraded = bool(state["degraded"])
        self._prev_estimate = opt(state["prev_estimate"], np.float64)
        self._suspect_ticks = opt(state["suspect_ticks"], np.int64)
        self._divergence_checked_tick = int(
            state["divergence_checked_tick"])

    def register_metrics(self, registry) -> None:
        """Add the estimator-health gauges on top of the base set."""
        super().register_metrics(registry)
        registry.gauge("scheduler.degraded",
                       lambda: 1.0 if self._degraded else 0.0)
        registry.gauge("scheduler.base_hot_group_size",
                       lambda: float(self._base_sizer.hot_size))

    # -- estimator health ---------------------------------------------------

    def _check_divergence(self, view: ClusterView) -> None:
        """Watch for a wax estimate that contradicts the air sensors.

        A healthy estimate moves toward melted whenever the air is
        clearly above the melting point and toward frozen whenever it is
        clearly below.  A stuck or drifting container-exterior sensor
        breaks that coupling: the estimate freezes (or runs the wrong
        way) while the air says otherwise.  After ``divergence_ticks``
        consecutive contradictions on any server the estimate can no
        longer be trusted, and the policy degrades to VMT-TA behaviour
        (static minimum hot group, no melt tracking) for the rest of the
        run -- hotter cooling peaks, but no thermal violations.

        Idempotent per scheduling tick so the preserve subclass may call
        it from either placement path.
        """
        if not self._detect_divergence or self._degraded:
            return
        if self._divergence_checked_tick == self._tick:
            return
        self._divergence_checked_tick = self._tick
        est = view.wax_melt_estimate
        if (self._prev_estimate is None
                or len(self._prev_estimate) != len(est)):
            self._prev_estimate = est.copy()
            self._suspect_ticks = np.zeros(len(est), dtype=np.int64)
            return
        delta = est - self._prev_estimate
        air = view.air_temp_c
        melt = view.melt_temp_c
        margin = self._divergence_margin_c
        # Air well above the melt point but the estimate refuses to rise
        # toward melted -- or well below it while the estimate refuses to
        # fall toward frozen.  The margin keeps sensor noise out; the
        # consecutive-tick count keeps transients out.
        stuck_low = ((air > melt + margin)
                     & (est < self._wax_threshold) & (delta <= 1e-9))
        stuck_high = ((air < melt - margin)
                      & (est > 0.0) & (delta >= -1e-9))
        suspect = stuck_low | stuck_high
        self._suspect_ticks = np.where(
            suspect, self._suspect_ticks + 1, 0)
        self._prev_estimate = est.copy()
        if np.any(self._suspect_ticks >= self._divergence_ticks):
            self._degraded = True

    # -- inlet estimation ---------------------------------------------------

    def _observe_inlets(self, view: ClusterView) -> None:
        """Update the per-server inlet estimate from this tick's sensors.

        In steady state the air model gives ``T = inlet + R_air * P``,
        so a scheduler that remembers the power implied by its own last
        allocation can invert the relation per server:
        ``inlet_i = T_sensed_i - R_air * P_i``.  An exponential moving
        average smooths sensor noise and the lag transient.  Keep-warm
        needs this: inlets vary across the room, and sizing every
        server's hold power from the *nominal* inlet leaves
        colder-than-nominal servers below the melting point, silently
        refreezing mid-peak (the group-partition invariant catches the
        resulting hot-group shrink).
        """
        if self._prev_power_w is None:
            return
        sample = (view.air_temp_c
                  - self._config.thermal.r_air_c_per_w
                  * self._prev_power_w)
        if self._inlet_est is None or len(self._inlet_est) != len(sample):
            self._inlet_est = sample.copy()
        else:
            self._inlet_est += self._inlet_ema_alpha * (
                sample - self._inlet_est)

    def _record_allocation(self, allocation: np.ndarray) -> None:
        """Remember the power the last allocation implies per server."""
        self._prev_power_w = (self._config.server.idle_power_w
                              + allocation.astype(np.float64)
                              @ self._per_core_power)

    def _keep_warm_targets_w(self, melted_hot: np.ndarray) -> np.ndarray:
        """Per-server dynamic power needed to hold each server melted.

        Uses the learned per-server inlet estimate when available and
        falls back to the nominal-inlet figure for the first ticks of a
        run (before any allocation has been observed).
        """
        target_temp = (self._config.wax.melt_temp_c
                       + self._keep_warm_margin_c)
        if self._inlet_est is None:
            return np.full(len(melted_hot),
                           keep_warm_power_w(self._config,
                                             self._keep_warm_margin_c))
        needed = ((target_temp - self._inlet_est[melted_hot])
                  / self._config.thermal.r_air_c_per_w)
        return np.maximum(0.0, needed - self._config.server.idle_power_w)

    # -- group management ---------------------------------------------------

    def _melted_mask(self, view: ClusterView) -> np.ndarray:
        """Servers that count as melted this tick.

        The raw estimate threshold, plus hysteresis for servers the
        scheduler kept warm last tick: keep-warm parks a server's wax at
        the melt point, so its estimate hovers exactly at the threshold
        and sensor noise would otherwise flick it in and out of the
        melted set (shrinking the hot group mid-peak -- the churn the
        sanitizer's group-partition monotonicity invariant flags).  A
        kept-warm server stays melted until its estimate drops through
        :attr:`wax_release_threshold`.
        """
        est = view.wax_melt_estimate
        melted = est >= self._wax_threshold
        if np.any(self._kept_warm):
            melted = melted | (self._kept_warm
                               & (est >= self._release_threshold))
        return melted

    def _update_group_size(self, view: ClusterView) -> None:
        """Restart from the minimum size and add one per melted server."""
        if self._degraded:
            # The estimate is untrustworthy: hold the static TA sizing.
            self._hot_size = min(self._base_sizer.hot_size,
                                 view.num_servers)
            return
        melted = int(np.count_nonzero(self._melted_mask(view)))
        self._hot_size = min(view.num_servers,
                             self._base_sizer.hot_size + melted)

    # -- placement helpers ---------------------------------------------------

    def _take(self, demand_part: np.ndarray, amount: int) -> np.ndarray:
        """Remove up to ``amount`` jobs from ``demand_part`` (in place).

        Jobs are taken proportionally across the part's workloads so the
        spilled remainder keeps its type mix.
        """
        total = int(demand_part.sum())
        amount = min(amount, total)
        if amount == 0:
            return np.zeros(NUM_WORKLOADS, dtype=np.int64)
        taken = np.minimum(demand_part, (demand_part * amount) // total)
        shortfall = amount - int(taken.sum())
        if shortfall > 0:
            leftovers = demand_part - taken
            for idx in np.argsort(-leftovers):
                grab = min(shortfall, int(leftovers[idx]))
                taken[idx] += grab
                shortfall -= grab
                if shortfall == 0:
                    break
        demand_part -= taken
        return taken

    def _spread(self, demand_part: np.ndarray, ids: np.ndarray,
                free: np.ndarray, allocation: np.ndarray, *,
                pack: bool = False,
                per_server_cap: Optional[int] = None) -> None:
        """Place as much of ``demand_part`` as fits on ``ids``.

        ``pack=False`` spreads evenly (waterfill); ``pack=True`` fills
        servers in id order ("added sequentially").  ``per_server_cap``
        limits how much any one server may receive in this pass (the
        keep-warm cap).  Mutates ``demand_part``, ``free``, and
        ``allocation``.
        """
        if len(ids) == 0 or demand_part.sum() == 0:
            return
        caps = free[ids].copy()
        if per_server_cap is not None:
            caps = np.minimum(caps, per_server_cap)
        capacity = int(caps.sum())
        taken = self._take(demand_part, capacity)
        amount = int(taken.sum())
        if amount == 0:
            return
        if pack:
            quotas = pack_quotas(amount, caps, np.arange(len(ids)))
        else:
            quotas = waterfill_quotas(amount, caps, tie_offset=self._tick)
        allocation[ids] += deal_types(taken, quotas, rng=self._rng)
        free[ids] -= quotas

    def _fill_targets(self, demand_part: np.ndarray, ids: np.ndarray,
                      targets: np.ndarray, free: np.ndarray,
                      allocation: np.ndarray) -> None:
        """Give each server in ``ids`` its per-server core target.

        When demand is insufficient the targets are scaled down
        proportionally.  Mutates ``demand_part``, ``free``, ``allocation``.
        """
        if len(ids) == 0:
            return
        targets = np.minimum(np.asarray(targets, dtype=np.int64),
                             free[ids])
        total_target = int(targets.sum())
        available = int(demand_part.sum())
        if total_target == 0 or available == 0:
            return
        if available < total_target:
            scaled = (targets * available) // total_target
            shortfall = available - int(scaled.sum())
            remainders = targets * available - scaled * total_target
            order = np.argsort(-remainders)
            scaled[order[:shortfall]] += 1
            targets = scaled
        taken = self._take(demand_part, int(targets.sum()))
        allocation[ids] += deal_types(taken, targets, rng=self._rng)
        free[ids] -= targets

    def _cold_cap_on_melted(self, hot_demand: np.ndarray,
                            cold_demand: np.ndarray,
                            target_w: Optional[float] = None) -> int:
        """Max cold cores per melted server that leaves room for keep-warm.

        Cold jobs draw far less power than hot ones, so a melted server
        stuffed with cold jobs could not reach the keep-warm power target
        with its remaining cores.  This bounds the cold overflow so the
        hot top-up always fits.
        """
        p_hot = mean_hot_core_power_w(self._config, hot_demand)
        cold_weights = [float(cold_demand[i])
                        for i in range(NUM_WORKLOADS)
                        if i not in HOT_INDICES]
        cold_powers = [self._per_core_power[i]
                       for i in range(NUM_WORKLOADS)
                       if i not in HOT_INDICES]
        total = sum(cold_weights)
        p_cold = (sum(w * p for w, p in zip(cold_weights, cold_powers))
                  / total) if total > 0 else 0.0
        if p_hot <= 0:
            return 0
        capacity = self._config.server.cores
        if target_w is None:
            target_w = keep_warm_power_w(self._config,
                                         self._keep_warm_margin_c)
        denom = 1.0 - p_cold / p_hot
        if denom <= 0:
            return capacity
        cap = int((capacity - target_w / p_hot) / denom)
        return max(0, min(capacity, cap))

    # -- the policy -----------------------------------------------------------

    def _place(self, demand: np.ndarray, view: ClusterView) -> Placement:
        if view.num_servers != self._config.num_servers:
            raise SchedulingError("view does not match configured cluster")
        self._check_divergence(view)
        self._observe_inlets(view)
        self._update_group_size(view)

        hot_demand, cold_demand = split_demand(demand)
        base_size = min(self._base_sizer.hot_size, view.num_servers)
        hot_ids = np.arange(self._hot_size)
        cold_ids = np.arange(self._hot_size, view.num_servers)
        if self._degraded:
            # TA fallback: without a trusted estimate no server counts as
            # melted, so keep-warm disengages and the base group carries
            # the hot load evenly -- exactly VMT-TA's behaviour.
            melted = np.zeros(view.num_servers, dtype=bool)
        else:
            melted = self._melted_mask(view)
        in_base = hot_ids < base_size
        hot_melted = melted[hot_ids] if len(hot_ids) else \
            np.zeros(0, dtype=bool)
        melted_hot = hot_ids[hot_melted]
        unmelted_base = hot_ids[in_base & ~hot_melted]
        # Extension servers (added because others melted): concentrate
        # load on as few of them as possible so each one actually exceeds
        # the melting temperature -- the paper adds servers "sequentially".
        extension = hot_ids[~in_base & ~hot_melted]

        # Failed servers expose zero capacity; every dealing pass below
        # routes around them.
        free = view.capacity_vector()
        allocation = np.zeros((view.num_servers, NUM_WORKLOADS),
                              dtype=np.int64)

        utilization = demand.sum() / view.total_cores
        # Keep-warm follows the load trend: fully engaged during the peak,
        # then tapered as utilization falls so melted servers refreeze a
        # few at a time.  An abrupt cutoff would release every server's
        # stored heat simultaneously and spike the cooling load above the
        # peak VMT just shaved off.
        span = self._keep_warm_min_util - self._keep_warm_release_util
        if span > 0:
            warm_fraction = min(
                1.0, max(0.0, (utilization - self._keep_warm_release_util)
                         / span))
        else:
            warm_fraction = 1.0 if utilization >= self._keep_warm_min_util \
                else 0.0
        warm_count = int(round(warm_fraction * len(melted_hot)))
        released = melted_hot[warm_count:]
        melted_hot = melted_hot[:warm_count]
        keep_warm_active = warm_count > 0
        # Remember who is being held warm: those servers keep their
        # melted classification next tick (hysteresis, see
        # :meth:`_melted_mask`) even if their estimate dips a hair below
        # the threshold while parked at the melt point.
        self._kept_warm = np.zeros(view.num_servers, dtype=bool)
        if keep_warm_active:
            self._kept_warm[melted_hot] = True
        # Servers released from keep-warm rejoin the general pool: they
        # keep carrying an even share of load, so their wax refreezes at
        # the pace the falling load dictates instead of all at once.
        if len(released):
            unmelted_base = np.sort(np.concatenate(
                [unmelted_base, released]))

        # Cold jobs prefer the cold group (Section III-B ordering).
        self._spread(cold_demand, cold_ids, free, allocation)

        if keep_warm_active and len(melted_hot):
            # Per-server hold power from the learned inlet estimates: a
            # colder-than-nominal server needs more power to stay at the
            # melt point than the nominal figure suggests.
            target_w = self._keep_warm_targets_w(melted_hot)
            # Cold overflow lands on melted servers first ("minimal
            # thermal impact") -- and usefully contributes keep-warm power
            # -- but bounded so the hot top-up below still fits.
            cold_cap = self._cold_cap_on_melted(
                hot_demand, cold_demand, float(target_w.max()))
            self._spread(cold_demand, melted_hot, free, allocation,
                         per_server_cap=cold_cap)
            # Top melted servers up with hot jobs to the keep-warm power
            # target: just enough to hold the wax melted, no more.
            p_hot = mean_hot_core_power_w(self._config, hot_demand)
            existing_w = (allocation[melted_hot].astype(np.float64)
                          @ self._per_core_power)
            need_w = np.maximum(0.0, target_w - existing_w)
            if p_hot > 0:
                top_up = np.ceil(need_w / p_hot).astype(np.int64)
                self._fill_targets(hot_demand, melted_hot, top_up, free,
                                   allocation)
            # Remaining capacity on melted servers is reserved: extra
            # load must go to servers that can still store heat.
            reserved = free[melted_hot].copy()
            free[melted_hot] = 0
        else:
            reserved = None

        # Hot jobs: the unmelted part of the base group, evenly.
        self._spread(hot_demand, unmelted_base, free, allocation)
        # Displaced load: pack extension servers to full, sequentially, so
        # each one actually exceeds the melting temperature.
        self._spread(hot_demand, extension, free, allocation, pack=True)
        # Overflow: cold-group servers, sequentially (de-facto extension).
        self._spread(hot_demand, cold_ids, free, allocation, pack=True)

        if reserved is not None:
            free[melted_hot] = reserved

        # Corner case: everything else is full -- melted servers take the
        # remainder (any server below the threshold no longer exists).
        self._spread(hot_demand, melted_hot, free, allocation)

        # Cold leftovers: melted hot servers, then the rest of the fleet.
        self._spread(cold_demand, melted_hot, free, allocation, pack=True)
        self._spread(cold_demand, extension, free, allocation, pack=True)
        self._spread(cold_demand, unmelted_base, free, allocation)

        if hot_demand.sum() or cold_demand.sum():
            raise SchedulingError("VMT-WA failed to place all jobs")

        self._record_allocation(allocation)
        hot_mask = np.zeros(view.num_servers, dtype=bool)
        hot_mask[:self._hot_size] = True
        return Placement(allocation=allocation, hot_group_mask=hot_mask)

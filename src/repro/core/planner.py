"""Day-ahead Grouping Value planning.

Section V-C: "In a scenario where the operators can predict load
accurately day to day, they can actually change the GV to the optimal
value each day.  However, with VMT-TA they must choose a conservative
value because the risk of selecting a value too low is extreme."

This module turns that observation into a planner.  The empirical
optimum (GV=22 for the paper's mixture) is not magic -- it is where the
cold group is *just* big enough for the peak cold demand, pushing every
other server into the hot group.  A bigger hot group maximizes deployed
latent capacity while the hot-job share keeps it above the melting
point; any smaller and wax melts out early (the GV=20 collapse), any
bigger and cold jobs spill into the hot group and dilute it.

    hot_fraction* = 1 - cold_share * peak_utilization
    GV*           = PMT * hot_fraction*

The planner applies that rule to a load forecast, then verifies the
resulting group actually clears the melting point under the forecast
(some mixtures cannot melt wax at any GV -- Fig. 1's "Neither" region)
and adds the paper's conservative bias for VMT-TA.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..config import SimulationConfig
from ..errors import ConfigurationError
from .grouping import GroupSizer
from .vmt_wa import mean_hot_core_power_w


@dataclass(frozen=True)
class LoadForecast:
    """Tomorrow's expected load, as an operator would forecast it."""

    peak_utilization: float
    hot_share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.peak_utilization <= 1.0:
            raise ConfigurationError("peak utilization must be in (0, 1]")
        if not 0.0 <= self.hot_share <= 1.0:
            raise ConfigurationError("hot share must be in [0, 1]")

    @property
    def cold_share(self) -> float:
        """Share of demand that is VMT-cold."""
        return 1.0 - self.hot_share


@dataclass(frozen=True)
class GVPlan:
    """The planner's recommendation."""

    grouping_value: float
    hot_fraction: float
    predicted_hot_group_temp_c: float
    feasible: bool
    note: str = ""


class GVPlanner:
    """Pick tomorrow's GV from a load forecast.

    ``melt_margin_c`` is how far above the melting point the hot group
    must be predicted to sit for the plan to count as feasible;
    ``ta_conservative_bias`` is added to the GV when planning for VMT-TA
    (missing high costs a little, missing low costs everything).
    """

    def __init__(self, config: SimulationConfig, *,
                 melt_margin_c: float = 1.0,
                 ta_conservative_bias: float = 0.5) -> None:
        config.validate()
        if melt_margin_c < 0:
            raise ConfigurationError("melt margin must be >= 0")
        self._config = config
        self._margin = melt_margin_c
        self._ta_bias = ta_conservative_bias

    def predicted_hot_group_temp_c(self, forecast: LoadForecast,
                                   grouping_value: float) -> float:
        """Steady-state hot-group temperature at the forecast peak."""
        config = self._config
        pmt = config.wax.melt_temp_c
        sizer = GroupSizer(grouping_value, pmt, config.num_servers)
        if sizer.hot_size == 0:
            return config.thermal.inlet_temp_c
        hot_cores = (forecast.hot_share * forecast.peak_utilization
                     * config.total_cores)
        cores_per_server = min(hot_cores / sizer.hot_size,
                               float(config.server.cores))
        p_hot = mean_hot_core_power_w(config)
        dynamic = cores_per_server * p_hot
        power = min(config.server.idle_power_w + dynamic,
                    config.server.peak_power_w)
        return (config.thermal.inlet_temp_c
                + config.thermal.r_air_c_per_w * power)

    def plan(self, forecast: LoadForecast, *,
             for_algorithm: str = "vmt-wa") -> GVPlan:
        """Recommend a GV for tomorrow.

        ``for_algorithm`` is ``"vmt-wa"`` (plan at the optimum; the
        wax-aware machinery absorbs a miss) or ``"vmt-ta"`` (bias the GV
        upward per the paper's risk argument).
        """
        if for_algorithm not in ("vmt-ta", "vmt-wa", "vmt-preserve"):
            raise ConfigurationError(
                f"unknown algorithm {for_algorithm!r}")
        config = self._config
        pmt = config.wax.melt_temp_c
        hot_fraction = 1.0 - forecast.cold_share * forecast.peak_utilization
        gv = pmt * hot_fraction
        if for_algorithm == "vmt-ta":
            gv += self._ta_bias

        predicted = self.predicted_hot_group_temp_c(forecast, gv)
        target = pmt + self._margin
        note = ""
        if predicted < target:
            # Shrink the hot group (lower GV) until it runs hot enough,
            # or conclude the mixture cannot melt wax at all.
            feasible = False
            for candidate in [gv - step * 0.25
                              for step in range(1, int(gv * 4))]:
                if candidate <= 0:
                    break
                temp = self.predicted_hot_group_temp_c(forecast, candidate)
                if temp >= target:
                    gv, predicted, feasible = candidate, temp, True
                    note = ("capacity-optimal group too cool for this "
                            "forecast; shrunk to reach the melt point")
                    break
            if not feasible:
                return GVPlan(grouping_value=gv,
                              hot_fraction=hot_fraction,
                              predicted_hot_group_temp_c=predicted,
                              feasible=False,
                              note=("forecast mixture cannot melt wax at "
                                    "any GV (Fig. 1 'Neither' region)"))
        return GVPlan(grouping_value=gv,
                      hot_fraction=min(1.0, gv / pmt),
                      predicted_hot_group_temp_c=predicted,
                      feasible=True, note=note)

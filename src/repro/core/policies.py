"""Name-based scheduler factory.

Experiments, benchmarks, and examples refer to policies by the short
names used throughout the paper's figures; this module maps those names
to constructors.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..sim.rng import RngStreams
from .coolest_first import CoolestFirstScheduler
from .round_robin import RoundRobinScheduler
from .scheduler import Scheduler
from .vmt_preserve import VMTPreserveScheduler
from .vmt_ta import VMTThermalAwareScheduler
from .vmt_wa import VMTWaxAwareScheduler

_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    "round-robin": RoundRobinScheduler,
    "coolest-first": CoolestFirstScheduler,
    "vmt-ta": VMTThermalAwareScheduler,
    "vmt-wa": VMTWaxAwareScheduler,
    "vmt-preserve": VMTPreserveScheduler,
}

#: The policy names accepted by :func:`make_scheduler`.
SCHEDULER_NAMES = tuple(sorted(_FACTORIES))


def make_scheduler(name: str, config: SimulationConfig,
                   rng_streams: Optional[RngStreams] = None,
                   **kwargs) -> Scheduler:
    """Build a scheduler by name.

    VMT policies read their grouping value and wax threshold from
    ``config.scheduler``; extra keyword arguments (e.g. VMT-WA's
    ``keep_warm_min_utilization``) pass through to the constructor.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(SCHEDULER_NAMES)
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {known}") from None
    return factory(config, rng_streams=rng_streams, **kwargs)

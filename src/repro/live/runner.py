"""The live run loop: feed -> buffer -> decision -> tick.

One :class:`LiveRunner` drives a :class:`~repro.cluster.simulation.ClusterSimulation`
through its streaming entry points, one arrival at a time:

1. the next demand row is taken from the feed and appended to the
   :class:`~repro.live.buffer.LiveTraceBuffer` (after this, and only
   after this, may the engine advance into that interval);
2. the forecaster observes the row;
3. on decision boundaries the scheduler is retargeted -- directly from
   the forecaster's GV estimate, or via the
   :class:`~repro.live.mpc.MPCController`'s shadow-simulation race;
4. :meth:`~repro.cluster.simulation.ClusterSimulation.advance_stream`
   fires the tick at exactly ``k * step_seconds``, the same simulation
   time the offline batch process would have used.

Step 4's exact tick times are what make the oracle differential test
possible: with a perfect forecaster every decision is a no-op, so the
live run's physics, RNG consumption, metric series -- and therefore its
fingerprint -- are bit-identical to the batch run over the same trace.

Checkpoints written mid-stream double as *state migration*: a fresh
process restores the snapshot (which carries the buffer's ingested
prefix), rewinds the feed to the migration point, and continues as if
the stream had never stopped.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.metrics import SimulationResult
from ..cluster.simulation import ClusterSimulation
from ..config import SimulationConfig
from ..core.policies import make_scheduler
from ..errors import SimulationError
from ..obs.telemetry import TelemetryLike
from .buffer import LiveTraceBuffer
from .forecast import make_forecaster
from .mpc import MPCController

#: Default decision cadence: one retarget per simulated hour.
DEFAULT_DECISION_EVERY = 60


@dataclass
class LiveRunReport:
    """A live run's result plus its control trail."""

    result: SimulationResult
    forecaster: str
    decision_every: int
    steps_ingested: int
    #: (step, gv) pairs, one per decision boundary.
    gv_trail: List[tuple] = field(default_factory=list)
    mpc_decisions: Optional[List[dict]] = None
    wall_clock_s: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "repro.live/1",
            "result": self.result.to_json(),
            "forecaster": self.forecaster,
            "decision_every": self.decision_every,
            "steps_ingested": self.steps_ingested,
            "gv_trail": [[int(s), float(g)] for s, g in self.gv_trail],
            "mpc_decisions": self.mpc_decisions,
            "wall_clock_s": self.wall_clock_s,
        }


class LiveRunner:
    """Drive one simulation from a streaming feed with no lookahead."""

    def __init__(self, config: SimulationConfig, policy: str, feed, *,
                 forecaster="oracle",
                 decision_every: int = DEFAULT_DECISION_EVERY,
                 mpc: Optional[MPCController] = None,
                 telemetry: TelemetryLike = None,
                 checks: Optional[str] = None,
                 record_heatmaps: bool = True,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 deadline=None,
                 speedup: Optional[float] = None,
                 restore_from=None) -> None:
        if decision_every < 1:
            raise SimulationError("decision_every must be >= 1")
        if speedup is not None and speedup <= 0:
            raise SimulationError("speedup must be positive")
        if feed.total_cores != config.total_cores:
            raise SimulationError(
                f"feed is sized for {feed.total_cores} cores, the "
                f"cluster has {config.total_cores}")
        if feed.step_seconds != config.trace.step_seconds:
            raise SimulationError(
                "feed and configuration disagree on step_seconds")
        self._config = config
        self._feed = feed
        self._decision_every = int(decision_every)
        self._mpc = mpc
        self._speedup = speedup
        if isinstance(forecaster, str):
            trace = getattr(feed, "trace", None)
            forecaster = make_forecaster(forecaster, config, trace=trace)
        self._forecaster = forecaster
        self._buffer = LiveTraceBuffer(feed.num_steps,
                                       feed.step_seconds,
                                       feed.total_cores)
        scheduler = make_scheduler(policy, config)
        self._sim = ClusterSimulation(
            config, scheduler, trace=self._buffer,
            record_heatmaps=record_heatmaps, telemetry=telemetry,
            checks=checks, checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir, deadline=deadline)
        self._gv = config.scheduler.grouping_value
        self._gv_trail: List[tuple] = []
        if restore_from is not None:
            # Live state migration: the snapshot refills the buffer's
            # ingested prefix and positions the tick process; the feed
            # is rewound to the first un-ingested interval in run().
            self._sim.restore(restore_from)
            if self._buffer.filled != self._sim._step_index:
                raise SimulationError(
                    "live snapshot is not at a quiescent boundary "
                    f"(buffer {self._buffer.filled} rows, tick "
                    f"{self._sim._step_index})")

    @property
    def simulation(self) -> ClusterSimulation:
        """The underlying simulation (for observers and inspection)."""
        return self._sim

    @property
    def buffer(self) -> LiveTraceBuffer:
        """The no-lookahead demand buffer."""
        return self._buffer

    def _decide(self, step: int) -> None:
        if self._mpc is not None:
            gv = self._mpc.decide(self._sim, self._buffer,
                                  self._forecaster, step, self._gv)
        else:
            gv = float(self._forecaster.grouping_value(step))
        self._gv = gv
        self._gv_trail.append((step, gv))
        self._sim._scheduler.retarget_grouping(gv)
        tracer = self._sim._obs_tracer
        if tracer is not None and tracer.enabled:
            tracer.event("live-retarget",
                         step * self._buffer.step_seconds,
                         step=step, gv=gv,
                         forecaster=getattr(self._forecaster, "name",
                                            "custom"))

    def run(self) -> LiveRunReport:
        """Consume the feed to the end and return the report."""
        wall_start = _time.perf_counter()
        start_step = self._buffer.filled
        step_s = self._buffer.step_seconds
        pace = (None if self._speedup is None
                else step_s / self._speedup)
        self._sim.begin_streaming()
        steps = 0
        for step, row in self._feed.iter_rows(start=start_step):
            if step != self._buffer.filled:
                raise SimulationError(
                    f"feed yielded step {step}, expected "
                    f"{self._buffer.filled}")
            self._buffer.append(row)
            self._forecaster.observe(step, row)
            if step % self._decision_every == 0:
                self._decide(step)
            self._sim.advance_stream(step)
            steps += 1
            if pace is not None:
                _time.sleep(pace)
        result = self._sim.finish_streaming()
        return LiveRunReport(
            result=result,
            forecaster=getattr(self._forecaster, "name", "custom"),
            decision_every=self._decision_every,
            steps_ingested=steps,
            gv_trail=self._gv_trail,
            mpc_decisions=([d.to_json() for d in self._mpc.decisions]
                           if self._mpc is not None else None),
            wall_clock_s=_time.perf_counter() - wall_start)


def resume_live(source, feed, *, forecaster="oracle",
                decision_every: int = DEFAULT_DECISION_EVERY,
                mpc: Optional[MPCController] = None,
                telemetry: TelemetryLike = None,
                checks: Optional[str] = None,
                checkpoint_every: Optional[int] = None,
                checkpoint_dir: Optional[str] = None,
                deadline=None) -> LiveRunner:
    """Rebuild a live run from a mid-stream snapshot (state migration).

    ``source`` is a snapshot path or object written by a live run's
    checkpoint machinery; ``feed`` must be the same (rewindable) feed
    the original run consumed.  The returned runner continues from the
    first un-ingested interval.
    """
    from ..state.snapshot import SimulationSnapshot, load_snapshot

    snapshot = (source if isinstance(source, SimulationSnapshot)
                else load_snapshot(source))
    if "live" not in snapshot.state:
        raise SimulationError(
            "snapshot carries no live state; use "
            "repro.state.restore_simulation for batch checkpoints")
    config = SimulationConfig.from_dict(snapshot.config)
    return LiveRunner(
        config, snapshot.policy, feed, forecaster=forecaster,
        decision_every=decision_every, mpc=mpc, telemetry=telemetry,
        checks=checks,
        record_heatmaps=snapshot.record_heatmaps,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir, deadline=deadline,
        restore_from=snapshot)

"""Pluggable GV forecasters for the live engine.

Offline runs enjoy the paper's oracle assumption: the grouping value is
tuned against the *full* trace before the run starts.  A live run has no
future, so the GV estimate must come from a forecaster observing
arrivals as they happen.  Two reference implementations bracket the
spectrum:

* :class:`OracleForecaster` -- returns the configured GV exactly and
  forecasts the true future rows.  This is deliberately cheating (it
  holds the full trace), and exists to prove the harness honest: a live
  run driven by it must be bit-identical to the offline batch run.
* :class:`LastValueForecaster` -- the naive no-model baseline: the next
  interval looks like the last one.  Its GV estimate inverts Eq. 1 from
  the hot demand it just saw, so it under-sizes the hot group on the
  way into the peak and over-sizes it on the way out -- the measurable
  cost of losing the oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError
from ..workloads.trace import TraceMatrix
from ..workloads.workload import HOT_INDICES, WORKLOAD_LIST

NUM_WORKLOADS = len(WORKLOAD_LIST)

#: Forecaster names accepted by :func:`make_forecaster`.
FORECASTER_NAMES = ("oracle", "last-value")


def invert_grouping_value(hot_cores: float,
                          config: SimulationConfig) -> float:
    """The GV whose Eq. 1 hot group just fits ``hot_cores`` of demand.

    Inverts ``hot_size = floor(gv / pmt * n + 0.5)``: size the hot group
    to carry the forecast hot load at full per-server core occupancy,
    clipped to ``[1, n - 1]`` so the grouping never degenerates.
    """
    servers = int(np.ceil(hot_cores / config.server.cores)) \
        if hot_cores > 0 else 1
    servers = max(1, min(config.num_servers - 1, servers))
    return servers * config.wax.melt_temp_c / config.num_servers


class OracleForecaster:
    """Perfect foresight: the configured GV and the true future rows."""

    name = "oracle"

    def __init__(self, config: SimulationConfig,
                 trace: Optional[TraceMatrix] = None) -> None:
        self._config = config
        self._trace = trace

    def observe(self, step: int, row: np.ndarray) -> None:
        """Oracles have nothing to learn."""

    def grouping_value(self, step: int) -> float:
        """The configured (offline-tuned) GV, exactly.

        Returning it bit-for-bit is the point: retargeting with the
        configured value is a no-op, so the differential test can demand
        byte-identical results against the batch run.
        """
        return self._config.scheduler.grouping_value

    def forecast(self, start: int, horizon: int) -> np.ndarray:
        """The true future demand rows (zero-padded past the end)."""
        if self._trace is None:
            raise SimulationError(
                "oracle forecast requires the full trace "
                "(construct with trace=...)")
        counts = self._trace.counts
        end = min(start + horizon, counts.shape[0])
        rows = counts[start:end]
        if rows.shape[0] < horizon:
            rows = np.concatenate(
                [rows, np.zeros((horizon - rows.shape[0],
                                 NUM_WORKLOADS), dtype=np.int64)])
        return rows


class LastValueForecaster:
    """Naive persistence: tomorrow looks exactly like right now."""

    name = "last-value"

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._last: Optional[np.ndarray] = None

    def observe(self, step: int, row: np.ndarray) -> None:
        self._last = np.asarray(row, dtype=np.int64).copy()

    def grouping_value(self, step: int) -> float:
        """Invert Eq. 1 from the hot demand just observed.

        Before any observation, fall back to the configured GV (the
        operator's prior).
        """
        if self._last is None:
            return self._config.scheduler.grouping_value
        hot_cores = float(self._last[list(HOT_INDICES)].sum())
        return invert_grouping_value(hot_cores, self._config)

    def forecast(self, start: int, horizon: int) -> np.ndarray:
        row = (np.zeros(NUM_WORKLOADS, dtype=np.int64)
               if self._last is None else self._last)
        return np.tile(row, (horizon, 1))


def make_forecaster(name: str, config: SimulationConfig, *,
                    trace: Optional[TraceMatrix] = None):
    """Build a named forecaster."""
    if name == "oracle":
        return OracleForecaster(config, trace=trace)
    if name == "last-value":
        return LastValueForecaster(config)
    raise SimulationError(
        f"unknown forecaster {name!r}; choose from {FORECASTER_NAMES}")

"""Model-predictive GV control by shadow simulation.

At each decision boundary the controller forks the running simulation's
:class:`~repro.state.snapshot.SimulationSnapshot` and races K shadow
simulations -- one per candidate grouping value -- over a trace built
from the observed history plus the forecaster's horizon.  Each shadow
restores the snapshot into a fresh fast-backend simulation (the PR 7
stepped kernel makes this cheap), retargets its scheduler to the
candidate, runs the horizon out, and reports its peak cooling load over
the forecast window.  The candidate with the lowest predicted peak
wins.

Shadows restore with ``trace_check=False``: they deliberately run
against a forecast trace whose fingerprint differs from the live
buffer's, which is the one sanctioned use of that escape hatch.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError

#: Default GV perturbations (degrees of virtual melting temperature)
#: explored around the incumbent and forecast estimates.
DEFAULT_GV_DELTAS = (-2.0, 0.0, 2.0)


@dataclass(frozen=True)
class MPCDecision:
    """One decision boundary's outcome, for telemetry and reports."""

    step: int
    chosen_gv: float
    candidates: Tuple[float, ...]
    predicted_peak_w: Tuple[float, ...]

    def to_json(self) -> dict:
        return {
            "step": self.step,
            "chosen_gv": self.chosen_gv,
            "candidates": list(self.candidates),
            "predicted_peak_w": list(self.predicted_peak_w),
        }


class MPCController:
    """Race candidate grouping values through shadow simulations."""

    def __init__(self, config: SimulationConfig, *,
                 horizon_steps: int = 60,
                 gv_deltas: Sequence[float] = DEFAULT_GV_DELTAS,
                 max_workers: int = 4) -> None:
        if horizon_steps < 1:
            raise SimulationError("horizon_steps must be >= 1")
        if max_workers < 1:
            raise SimulationError("max_workers must be >= 1")
        self._config = config
        self._horizon = int(horizon_steps)
        self._gv_deltas = tuple(float(d) for d in gv_deltas)
        self._max_workers = int(max_workers)
        self._decisions: List[MPCDecision] = []

    @property
    def horizon_steps(self) -> int:
        """Forecast window length, in scheduling intervals."""
        return self._horizon

    @property
    def decisions(self) -> List[MPCDecision]:
        """Every decision taken so far, in order."""
        return list(self._decisions)

    def _candidates(self, incumbent_gv: float,
                    forecast_gv: float) -> Tuple[float, ...]:
        """Candidate GVs: incumbent, forecast estimate, perturbations."""
        pmt = self._config.wax.melt_temp_c
        n = self._config.num_servers
        lo, hi = pmt / n, pmt * (n - 1) / n  # 1..n-1 hot servers (Eq. 1)
        raw = [incumbent_gv]
        raw.extend(forecast_gv + d for d in self._gv_deltas)
        seen, out = set(), []
        for gv in raw:
            gv = min(hi, max(lo, float(gv)))
            if gv not in seen:
                seen.add(gv)
                out.append(gv)
        return tuple(out)

    def _score_shadow(self, snapshot, shadow_trace, candidate_gv: float,
                      history_rows: int) -> float:
        """Predicted peak cooling load (W) over the forecast window."""
        # Imported lazily: the live layer sits above cluster/state.
        from ..cluster.simulation import ClusterSimulation
        from ..core.policies import make_scheduler

        config = SimulationConfig.from_dict(snapshot.config)
        scheduler = make_scheduler(snapshot.policy, config)
        shadow = ClusterSimulation(
            config, scheduler, trace=shadow_trace,
            record_heatmaps=snapshot.record_heatmaps,
            checks="off", backend="fast")
        shadow.restore(snapshot, trace_check=False)
        scheduler.retarget_grouping(candidate_gv)
        result = shadow.run()
        cooling = np.asarray(result.cooling_load_w)
        window = cooling[history_rows:]
        if window.size == 0:
            return float("inf")
        return float(window.max())

    def decide(self, sim, buffer, forecaster, step: int,
               incumbent_gv: float) -> float:
        """Pick the next GV by racing shadows from ``sim``'s snapshot."""
        # The buffer already holds rows [0, filled); the forecast covers
        # the intervals beyond it, clipped to the run's capacity.
        horizon = max(0, min(self._horizon,
                             buffer.num_steps - buffer.filled))
        forecast_gv = float(forecaster.grouping_value(step))
        candidates = self._candidates(incumbent_gv, forecast_gv)
        snapshot = sim.snapshot()
        shadow_trace = buffer.with_forecast(
            forecaster.forecast(buffer.filled, horizon))
        history_rows = int(snapshot.tick)

        if len(candidates) == 1 or self._max_workers == 1:
            scores = [self._score_shadow(snapshot, shadow_trace, gv,
                                         history_rows)
                      for gv in candidates]
        else:
            workers = min(self._max_workers, len(candidates))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(self._score_shadow, snapshot,
                                       shadow_trace, gv, history_rows)
                           for gv in candidates]
                scores = [f.result() for f in futures]

        best = int(np.argmin(scores))
        decision = MPCDecision(step=step, chosen_gv=candidates[best],
                               candidates=candidates,
                               predicted_peak_w=tuple(scores))
        self._decisions.append(decision)
        return candidates[best]

"""Streaming ingestion and online control for the digital twin.

The batch engine enjoys two oracle luxuries a real datacenter never has:
the full demand trace up front, and a grouping value tuned against it.
This package removes both.  Jobs arrive as *events* from a feed (trace
replay, a seeded synthetic arrival process, or line-delimited JSON); the
engine advances incrementally with a hard no-lookahead boundary; the GV
estimate comes from a pluggable forecaster; and an optional MPC
controller forks the running simulation's snapshot to race candidate
placements through fast-backend shadow simulations.

The honesty proof lives in the differential test: a live run driven by
the :class:`~repro.live.forecast.OracleForecaster` over a
:class:`~repro.live.feeds.TraceReplayFeed` is bit-identical to the
offline batch run, so any divergence under a real forecaster is the
measured cost of losing the oracle -- not a harness artifact.
"""

from .buffer import LiveTraceBuffer
from .feeds import (FEED_KINDS, JsonlFeed, SyntheticArrivalFeed,
                    TraceReplayFeed, make_feed)
from .forecast import (FORECASTER_NAMES, LastValueForecaster,
                       OracleForecaster, invert_grouping_value,
                       make_forecaster)
from .mpc import DEFAULT_GV_DELTAS, MPCController, MPCDecision
from .runner import (DEFAULT_DECISION_EVERY, LiveRunner, LiveRunReport,
                     resume_live)

__all__ = [
    "DEFAULT_DECISION_EVERY",
    "DEFAULT_GV_DELTAS",
    "FEED_KINDS",
    "FORECASTER_NAMES",
    "JsonlFeed",
    "LastValueForecaster",
    "LiveRunner",
    "LiveRunReport",
    "LiveTraceBuffer",
    "MPCController",
    "MPCDecision",
    "OracleForecaster",
    "SyntheticArrivalFeed",
    "TraceReplayFeed",
    "invert_grouping_value",
    "make_feed",
    "make_forecaster",
    "resume_live",
]

"""The no-lookahead demand buffer behind a live run.

A :class:`LiveTraceBuffer` is the streaming stand-in for a
:class:`~repro.workloads.trace.TraceMatrix`: it presents the same
read-side interface the simulation loop uses (``num_steps``,
``step_seconds``, ``total_cores``, ``demand_at``, ``fingerprint``), but
its rows arrive one at a time via :meth:`append` and reading a row that
has not arrived yet raises -- the structural guarantee that no
scheduler, forecaster, or controller ever sees the future.

The buffer also carries the live run's migration state: its filled
prefix serializes into a snapshot (``state["live"]``) so a checkpoint
taken mid-stream restores into a fresh process with ingestion resuming
exactly where it left off.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from ..errors import TraceError
from ..workloads.trace import TraceMatrix
from ..workloads.workload import WORKLOAD_LIST

NUM_WORKLOADS = len(WORKLOAD_LIST)


class LiveTraceBuffer:
    """An append-only demand matrix with a hard no-lookahead boundary."""

    #: Marks this trace as live for the simulation's snapshot/restore
    #: machinery (duck-typed so the workloads layer never imports live).
    is_live = True

    def __init__(self, num_steps: int, step_seconds: float,
                 total_cores: int) -> None:
        if num_steps <= 0:
            raise TraceError("live buffer needs a positive capacity")
        if step_seconds <= 0:
            raise TraceError("step_seconds must be positive")
        if total_cores <= 0:
            raise TraceError("total_cores must be positive")
        self._counts = np.zeros((num_steps, NUM_WORKLOADS),
                                dtype=np.int64)
        self._filled = 0
        self._step_s = float(step_seconds)
        self._total_cores = int(total_cores)

    # -- TraceMatrix-compatible read side ----------------------------------

    @property
    def num_steps(self) -> int:
        """Capacity in scheduling intervals (the feed's declared length)."""
        return self._counts.shape[0]

    @property
    def step_seconds(self) -> float:
        """Interval length in seconds."""
        return self._step_s

    @property
    def total_cores(self) -> int:
        """Cluster core capacity the stream was produced for."""
        return self._total_cores

    @property
    def filled(self) -> int:
        """Rows ingested so far; rows at or past this index are future."""
        return self._filled

    @property
    def counts(self) -> np.ndarray:
        """The ingested prefix (copy)."""
        return self._counts[:self._filled].copy()

    def demand_at(self, step: int) -> np.ndarray:
        """The demand row for ``step``; raises on any lookahead."""
        if step >= self._filled:
            raise TraceError(
                f"no lookahead: step {step} has not arrived yet "
                f"({self._filled} rows ingested)")
        return self._counts[step]

    def fingerprint(self) -> str:
        """SHA-256 over the *ingested prefix* plus framing parameters.

        Covers only observed rows, so two buffers at the same fill level
        fed the same stream match -- which is exactly what the snapshot
        restore guard needs for live state migration.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(
            self._counts[:self._filled]).tobytes())
        digest.update(repr((self._filled, self._counts.shape,
                            self._step_s, self._total_cores,
                            "live")).encode("ascii"))
        return digest.hexdigest()

    # -- write side --------------------------------------------------------

    def append(self, row) -> int:
        """Ingest the next demand row; returns its step index."""
        if self._filled >= self.num_steps:
            raise TraceError("live buffer is full")
        row = np.asarray(row, dtype=np.int64)
        if row.shape != (NUM_WORKLOADS,):
            raise TraceError(
                f"demand row must have {NUM_WORKLOADS} entries, "
                f"got shape {row.shape}")
        if np.any(row < 0):
            raise TraceError("demand row must be non-negative")
        if int(row.sum()) > self._total_cores:
            raise TraceError(
                f"demand {int(row.sum())} exceeds cluster capacity "
                f"{self._total_cores}")
        index = self._filled
        self._counts[index] = row
        self._filled = index + 1
        return index

    # -- forecasting / migration -------------------------------------------

    def with_forecast(self, forecast_rows: np.ndarray) -> TraceMatrix:
        """The ingested history plus a forecast horizon, as a real trace.

        This is what an MPC shadow simulation runs against: everything
        observed so far, verbatim, followed by the forecaster's guess.
        Forecast rows are clipped into capacity so a wild forecast can
        never construct an invalid trace.
        """
        forecast_rows = np.asarray(forecast_rows, dtype=np.int64)
        if forecast_rows.ndim != 2 \
                or forecast_rows.shape[1] != NUM_WORKLOADS:
            raise TraceError(
                f"forecast must be (horizon, {NUM_WORKLOADS})")
        forecast_rows = np.maximum(forecast_rows, 0)
        totals = forecast_rows.sum(axis=1, keepdims=True)
        over = totals > self._total_cores
        if np.any(over):
            # Scale offending rows down proportionally, preserving mix.
            scale = np.where(over, self._total_cores
                             / np.maximum(totals, 1), 1.0)
            forecast_rows = (forecast_rows * scale).astype(np.int64)
        counts = np.concatenate([self._counts[:self._filled],
                                 forecast_rows], axis=0)
        return TraceMatrix(counts, self._step_s, self._total_cores)

    def state_dict(self) -> dict:
        """Migration state: the ingested prefix and framing."""
        return {
            "filled": self._filled,
            "counts": self._counts[:self._filled].copy(),
            "step_seconds": self._step_s,
            "total_cores": self._total_cores,
            "capacity": self.num_steps,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the ingested prefix captured by :meth:`state_dict`."""
        if (int(state["capacity"]) != self.num_steps
                or float(state["step_seconds"]) != self._step_s
                or int(state["total_cores"]) != self._total_cores):
            raise TraceError(
                "live buffer framing does not match the snapshot "
                f"(capacity {self.num_steps} vs {state['capacity']}, "
                f"step {self._step_s} vs {state['step_seconds']}, "
                f"cores {self._total_cores} vs {state['total_cores']})")
        filled = int(state["filled"])
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != (filled, NUM_WORKLOADS):
            raise TraceError("live snapshot counts shape mismatch")
        self._counts[:filled] = counts
        self._counts[filled:] = 0
        self._filled = filled

"""Arrival feeds: where live demand rows come from.

A feed declares its framing (``num_steps``, ``step_seconds``,
``total_cores``) and yields integer demand rows one scheduling interval
at a time via :meth:`iter_rows`.  Three sources cover the spectrum the
online-control study needs:

* :class:`TraceReplayFeed` -- replay a recorded trace log (a
  :class:`~repro.workloads.trace.TraceMatrix`), including the exact
  trace an offline batch run would generate from a configuration.  This
  is the differential-test workhorse: same rows, delivered with no
  lookahead.
* :class:`SyntheticArrivalFeed` -- a seeded open-loop arrival process
  (diurnally modulated Poisson arrivals per workload).  Open-loop means
  the whole stream is determined by the seed at construction; the
  no-lookahead property is enforced downstream by the
  :class:`~repro.live.buffer.LiveTraceBuffer`, never by hiding state
  here.
* :class:`JsonlFeed` -- line-delimited JSON from a socket, pipe, or
  file: one ``{"jobs": [...]}`` object (or bare list) per interval,
  optionally preceded by a header object declaring the framing.

Replay and synthetic feeds are *rewindable* (``iter_rows(start=k)``
skips ahead), which is what lets a checkpoint restore resume ingestion
mid-stream; a consumed line stream is not, so JSONL migration requires
re-supplying the remaining lines.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..config import SimulationConfig, TraceConfig
from ..errors import TraceError
from ..sim.rng import RngStreams
from ..workloads.trace import (DEFAULT_SHARES, TraceMatrix, TwoDayTrace,
                               _diurnal_shape)
from ..workloads.workload import WORKLOAD_LIST

NUM_WORKLOADS = len(WORKLOAD_LIST)

#: Feed kinds accepted by :func:`make_feed`.
FEED_KINDS = ("replay", "synthetic")


class TraceReplayFeed:
    """Replay a recorded demand trace row by row."""

    def __init__(self, trace: TraceMatrix) -> None:
        self._trace = trace
        self._counts = trace.counts  # one defensive copy up front

    @classmethod
    def from_config(cls, config: SimulationConfig) -> "TraceReplayFeed":
        """The exact trace an offline batch run of ``config`` would use.

        Generated through the same seeded stream
        (``RngStreams(seed).stream("trace")``) and rescale path as
        :class:`~repro.cluster.simulation.ClusterSimulation`, so a live
        replay of this feed observes byte-identical demand.
        """
        trace = TwoDayTrace(config.trace).generate(
            config.num_servers, config.server.cores,
            rng=RngStreams(config.seed).stream("trace"))
        if trace.total_cores != config.total_cores:
            trace = trace.scaled_to(config.num_servers,
                                    config.server.cores)
        return cls(trace)

    @property
    def num_steps(self) -> int:
        return self._counts.shape[0]

    @property
    def step_seconds(self) -> float:
        return self._trace.step_seconds

    @property
    def total_cores(self) -> int:
        return self._trace.total_cores

    @property
    def trace(self) -> TraceMatrix:
        """The full underlying trace (oracle forecasters read this)."""
        return self._trace

    def iter_rows(self, start: int = 0
                  ) -> Iterator[Tuple[int, np.ndarray]]:
        for step in range(start, self._counts.shape[0]):
            yield step, self._counts[step]


class SyntheticArrivalFeed:
    """Seeded open-loop arrivals: diurnal Poisson per workload.

    Per interval, workload ``k`` draws ``Poisson(rate_k(t))`` job-cores,
    where the rate follows the paper trace's 48-hour diurnal skeleton
    scaled by the workload's share of a peak utilization.  Rows are
    clipped to cluster capacity (proportionally, preserving mix).
    """

    def __init__(self, num_steps: int, step_seconds: float,
                 total_cores: int, *, seed: int = 0,
                 peak_utilization: float = 0.9) -> None:
        if num_steps <= 0:
            raise TraceError("num_steps must be positive")
        if not 0.0 < peak_utilization <= 1.0:
            raise TraceError("peak_utilization must be in (0, 1]")
        self._step_s = float(step_seconds)
        self._total_cores = int(total_cores)
        rng = np.random.default_rng(seed)
        hours = np.arange(num_steps) * self._step_s / 3600.0
        shape = _diurnal_shape(hours)
        rates = (shape[:, None] * DEFAULT_SHARES[None, :]
                 * peak_utilization * total_cores)
        counts = rng.poisson(rates).astype(np.int64)
        totals = counts.sum(axis=1, keepdims=True)
        over = totals > total_cores
        if np.any(over):
            scale = np.where(over, total_cores
                             / np.maximum(totals, 1), 1.0)
            counts = (counts * scale).astype(np.int64)
        self._counts = counts

    @property
    def num_steps(self) -> int:
        return self._counts.shape[0]

    @property
    def step_seconds(self) -> float:
        return self._step_s

    @property
    def total_cores(self) -> int:
        return self._total_cores

    def iter_rows(self, start: int = 0
                  ) -> Iterator[Tuple[int, np.ndarray]]:
        for step in range(start, self._counts.shape[0]):
            yield step, self._counts[step]


class JsonlFeed:
    """Line-delimited JSON arrivals from a file, pipe, or socket.

    Each line is one interval's demand: ``{"jobs": [w0, ..., w4]}`` or a
    bare 5-element list.  The first line may instead be a header object
    ``{"num_steps": N, "step_seconds": S, "total_cores": C}``; framing
    not supplied by a header must come from the constructor.  Blank
    lines are skipped; the stream ending early simply ends the run.
    """

    def __init__(self, lines: Iterable[str], *,
                 num_steps: Optional[int] = None,
                 step_seconds: Optional[float] = None,
                 total_cores: Optional[int] = None) -> None:
        self._lines = iter(lines)
        first_row: Optional[np.ndarray] = None
        header = self._read_header()
        if header is not None and "jobs" not in header \
                and not isinstance(header, list):
            num_steps = int(header.get("num_steps", num_steps or 0)) \
                or num_steps
            step_seconds = header.get("step_seconds", step_seconds)
            total_cores = header.get("total_cores", total_cores)
        elif header is not None:
            first_row = self._coerce_row(header)
        if num_steps is None or step_seconds is None \
                or total_cores is None:
            raise TraceError(
                "jsonl feed needs num_steps, step_seconds, and "
                "total_cores -- from the constructor or a header line")
        self._num_steps = int(num_steps)
        self._step_s = float(step_seconds)
        self._total_cores = int(total_cores)
        self._pending = first_row

    def _read_header(self):
        for raw in self._lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceError(f"bad jsonl feed line: {exc}") from exc
        return None

    @staticmethod
    def _coerce_row(payload) -> np.ndarray:
        jobs = payload.get("jobs") if isinstance(payload, dict) \
            else payload
        row = np.asarray(jobs, dtype=np.int64)
        if row.shape != (NUM_WORKLOADS,):
            raise TraceError(
                f"jsonl row must have {NUM_WORKLOADS} entries")
        return row

    @property
    def num_steps(self) -> int:
        return self._num_steps

    @property
    def step_seconds(self) -> float:
        return self._step_s

    @property
    def total_cores(self) -> int:
        return self._total_cores

    def iter_rows(self, start: int = 0
                  ) -> Iterator[Tuple[int, np.ndarray]]:
        if start != 0:
            raise TraceError(
                "a consumed line stream cannot rewind; re-supply the "
                "remaining lines to resume a jsonl feed")
        step = 0
        if self._pending is not None:
            yield step, self._pending
            self._pending = None
            step += 1
        for raw in self._lines:
            if step >= self._num_steps:
                break
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceError(f"bad jsonl feed line: {exc}") from exc
            yield step, self._coerce_row(payload)
            step += 1


def make_feed(kind: str, config: SimulationConfig, *,
              seed: Optional[int] = None):
    """Build a named feed sized to ``config``'s trace framing."""
    if kind == "replay":
        return TraceReplayFeed.from_config(config)
    if kind == "synthetic":
        trace_cfg: TraceConfig = config.trace
        return SyntheticArrivalFeed(
            trace_cfg.num_steps, trace_cfg.step_seconds,
            config.total_cores,
            seed=config.seed if seed is None else seed,
            peak_utilization=trace_cfg.peak_utilization)
    raise TraceError(
        f"unknown feed kind {kind!r}; choose from {FEED_KINDS} "
        "(or construct a JsonlFeed directly)")

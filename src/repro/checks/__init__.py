"""Simulation invariant sanitizer and golden-trace regression harness.

Two complementary correctness nets:

* :mod:`repro.checks.sanitizer` -- per-tick runtime invariant checking
  (``checks="off"|"cheap"|"full"``), wired into
  :class:`~repro.cluster.simulation.ClusterSimulation`;
* :mod:`repro.checks.golden` -- committed golden traces for every
  policy at the canonical 100-server configuration, diffed by the
  ``repro-sim check`` CLI and the tier-1 regression tests.

The golden harness is kept out of this namespace's eager imports so the
cluster layer can import the sanitizer without a cycle; reach it as
``repro.checks.golden``.
"""

from .sanitizer import (CHECK_LEVELS, CHECKS_ENV, CHECKS_POLICY_ENV,
                        SimulationSanitizer, resolve_check_level)

__all__ = [
    "CHECK_LEVELS", "CHECKS_ENV", "CHECKS_POLICY_ENV",
    "SimulationSanitizer", "resolve_check_level",
]

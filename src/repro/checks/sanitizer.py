"""Runtime invariant checking for the simulation loop.

The simulator's physics and policies obey a set of conservation laws and
validity bounds that hold *by construction* -- until a refactor breaks
one silently.  :class:`SimulationSanitizer` audits them while a run
executes, at one of three levels:

``off``
    No sanitizer is attached; the tick loop is unchanged.
``cheap``
    O(1) scalar checks per tick: time monotonicity, total job
    conservation, melt-fraction bounds, finite cluster totals, and the
    cooling-load identity against what the metrics collector stored.
``full``
    Everything in ``cheap`` plus elementwise audits: per-workload job
    conservation, per-server capacity and failed-server placement, the
    Eq. 1/2 hot/cold partition (and the VMT-WA extension formula and its
    peak monotonicity), the per-server PCM energy balance across the
    step, stored-latent bounds, estimator range, and non-finite
    rejection on every state array.

A violation is reported through the attached tracer as a structured
``invariant-violation`` event (the trace is flushed so the event
survives the aborted run) and then raised as
:class:`~repro.errors.InvariantViolation` carrying the tick index and,
where it applies, the offending server id.

The checkers read only ground-truth views and already-computed
placement state -- never the sensed path -- so an attached sanitizer can
never perturb the physics or consume RNG: fingerprints are bit-identical
across ``off``/``cheap``/``full``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.scheduler import Placement
from ..core.vmt_ta import VMTThermalAwareScheduler
from ..core.vmt_wa import VMTWaxAwareScheduler
from ..errors import ConfigurationError, InvariantViolation
from ..thermal.pcm import FULL_MELT_TOLERANCE

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..cluster.metrics import MetricsCollector
    from ..cluster.state import ClusterView
    from ..config import SimulationConfig
    from ..core.scheduler import Scheduler
    from ..obs.tracer import Tracer

#: Valid values for the ``checks=`` knob, in increasing cost order.
CHECK_LEVELS = ("off", "cheap", "full")

#: Environment variable supplying a default check level when the caller
#: passes ``checks=None`` (the library default).
CHECKS_ENV = "REPRO_CHECKS"

#: Optional companion variable restricting the env-var default to
#: policies whose name contains this substring (e.g. ``vmt-wa``), so CI
#: can run an existing suite with full checks on one policy without
#: paying the cost everywhere.
CHECKS_POLICY_ENV = "REPRO_CHECKS_POLICY"

#: Slack on the melt-fraction validity bounds.  The mapping clips to
#: [0, 1] so anything outside is a code bug, but the bound is checked
#: with the same tolerance the fully-melted gauge uses for symmetry.
_MELT_BOUND_TOL = FULL_MELT_TOLERANCE

#: Relative tolerance for float-identity checks (cooling-load identity,
#: PCM energy balance).  These identities hold to rounding error of the
#: few multiplies that separate the two sides, so 1e-9 relative is
#: orders of magnitude looser than the error and orders tighter than
#: any real bug.
_REL_TOL = 1e-9


def resolve_check_level(checks: Optional[str],
                        policy_name: Optional[str] = None) -> str:
    """Resolve the effective check level for one run.

    ``checks`` wins when given explicitly.  ``None`` consults the
    ``REPRO_CHECKS`` environment variable (so a whole test suite can be
    re-run under the sanitizer without touching call sites); when
    ``REPRO_CHECKS_POLICY`` is also set, the env default only applies to
    runs whose scheduler name contains that substring.  Anything else
    resolves to ``"off"``.
    """
    if checks is None:
        checks = os.environ.get(CHECKS_ENV)
        if checks is None:
            return "off"
        scope = os.environ.get(CHECKS_POLICY_ENV)
        if scope and (policy_name is None or scope not in policy_name):
            return "off"
    if checks not in CHECK_LEVELS:
        raise ConfigurationError(
            f"checks must be one of {', '.join(CHECK_LEVELS)}; "
            f"got {checks!r}")
    return checks


class SimulationSanitizer:
    """Per-tick invariant auditor wired into a ``ClusterSimulation``.

    The simulation calls :meth:`check_placement` after the scheduler
    places but before the physics advance, and :meth:`check_state` after
    the tick's metrics are recorded.  Both raise
    :class:`~repro.errors.InvariantViolation` on the first broken
    invariant.
    """

    def __init__(self, *, config: "SimulationConfig", cluster: "Cluster",
                 scheduler: "Scheduler", metrics: "MetricsCollector",
                 level: str, tracer: Optional["Tracer"] = None) -> None:
        if level not in CHECK_LEVELS or level == "off":
            raise ConfigurationError(
                f"sanitizer level must be 'cheap' or 'full', got {level!r}")
        self._config = config
        self._cluster = cluster
        self._scheduler = scheduler
        self._metrics = metrics
        self._level = level
        self._full = level == "full"
        self._tracer = tracer
        self._cores = config.server.cores
        self._ticks_checked = 0
        self._prev_time_s: Optional[float] = None
        self._pre_enthalpy: Optional[np.ndarray] = None
        # VMT-WA extension monotonicity tracking: (previous hot size,
        # whether the previous tick was inside a gated peak window).
        self._prev_hot_size: Optional[int] = None
        self._prev_peak_gated = False

    @property
    def level(self) -> str:
        """The active check level ('cheap' or 'full')."""
        return self._level

    @property
    def ticks_checked(self) -> int:
        """Ticks audited so far."""
        return self._ticks_checked

    def register_metrics(self, registry) -> None:
        """Publish sanitizer gauges (level ordinal and audited ticks)."""
        registry.gauge("checks.level",
                       lambda: float(CHECK_LEVELS.index(self._level)))
        registry.gauge("checks.ticks_checked",
                       lambda: float(self._ticks_checked))

    # -- violation reporting ------------------------------------------------

    def _violate(self, step: int, now_s: float, invariant: str,
                 message: str, *, server: Optional[int] = None,
                 **context) -> None:
        """Emit the structured trace event, flush, and raise."""
        if self._tracer is not None and self._tracer.enabled:
            payload = {k: v for k, v in context.items()}
            if server is not None:
                payload["server"] = int(server)
            self._tracer.event("invariant-violation", now_s,
                               step=step, invariant=invariant,
                               message=message, **payload)
            # Flush now: the raise below aborts the run before the
            # tracer's normal buffered flush would fire.
            self._tracer.flush()
        where = f"tick {step}"
        if server is not None:
            where += f", server {server}"
        raise InvariantViolation(f"[{invariant}] at {where}: {message}")

    # -- pre-step checks ----------------------------------------------------

    def check_placement(self, step: int, now_s: float, demand: np.ndarray,
                        view: "ClusterView",
                        placement: Placement) -> None:
        """Audit the tick's inputs and the scheduler's placement.

        Runs after ``scheduler.place`` and before ``cluster.step``; in
        full mode it also snapshots the pre-step wax enthalpy for the
        energy-balance audit in :meth:`check_state`.
        """
        # Event/tick time monotonicity: the engine dispatches in
        # (time, priority, sequence) order, so tick times must be finite
        # and strictly increasing.
        if not np.isfinite(now_s):
            self._violate(step, now_s, "time-monotonic",
                          f"tick time is not finite: {now_s!r}")
        if self._prev_time_s is not None and now_s <= self._prev_time_s:
            self._violate(step, now_s, "time-monotonic",
                          f"tick time {now_s!r} did not advance past "
                          f"previous tick at {self._prev_time_s!r}")
        self._prev_time_s = now_s

        # Demand validity at the scheduler boundary.
        total_demand = float(demand.sum())
        if not np.isfinite(total_demand) or total_demand < 0:
            self._violate(step, now_s, "finite-state",
                          f"demand total is invalid: {total_demand!r}")

        allocation = placement.allocation
        # Job conservation: every demanded job-core lands on exactly one
        # server -- including jobs displaced by failures (the injector
        # folds them back into the demand) and spillover across groups.
        placed_total = int(allocation.sum())
        if placed_total != int(total_demand):
            self._violate(
                step, now_s, "job-conservation",
                f"{placed_total} job-cores placed for a demand of "
                f"{int(total_demand)}")

        if self._full:
            self._check_placement_full(step, now_s, demand, view,
                                       placement)
            # Snapshot for the post-step energy balance.  ``enthalpy_j``
            # returns a fresh array; no copy needed.
            self._pre_enthalpy = self._cluster.wax_enthalpy_j

    def _check_placement_full(self, step: int, now_s: float,
                              demand: np.ndarray, view: "ClusterView",
                              placement: Placement) -> None:
        allocation = placement.allocation
        if np.any(~np.isfinite(demand.astype(np.float64))):
            bad = int(np.argmax(~np.isfinite(demand.astype(np.float64))))
            self._violate(step, now_s, "finite-state",
                          f"demand[{bad}] is not finite")
        # Per-workload conservation: the type mix must survive splitting,
        # spillover, and keep-warm top-ups, not just the total.
        placed_by_type = allocation.sum(axis=0)
        if not np.array_equal(placed_by_type, demand):
            bad = int(np.argmax(placed_by_type != demand))
            self._violate(
                step, now_s, "job-conservation",
                f"workload {bad}: placed {int(placed_by_type[bad])} "
                f"of {int(demand[bad])} demanded job-cores")
        if np.any(allocation < 0):
            server = int(np.argwhere(allocation < 0)[0][0])
            self._violate(step, now_s, "job-conservation",
                          "allocation contains negative counts",
                          server=server)
        per_server = allocation.sum(axis=1)
        over = per_server > self._cores
        if np.any(over):
            server = int(np.argmax(over))
            self._violate(
                step, now_s, "capacity",
                f"allocated {int(per_server[server])} cores "
                f"(capacity {self._cores})", server=server)
        if view.active_mask is not None:
            on_dead = ~view.active_mask & (per_server > 0)
            if np.any(on_dead):
                server = int(np.argmax(on_dead))
                self._violate(step, now_s, "capacity",
                              "jobs placed on a failed server",
                              server=server)
        est = view.wax_melt_estimate
        if np.any(~np.isfinite(est)) or np.any(est < 0.0) \
                or np.any(est > 1.0):
            server = int(np.argmax(~np.isfinite(est) | (est < 0.0)
                                   | (est > 1.0)))
            self._violate(step, now_s, "estimator-range",
                          f"melt estimate {est[server]!r} outside [0, 1]",
                          server=server)
        self._check_partition(step, now_s, demand, view, placement)

    def _check_partition(self, step: int, now_s: float,
                         demand: np.ndarray, view: "ClusterView",
                         placement: Placement) -> None:
        """Hot/cold partition invariants (Eq. 1/2 and VMT-WA extension)."""
        hot = placement.hot_group_mask
        if hot is None:
            # Baseline policies publish no partition; nothing to audit.
            self._prev_hot_size = None
            self._prev_peak_gated = False
            return
        hot_size = int(np.count_nonzero(hot))
        # The partition is always a low-id prefix (Eq. 2 gives the cold
        # group the remainder; the labeling is deterministic).
        if hot_size and not bool(hot[:hot_size].all()):
            self._violate(step, now_s, "group-partition",
                          "hot group mask is not a low-id prefix")
        scheduler = self._scheduler
        peak_gated = False
        if isinstance(scheduler, VMTWaxAwareScheduler):
            base = min(scheduler.base_sizer.hot_size, view.num_servers)
            if scheduler.degraded:
                if hot_size != base:
                    self._violate(
                        step, now_s, "group-partition",
                        f"degraded VMT-WA hot group is {hot_size}, "
                        f"expected the static Eq. 1 size {base}")
            else:
                # The melted set is the raw-threshold servers plus, via
                # keep-warm hysteresis, servers still above the release
                # threshold -- so the extension is bounded by both
                # counts rather than pinned to one formula.
                est = view.wax_melt_estimate
                raw = int(np.count_nonzero(
                    est >= scheduler.wax_threshold))
                relaxed = int(np.count_nonzero(
                    est >= scheduler.wax_release_threshold))
                lo = min(view.num_servers, base + raw)
                hi = min(view.num_servers, base + relaxed)
                if not lo <= hot_size <= hi:
                    self._violate(
                        step, now_s, "group-partition",
                        f"VMT-WA hot group is {hot_size}, outside "
                        f"[base {base} + {raw} melted, base + {relaxed} "
                        f"releasable] = [{lo}, {hi}]")
                # Extension monotonicity during a peak: while keep-warm
                # is fully engaged (utilization at or above the engage
                # threshold), melted servers are held melted, so the
                # extension can only grow.  Faults break the premise
                # (failed servers stop heating their wax), so the gate
                # requires a fault-free tick.
                utilization = float(demand.sum()) / view.total_cores
                peak_gated = (
                    utilization >= scheduler.keep_warm_min_utilization
                    and view.active_mask is None)
                if (peak_gated and self._prev_peak_gated
                        and self._prev_hot_size is not None
                        and hot_size < self._prev_hot_size):
                    self._violate(
                        step, now_s, "group-partition",
                        f"VMT-WA hot group shrank {self._prev_hot_size} "
                        f"-> {hot_size} mid-peak (utilization "
                        f"{utilization:.2f})")
        elif isinstance(scheduler, VMTThermalAwareScheduler):
            expected = scheduler.sizer.hot_size
            if hot_size != expected:
                self._violate(
                    step, now_s, "group-partition",
                    f"VMT-TA hot group is {hot_size}, Eq. 1 gives "
                    f"{expected}")
        self._prev_hot_size = hot_size
        self._prev_peak_gated = peak_gated

    # -- post-step checks ---------------------------------------------------

    def check_state(self, step: int, now_s: float, dt_s: float) -> None:
        """Audit the physical state after the tick's physics and metrics."""
        cluster = self._cluster
        melt = cluster.wax_melt_fraction_view
        lo = float(melt.min())
        hi = float(melt.max())
        if not (np.isfinite(lo) and np.isfinite(hi)) \
                or lo < -_MELT_BOUND_TOL or hi > 1.0 + _MELT_BOUND_TOL:
            server = int(np.argmax(~np.isfinite(melt) | (melt < -_MELT_BOUND_TOL)
                                   | (melt > 1.0 + _MELT_BOUND_TOL)))
            self._violate(step, now_s, "melt-bounds",
                          f"melt fraction {melt[server]!r} outside [0, 1]",
                          server=server)

        metrics = self._metrics
        it_power = metrics.last_value("it_power_w")
        absorbed = metrics.last_value("wax_absorption_w")
        cooling = metrics.last_value("cooling_load_w")
        for name, value in (("it_power_w", it_power),
                            ("wax_absorption_w", absorbed),
                            ("cooling_load_w", cooling)):
            if not np.isfinite(value):
                self._violate(step, now_s, "finite-state",
                              f"recorded {name} is not finite: {value!r}")
        # Cooling-load identity (Section IV): what the metrics stored
        # must equal the summed server power minus the summed wax
        # absorption -- both as recorded and against the cluster's own
        # ground-truth arrays.
        scale = abs(it_power) + abs(absorbed) + 1.0
        if abs(cooling - (it_power - absorbed)) > _REL_TOL * scale:
            self._violate(
                step, now_s, "cooling-identity",
                f"recorded cooling load {cooling!r} != recorded IT power "
                f"{it_power!r} - wax absorption {absorbed!r}")
        true_power = float(cluster.power_w_view.sum())
        true_absorbed = float(cluster.wax_absorption_w_view.sum())
        if abs(it_power - true_power) > _REL_TOL * scale \
                or abs(absorbed - true_absorbed) > _REL_TOL * scale:
            self._violate(
                step, now_s, "cooling-identity",
                f"recorded totals (P={it_power!r}, q={absorbed!r}) do "
                f"not match cluster state (P={true_power!r}, "
                f"q={true_absorbed!r})")

        if self._full:
            self._check_state_full(step, now_s, dt_s)
        self._ticks_checked += 1

    def _check_state_full(self, step: int, now_s: float,
                          dt_s: float) -> None:
        cluster = self._cluster
        for name, arr in (("air_temp_c", cluster.air_temp_c_view),
                          ("power_w", cluster.power_w_view),
                          ("wax_absorption_w",
                           cluster.wax_absorption_w_view)):
            finite = np.isfinite(arr)
            if not finite.all():
                server = int(np.argmax(~finite))
                self._violate(step, now_s, "finite-state",
                              f"{name}[{server}] is not finite "
                              f"({arr[server]!r})", server=server)
        # Stored latent heat in [0, capacity] per server.
        capacity = cluster.wax_latent_capacity_j
        stored = cluster.wax_melt_fraction_view * capacity
        tol = _MELT_BOUND_TOL * max(capacity, 1.0)
        if np.any(stored < -tol) or np.any(stored > capacity + tol):
            server = int(np.argmax((stored < -tol)
                                   | (stored > capacity + tol)))
            self._violate(
                step, now_s, "melt-bounds",
                f"stored latent heat {stored[server]!r} J outside "
                f"[0, {capacity!r}]", server=server)
        # PCM energy balance: across the step, each server's enthalpy
        # change must equal the reported heat flow times the timestep.
        # The enthalpy method guarantees this by construction, so any
        # discrepancy beyond float rounding is a model bug.
        if self._pre_enthalpy is not None:
            after = cluster.wax_enthalpy_j
            delta = after - self._pre_enthalpy
            expected = cluster.wax_absorption_w_view * dt_s
            scale = (np.abs(after) + np.abs(self._pre_enthalpy)
                     + np.abs(expected))
            bad = np.abs(delta - expected) > _REL_TOL * scale + 1e-6
            if np.any(bad):
                server = int(np.argmax(bad))
                self._violate(
                    step, now_s, "energy-balance",
                    f"wax enthalpy changed by {delta[server]!r} J but "
                    f"the reported absorption accounts for "
                    f"{expected[server]!r} J", server=server)
        self._pre_enthalpy = None

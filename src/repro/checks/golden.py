"""Golden-trace regression harness.

The repository commits, for every scheduling policy, the full scalar
series of one canonical run -- the paper's 100-server parameter-sweep
configuration over the two-day trace -- together with the result
fingerprint.  Re-running that configuration and diffing against the
goldens catches any unintended behavioral drift, and because the whole
series is stored (not just the hash) a mismatch produces a *readable*
first-divergence report: the tick, the metric, and the expected/actual
values, instead of an opaque fingerprint change.

Goldens live next to this module in ``goldens/`` as one ``.npz`` per
policy plus a ``fingerprints.json`` manifest recording the exact
configuration they were captured under.  Refresh them (after an
*intentional* behavior change, documented in CHANGES.md) with::

    repro-sim check --update
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SimulationConfig, paper_cluster_config
from ..core.policies import SCHEDULER_NAMES, make_scheduler
from ..errors import ConfigurationError
from .sanitizer import resolve_check_level

#: Directory holding the committed golden traces.
GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: Scalar series stored per policy, in storage order.  A subset of
#: ``SimulationResult.FINGERPRINT_FIELDS``: the fault/heatmap series are
#: absent from the golden configuration (fault-free, no heatmaps).
GOLDEN_SERIES: Tuple[str, ...] = (
    "times_s", "cooling_load_w", "it_power_w", "wax_absorption_w",
    "mean_temp_c", "hot_group_mean_temp_c", "cold_group_mean_temp_c",
    "mean_melt_fraction", "hot_group_size", "jobs", "max_cpu_temp_c")

#: The canonical configuration the goldens were captured under: the
#: paper's 100-server sweep cluster, noise-free inlets, seed 7.
GOLDEN_CONFIG_KWARGS = {
    "num_servers": 100,
    "grouping_value": 22.0,
    "seed": 7,
    "inlet_stdev_c": 0.0,
    "wax_threshold": 0.98,
}


def golden_config() -> SimulationConfig:
    """The configuration every golden trace was captured under."""
    return paper_cluster_config(**GOLDEN_CONFIG_KWARGS)


@dataclass(frozen=True)
class Divergence:
    """First point at which a re-run left its golden trace."""

    policy: str
    metric: str
    tick: int
    time_hours: float
    expected: float
    got: float

    def report(self) -> str:
        """One readable line locating the divergence."""
        return (f"{self.policy}: first divergence in '{self.metric}' at "
                f"tick {self.tick} (t={self.time_hours:.2f} h): "
                f"expected {self.expected!r}, got {self.got!r}")


@dataclass(frozen=True)
class GoldenComparison:
    """Outcome of diffing one policy's re-run against its golden."""

    policy: str
    expected_fingerprint: str
    got_fingerprint: str
    divergence: Optional[Divergence]

    @property
    def matches(self) -> bool:
        """True when the run reproduced its golden bit-for-bit."""
        return (self.expected_fingerprint == self.got_fingerprint
                and self.divergence is None)

    def report(self) -> str:
        """Human-readable verdict for CLI / pytest output."""
        if self.matches:
            return (f"{self.policy}: OK "
                    f"(fingerprint {self.got_fingerprint})")
        lines = [f"{self.policy}: DRIFT (fingerprint "
                 f"{self.expected_fingerprint} -> {self.got_fingerprint})"]
        if self.divergence is not None:
            lines.append("  " + self.divergence.report())
        else:
            lines.append("  scalar series all match -- the drift is in a "
                         "field outside the golden series")
        return "\n".join(lines)


def load_manifest() -> Dict:
    """Load and sanity-check ``goldens/fingerprints.json``."""
    path = GOLDEN_DIR / "fingerprints.json"
    if not path.exists():
        raise ConfigurationError(
            f"golden manifest missing at {path}; run "
            "'repro-sim check --update' to capture goldens")
    with path.open() as fh:
        manifest = json.load(fh)
    for key in ("config", "fingerprints", "series"):
        if key not in manifest:
            raise ConfigurationError(
                f"golden manifest {path} is missing the {key!r} key")
    return manifest


def load_golden(policy: str) -> Dict[str, np.ndarray]:
    """Load one policy's committed golden series."""
    path = GOLDEN_DIR / f"{policy}.npz"
    if not path.exists():
        raise ConfigurationError(
            f"no golden trace for policy {policy!r} at {path}")
    with np.load(path) as data:
        return {name: data[name].copy() for name in data.files}


def run_golden_config(policy: str, *, checks: Optional[str] = None):
    """Re-run one policy under the canonical golden configuration."""
    # Imported here: the checks package must stay importable from the
    # cluster layer without a cycle.
    from ..cluster.simulation import run_simulation

    config = golden_config()
    scheduler = make_scheduler(policy, config)
    return run_simulation(config, scheduler, record_heatmaps=False,
                          checks=checks)


def first_divergence(policy: str, result,
                     golden: Dict[str, np.ndarray]) -> Optional[Divergence]:
    """Locate the earliest (tick, metric) where ``result`` leaves golden.

    Scans every golden series and returns the divergence with the
    smallest tick index (ties broken by series order), so the report
    points at the *cause*, not a downstream symptom.
    """
    earliest: Optional[Divergence] = None
    times = golden.get("times_s")
    for name in GOLDEN_SERIES:
        if name not in golden:
            continue
        expected = golden[name]
        got = np.asarray(getattr(result, name))
        n = min(len(expected), len(got))
        exp_f = expected[:n].astype(np.float64)
        got_f = got[:n].astype(np.float64)
        # NaN == NaN for diffing purposes (group means are NaN when a
        # policy publishes no partition).
        differs = ~((exp_f == got_f)
                    | (np.isnan(exp_f) & np.isnan(got_f)))
        if len(expected) != len(got):
            tick = n if not differs.any() \
                else min(n, int(np.argmax(differs)))
        elif differs.any():
            tick = int(np.argmax(differs))
        else:
            continue
        if earliest is None or tick < earliest.tick:
            hours = (float(times[tick]) / 3600.0
                     if times is not None and tick < len(times)
                     else float("nan"))
            exp_val = (float(expected[tick]) if tick < len(expected)
                       else float("nan"))
            got_val = (float(got[tick]) if tick < len(got)
                       else float("nan"))
            earliest = Divergence(policy=policy, metric=name, tick=tick,
                                  time_hours=hours, expected=exp_val,
                                  got=got_val)
    return earliest


def check_policy(policy: str, *,
                 checks: Optional[str] = None) -> GoldenComparison:
    """Re-run one policy and diff it against its committed golden."""
    manifest = load_manifest()
    expected_fp = manifest["fingerprints"].get(policy)
    if expected_fp is None:
        raise ConfigurationError(
            f"policy {policy!r} has no golden fingerprint; known: "
            f"{', '.join(sorted(manifest['fingerprints']))}")
    golden = load_golden(policy)
    result = run_golden_config(policy, checks=checks)
    return GoldenComparison(
        policy=policy,
        expected_fingerprint=expected_fp,
        got_fingerprint=result.fingerprint(),
        divergence=first_divergence(policy, result, golden),
    )


def check_all(policies: Optional[List[str]] = None, *,
              checks: Optional[str] = None) -> List[GoldenComparison]:
    """Diff every (or the given) policies against their goldens."""
    names = list(policies) if policies else list(SCHEDULER_NAMES)
    return [check_policy(name, checks=checks) for name in names]


def update_goldens(policies: Optional[List[str]] = None, *,
                   checks: Optional[str] = "full") -> Dict[str, str]:
    """Re-capture goldens for the given policies (default: all).

    Runs with ``checks="full"`` by default: a golden captured from a run
    that violates an invariant would enshrine the bug.  Returns the new
    ``{policy: fingerprint}`` mapping after rewriting the ``.npz`` files
    and the manifest.
    """
    names = list(policies) if policies else list(SCHEDULER_NAMES)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    manifest_path = GOLDEN_DIR / "fingerprints.json"
    if manifest_path.exists():
        manifest = load_manifest()
    else:
        manifest = {"config": dict(GOLDEN_CONFIG_KWARGS),
                    "record_heatmaps": False,
                    "series": list(GOLDEN_SERIES),
                    "fingerprints": {}}
    fingerprints: Dict[str, str] = {}
    for name in names:
        result = run_golden_config(name, checks=checks)
        series = {field: np.asarray(getattr(result, field))
                  for field in GOLDEN_SERIES}
        np.savez_compressed(GOLDEN_DIR / f"{name}.npz", **series)
        fingerprints[name] = result.fingerprint()
    manifest["fingerprints"].update(fingerprints)
    manifest["config"] = dict(GOLDEN_CONFIG_KWARGS)
    manifest["series"] = list(GOLDEN_SERIES)
    with manifest_path.open("w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return fingerprints


__all__ = [
    "GOLDEN_DIR", "GOLDEN_SERIES", "Divergence", "GoldenComparison",
    "golden_config", "load_manifest", "load_golden", "run_golden_config",
    "first_divergence", "check_policy", "check_all", "update_goldens",
    "resolve_check_level",
]

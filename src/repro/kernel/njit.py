"""Optional numba-compiled inner loop for the planned kernel.

The fused air + PCM recurrence is the only part of the planned kernel
that cannot be batched across ticks (tick ``t`` needs tick ``t-1``'s
state).  When numba is installed, :func:`fused_air_pcm` compiles that
recurrence to a single scalar loop; when it is not -- the supported
baseline -- :mod:`.planned` falls back to its vectorized per-tick numpy
spelling.  Import failure is silent by design: numba is an accelerator,
never a dependency.

Bit-identity: the loop applies the *same scalar IEEE-754 operations in
the same order* as the reference models (``ServerAirModel.step``,
``PCMBank.step``), element by element.  Both spellings are pure
elementwise arithmetic with no reductions, so scalar-vs-vector makes no
difference to the bits.
"""

from __future__ import annotations

try:
    import numba
    HAS_NUMBA = True
except Exception:  # pragma: no cover - numba absent in the baseline image
    numba = None
    HAS_NUMBA = False


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def fused_air_pcm(targets, temp0, h0, temp_block, h_block, alpha,
                      ha, sub_dt, n_sub, mass, cp_s, cp_l, t_melt,
                      h_sol, h_liq):
        """Advance air temps and wax enthalpy through all ticks.

        ``targets`` is the (ticks, servers) steady-state air target;
        ``temp0`` / ``h0`` the initial state.  Results land in
        ``temp_block`` / ``h_block`` (ticks, servers).
        """
        num_ticks, num_servers = targets.shape
        for i in range(num_servers):
            temp = temp0[i]
            h = h0[i]
            for t in range(num_ticks):
                temp = temp + (targets[t, i] - temp) * alpha
                for _ in range(n_sub):
                    if h < h_sol:
                        t_wax = h / cp_s
                    elif h > h_liq:
                        t_wax = t_melt + (h - h_liq) / cp_l
                    else:
                        t_wax = t_melt
                    q = ha * (temp - t_wax)
                    h = h + q * sub_dt / mass
                temp_block[t, i] = temp
                h_block[t, i] = h

else:
    fused_air_pcm = None

"""Engine-bypass stepped driver: the reference tick loop, hoisted.

The event engine earns its keep when events arrive at arbitrary times --
fault injection, telemetry flushes.  A plain simulation run is just one
periodic process, so the heap push/pop, ``Event`` construction, and
dispatch accounting per tick are pure overhead.  This driver calls
``ClusterSimulation._tick`` directly at the same simulated times the
:class:`~repro.sim.process.PeriodicProcess` would have fired it,
maintaining the engine's clock and dispatch counter by hand so
checkpoints, snapshots, and post-run state are indistinguishable from a
reference run.

Per-tick python hoisted here (beyond the heap): the scheduler's
allocation is validated once by ``Scheduler.place`` and then trusted --
``Cluster.step``'s re-validation of the same array is skipped when no
sanitizer is attached (``Cluster._validate``).  Error paths aside, the
arithmetic is the reference path itself, so bit-identity is by
construction for *every* policy, with checkpoints, sanitizer levels,
observers, and restored runs all supported.
"""

from __future__ import annotations

import time


def eligible(sim) -> bool:
    """Whether the run can bypass the event heap.

    Fault injectors and telemetry bundles schedule their own engine
    events, so those runs keep the reference engine loop.
    """
    return sim._injector is None and sim._telemetry is None


def run(sim):
    """Drive the simulation to completion without the event heap."""
    engine = sim._engine
    trace = sim._trace
    cluster = sim._cluster
    step_s = trace.step_seconds
    total = trace.num_steps
    if not sim._restored:
        sim._scheduler.reset()
    # The reference periodic process fires at start_at + k * step_s,
    # accumulating in float; reproduce the identical event times.
    now = (sim._step_index * step_s if sim._restored
           else engine.now)
    prof = sim._profiler
    tick = sim._tick
    skip_validation = sim._sanitizer is None
    if skip_validation:
        cluster._validate = False
    try:
        if prof is None:
            for _ in range(sim._step_index, total):
                engine._now = now
                tick(now)
                engine._dispatched += 1
                now += step_s
        else:
            clock = time.perf_counter
            loop_start = clock()
            in_tick = 0.0
            for _ in range(sim._step_index, total):
                engine._now = now
                mark = clock()
                tick(now)
                in_tick += clock() - mark
                engine._dispatched += 1
                now += step_s
            prof.add("dispatch", clock() - loop_start - in_tick)
    finally:
        if skip_validation:
            cluster._validate = True
    engine._now = max(engine._now, total * step_s - 1e-9)
    profile = prof.snapshot() if prof is not None else None
    return sim._metrics.finish(sim._config, sim._scheduler.name,
                               profile=profile)

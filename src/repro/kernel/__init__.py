"""Runtime-selected fast-path tick kernels.

The reference simulation advances one tick at a time through the event
engine: scheduler placement, air-node relaxation, PCM enthalpy
integration, estimator update, and metrics recording, each as its own
per-tick python call chain.  That is the clearest spelling of the
model -- and, at thousands of ticks per run and thousands of runs per
sweep, the bottleneck.

This package provides a second execution path selected at runtime::

    backend="reference"   the event-engine loop (default)
    backend="fast"        batched kernels, bit-identical output

selected per-simulation (``ClusterSimulation(..., backend=...)``) or
globally via the ``REPRO_BACKEND`` environment variable.  The fast
backend dispatches to the most aggressive kernel whose preconditions the
run satisfies:

* :mod:`.planned` -- whole-run batched kernel for clean VMT-TA runs
  (the open-loop policy: placement depends only on static group sizing,
  so the entire run is plannable up front);
* :mod:`.stepped` -- the reference tick loop driven directly, without
  the event heap, per-tick re-validation, or dict plumbing (all
  policies, checkpoints, sanitizer, observers);
* the reference engine loop for everything else (fault injection and
  telemetry schedule their own engine events, so they keep the engine).

Every kernel is bit-identical to the reference path: same RNG stream
consumption, same IEEE-754 operation order per element, same recorded
series -- ``SimulationResult.fingerprint()`` is the enforced contract
(see ``tests/test_kernel_equivalence.py``).
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import ConfigurationError

#: Valid backend names.
BACKENDS = ("reference", "fast")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve the effective backend for one simulation.

    An explicit ``backend`` wins; ``None`` consults the
    ``REPRO_BACKEND`` environment variable and falls back to
    ``"reference"``.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "reference"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {', '.join(BACKENDS)}; "
            f"got {backend!r}")
    return backend


def is_numba_available() -> bool:
    """Whether the optional numba-compiled physics loop is importable."""
    from . import njit
    return njit.HAS_NUMBA


def run_fast(sim) -> Optional["SimulationResult"]:
    """Run ``sim`` through the fastest eligible kernel.

    Returns the finished :class:`~repro.cluster.metrics.SimulationResult`,
    or ``None`` when no kernel applies (fault injection or telemetry
    attached) -- the caller then falls through to the reference engine
    loop, which keeps ``backend="fast"`` safe for *every* run shape.
    """
    from . import planned, stepped
    result = planned.try_run(sim)
    if result is not None:
        sim._kernel_path = "planned"
        return result
    if stepped.eligible(sim):
        sim._kernel_path = "stepped"
        return stepped.run(sim)
    sim._kernel_path = "reference"
    return None

"""Whole-run batched kernel for clean VMT-TA simulations.

VMT-TA is the paper's open-loop policy: the hot/cold split is fixed by
the grouping value (Eqs. 1-2) and placement depends only on the demand
trace and the scheduler's private RNG -- never on temperatures, wax
state, or faults.  That makes the entire run *plannable*: every tick's
allocation can be computed up front, and the remaining physics chain is
either elementwise (batchable across all ticks at once) or a cheap
recurrence.

The kernel preserves bit-identity with the reference path by
construction:

* **RNG**: each consumer draws from its own named stream, so streams can
  be consumed in any relative order.  Batched ``normal(0, s, (T, n))``
  draws the exact same values (and leaves the same generator state) as
  ``T`` sequential ``(n,)`` draws.  The scheduler's shuffle sequence is
  replayed tick by tick in reference order.
* **Placement**: ``waterfill_quotas`` over a fault-free uniform-capacity
  group has a closed form (level = total // m, remainder rotated by the
  tick index), and ``deal_types``'s round-robin slot order becomes a
  precomputed key array; ``bincount`` then reproduces the reference
  allocation integer-for-integer.  Ticks that spill across groups are
  replayed through the scheduler's own 4-pass spill placement (same RNG
  draws, same tie offsets), so only overflowing ticks pay python cost.
* **Physics**: every expression is applied with the same IEEE-754
  operation order per element as the reference models; only the loop
  structure changes (elementwise ops are batched across ticks, the
  air/PCM state recurrence stays a per-tick loop, optionally compiled by
  :mod:`.njit`).
* **Metrics**: per-row reductions (``row.mean()``) and axis reductions
  over C-contiguous rows (``block.mean(axis=1)``) use the same pairwise
  summation, so recorded series match bitwise;
  :meth:`MetricsCollector.fill_block` writes them into the same buffers
  ``record`` would have filled.

What stays python: the planning loop (one shuffle + bincount per
populated group per tick) and the state recurrences.  Everything else --
power model, air targets, junction temps, sensor/estimator noise,
enthalpy-delta heat flow, melt-fraction truth, every recorded series --
is a handful of whole-run numpy kernels over preallocated blocks.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..workloads.workload import COLD_INDICES, HOT_INDICES, WORKLOAD_LIST

_K = len(WORKLOAD_LIST)

try:
    # The ufunc np.clip dispatches to: same kernel, same bits, without
    # the per-call dispatch overhead (it runs once per tick in the
    # estimator recurrence).
    from numpy._core.umath import clip as _clip_ufunc
except ImportError:  # pragma: no cover - numpy internals moved
    def _clip_ufunc(a, lo, hi, out):
        return np.clip(a, lo, hi, out=out)


def try_run(sim) -> Optional["SimulationResult"]:
    """Run ``sim`` through the planned kernel, or return ``None``.

    Eligibility mirrors exactly the situations where planning ahead is
    provably equivalent: a fresh, clean VMT-TA run -- no faults, no
    sanitizer, no telemetry/observers/checkpoints, no ambient profile,
    no mid-run restore.
    """
    from ..core.vmt_ta import VMTThermalAwareScheduler

    sched = sim._scheduler
    if type(sched) is not VMTThermalAwareScheduler:
        return None
    cluster = sim._cluster
    if (sim._injector is not None
            or sim._sanitizer is not None
            or sim._telemetry is not None
            or sim._observers
            or sim._checkpoint_every is not None
            or sim._restored
            or sim._step_index != 0
            or sim._metrics.size != 0
            or sim._engine.events_dispatched != 0
            or cluster._ambient is not None):
        return None
    config = sim._config
    wax = config.wax
    if (wax.mass_kg <= 0 or wax.latent_heat_j_per_kg <= 0
            or config.thermal.ha_w_per_k == 0):
        # Degenerate PCM: the reference models switch to special-cased
        # branches (zero heat flow, step-function melt fraction) that
        # are not worth mirroring here.
        return None
    num_servers = config.num_servers
    hot_size = sched.sizer.hot_size
    if not 0 < hot_size < num_servers:
        return None
    counts = sim._trace._counts
    if counts.shape[0] == 0:
        return None
    cores = config.server.cores
    hot_tot = counts[:, list(HOT_INDICES)].sum(axis=1)
    cold_tot = counts[:, list(COLD_INDICES)].sum(axis=1)
    # Ticks whose demand overflows a group engage the scheduler's
    # cross-group spill passes; the plan loop replays those ticks
    # through the scheduler's own ``_place_group`` (same RNG draws,
    # same tie offsets) and keeps the closed form for the rest.
    spill = ((hot_tot > hot_size * cores)
             | (cold_tot > (num_servers - hot_size) * cores))
    return _run(sim, hot_tot, cold_tot, spill)


def _run(sim, hot_tot: np.ndarray, cold_tot: np.ndarray,
         spill: np.ndarray):
    prof = sim._profiler
    clock = time.perf_counter
    setup_start = clock()
    # The planned kernel bypasses ClusterSimulation._tick (where the
    # cooperative deadline is normally polled), so it checks the budget
    # itself: every 256 plan-loop ticks and once after the fused physics.
    deadline = sim._deadline
    if deadline is not None:
        deadline.check()

    config = sim._config
    cluster = sim._cluster
    sched = sim._scheduler
    air = cluster._air
    pcm = cluster._pcm
    estimator = cluster._estimator
    engine = sim._engine

    n = config.num_servers
    counts = sim._trace._counts
    T = counts.shape[0]
    dt = sim._trace.step_seconds
    cores = config.server.cores
    hs = sched.sizer.hot_size

    thermal = config.thermal
    inlet = air._inlet  # fixed: no ambient profile, no cooling derates
    r_air = thermal.r_air_c_per_w
    alpha = 1.0 - math.exp(-dt / thermal.tau_air_s)
    ha = thermal.ha_w_per_k

    mass = pcm._mass
    cp_s = pcm._cp_s
    cp_l = pcm._cp_l
    t_melt = pcm._t_melt
    h_sol = pcm._h_sol
    h_liq = pcm._h_liq
    tau = mass * min(cp_s, cp_l) / ha
    n_sub = max(1, int(math.ceil(dt / (0.25 * tau))))
    sub_dt = dt / n_sub

    # A fresh reference run resets the scheduler before the first tick.
    sched.reset()

    # ---- plan: replay the dealer for every tick --------------------------
    plan_start = clock()
    rng = sched._rng
    pcp = cluster._per_core_power
    hot_cols = list(HOT_INDICES)
    cold_cols = list(COLD_INDICES)
    hot_rows = np.zeros((T, _K), dtype=np.int64)
    hot_rows[:, hot_cols] = counts[:, hot_cols]
    cold_rows = np.zeros((T, _K), dtype=np.int64)
    cold_rows[:, cold_cols] = counts[:, cold_cols]
    ar5 = np.arange(_K)
    # Per-group constants: the bincount key of each server (its offset
    # into the flat (n, K) allocation row) and the full-rounds
    # dealing-order keys (all servers ascending, one pass per level).
    groups = []
    for base, m, totals, rows in ((0, hs, hot_tot, hot_rows),
                                  (hs, n - hs, cold_tot, cold_rows)):
        key_of_server = (base + np.arange(m, dtype=np.int64)) * _K
        base_tile = np.tile(key_of_server, cores)
        level, rem = np.divmod(totals, m)
        groups.append((totals.tolist(), (level * m).tolist(),
                       rem.tolist(), m, list(rows), base_tile,
                       key_of_server))
    (hot_tots, hot_lms, hot_rems, hot_m, hot_rows_l, hot_base,
     hot_keys) = groups[0]
    (cold_tots, cold_lms, cold_rems, cold_m, cold_rows_l, cold_base,
     cold_keys) = groups[1]
    # All ticks' allocations in one float block so the dynamic-power
    # matmul runs once, batched (bitwise identical to per-tick matmuls).
    alloc_block = np.zeros((T, n * _K))
    alloc_rows = list(alloc_block)
    key_buf = np.empty(n * cores, dtype=np.int64)
    add = np.add
    bincount = np.bincount
    copyto = np.copyto
    shuffle = rng.shuffle
    repeat = np.repeat
    width = n * _K
    # Spill-tick scratch: the reference scheduler's own 4-pass spill
    # placement runs against these, with ``sched._tick`` pinned to the
    # tick so tie offsets and RNG draws match the reference loop.
    spill_list = spill.tolist()
    hot_ids = np.flatnonzero(sched.sizer.hot_mask())
    cold_ids = np.flatnonzero(~sched.sizer.hot_mask())
    free_buf = np.empty(n, dtype=np.int64)
    alloc2d = np.zeros((n, _K), dtype=np.int64)
    alloc2d_flat = alloc2d.reshape(-1)
    place_group = sched._place_group
    hot_rows_arr = hot_rows
    cold_rows_arr = cold_rows
    # Per-tick scratch stays a few KB, i.e. cache-resident: building
    # each tick's type list fresh beats materializing tick blocks up
    # front, which would stream tens of MB through memory instead.
    # Each group's tick work: the exact unshuffled type list deal_types
    # builds, shuffled in place (same stream consumption and bits as
    # rng.permutation on a fresh copy), dealt against the waterfill
    # closed form -- an even level plus a remainder rotated by the tick
    # index, dealt all-servers-ascending per full round and then the
    # remainder servers in ascending index order.
    for t in range(T):
        if deadline is not None and not (t & 255):
            deadline.check()
        if spill_list[t]:
            sched._tick = t
            free_buf.fill(cores)
            alloc2d.fill(0)
            hot_d = hot_rows_arr[t].copy()
            cold_d = cold_rows_arr[t].copy()
            place_group(hot_d, hot_ids, free_buf, alloc2d)
            place_group(cold_d, cold_ids, free_buf, alloc2d)
            place_group(hot_d, cold_ids, free_buf, alloc2d)
            place_group(cold_d, hot_ids, free_buf, alloc2d)
            alloc_rows[t][:] = alloc2d_flat
            continue
        fill = tot = hot_tots[t]
        if tot:
            types = repeat(ar5, hot_rows_l[t])
            shuffle(types)
            seg = key_buf[:tot]
            if hot_rems[t] == 0:
                add(hot_base[:tot], types, out=seg)
            else:
                lm = hot_lms[t]
                seg[:lm] = hot_base[:lm]
                start = t % hot_m
                end = start + hot_rems[t]
                if end <= hot_m:
                    seg[lm:] = hot_keys[start:end]
                else:
                    low = end - hot_m
                    seg[lm:lm + low] = hot_keys[:low]
                    seg[lm + low:] = hot_keys[start:]
                add(seg, types, out=seg)
        tot = cold_tots[t]
        if tot:
            types = repeat(ar5, cold_rows_l[t])
            shuffle(types)
            seg = key_buf[fill:fill + tot]
            fill += tot
            if cold_rems[t] == 0:
                add(cold_base[:tot], types, out=seg)
            else:
                lm = cold_lms[t]
                seg[:lm] = cold_base[:lm]
                start = t % cold_m
                end = start + cold_rems[t]
                if end <= cold_m:
                    seg[lm:] = cold_keys[start:end]
                else:
                    low = end - cold_m
                    seg[lm:lm + low] = cold_keys[:low]
                    seg[lm + low:] = cold_keys[start:]
                add(seg, types, out=seg)
        if fill:
            copyto(alloc_rows[t], bincount(key_buf[:fill],
                                           minlength=width))
    dyn_block = np.matmul(alloc_block.reshape(T * n, _K),
                          pcp).reshape(T, n)
    plan_elapsed = clock() - plan_start

    # ---- fused physics ---------------------------------------------------
    step_start = clock()
    power_block = cluster._power_model.server_power(dyn_block)
    targets = power_block * r_air
    targets += inlet

    # Batched stream draws, identical values/state to per-tick draws.
    sensor = cluster._sensor
    if sensor._noise > 0:
        # view() reads the air sensor every tick; VMT-TA never looks at
        # the sensed values, so only the stream consumption matters.
        sensor._rng.normal(0.0, sensor._noise, size=(T, n))
    est_noise = None
    if estimator._sensor_noise > 0:
        est_noise = estimator._rng.normal(0.0, estimator._sensor_noise,
                                          size=(T, n))

    temp_block = np.empty((T, n))
    h_store = np.empty((T + 1, n))
    h_store[0] = pcm._h
    h_block = h_store[1:]

    from . import njit
    if njit.fused_air_pcm is not None:
        njit.fused_air_pcm(targets, air._temp.copy(), h_store[0].copy(),
                           temp_block, h_block, alpha, ha, sub_dt,
                           n_sub, mass, cp_s, cp_l, t_melt, h_sol,
                           h_liq)
    else:
        _python_air_pcm(targets, air._temp, h_store, temp_block,
                        h_block, alpha, ha, sub_dt, n_sub, mass, cp_s,
                        cp_l, t_melt, h_sol, h_liq)

    # Heat into wax: enthalpy delta per tick, same expression as
    # PCMBank.step's return value.
    q_block = (h_block - h_store[:-1]) * mass / dt

    # Estimator: rate lookup is elementwise (batch it); the clipped
    # integration + anchoring is a cheap per-tick recurrence.
    truth_block = np.clip((h_block - h_sol) / pcm._latent, 0.0, 1.0)
    anchored = (truth_block <= 0.0) | (truth_block >= 1.0)
    anchored_any = anchored.any(axis=1).tolist()
    sensed = temp_block if est_noise is None else temp_block + est_noise
    delta = sensed - estimator._t_melt
    bins = np.clip(np.digitize(delta, estimator._bin_edges) - 1,
                   0, len(estimator._rate_table) - 1)
    rates_dt = estimator._rate_table[bins]
    rates_dt *= dt
    est = estimator._estimate.copy()
    add = np.add
    clip = _clip_ufunc
    copyto = np.copyto
    anchored_rows = list(anchored)
    truth_rows = list(truth_block)
    for t, rates_row in enumerate(rates_dt):
        add(est, rates_row, out=est)
        clip(est, 0.0, 1.0, est)
        if anchored_any[t]:
            # Same values as where(mask, truth, est); clip of the
            # already-clipped truth is bitwise idempotent.
            copyto(est, truth_rows[t], where=anchored_rows[t])
    step_elapsed = clock() - step_start
    if deadline is not None:
        deadline.check()

    # ---- metrics ---------------------------------------------------------
    metrics_start = clock()
    times = np.empty(T)
    t_acc = 0.0
    for t in range(T):
        t_acc += dt
        times[t] = t_acc
    it_power = power_block.sum(axis=1)
    wax_abs = q_block.sum(axis=1)
    junction = cluster._cpu_model.junction_temp_c(
        inlet[None, :], dyn_block, config.server)
    sim._metrics.fill_block(
        times_s=times,
        cooling_load_w=it_power - wax_abs,
        it_power_w=it_power,
        wax_absorption_w=wax_abs,
        mean_temp_c=temp_block.mean(axis=1),
        hot_group_mean_temp_c=temp_block[:, :hs].mean(axis=1),
        cold_group_mean_temp_c=temp_block[:, hs:].mean(axis=1),
        mean_melt_fraction=truth_block.mean(axis=1),
        hot_group_size=hs,
        jobs=counts.sum(axis=1),
        max_cpu_temp_c=junction.max(axis=1),
        temp_map=temp_block,
        melt_map=truth_block,
    )
    metrics_elapsed = clock() - metrics_start

    # ---- sync live state to the post-run reference values ----------------
    air._temp = temp_block[T - 1].copy()
    pcm._h = h_block[T - 1].copy()
    estimator._estimate = est
    cluster._dynamic_w = dyn_block[T - 1].copy()
    cluster._power_w = power_block[T - 1].copy()
    cluster._last_q_wax = q_block[T - 1].copy()
    cluster._last_melt_fraction = truth_block[T - 1].copy()
    cluster._time_s = t_acc
    sched._tick = T
    sim._step_index = T
    sim._last_allocation = (alloc_block[T - 1]
                            .reshape(n, _K).astype(np.int64))
    engine._now = max(engine._now, T * dt - 1e-9)
    engine._dispatched += T

    if prof is not None:
        prof.add("kernel_plan", plan_elapsed)
        prof.add("kernel_fused_step", step_elapsed)
        prof.add("kernel_metrics_write", metrics_elapsed)
        prof.add("dispatch", clock() - setup_start - plan_elapsed
                 - step_elapsed - metrics_elapsed)
        prof.count_ticks(T)
    profile = prof.snapshot() if prof is not None else None
    return sim._metrics.finish(config, sched.name, profile=profile)


def _python_air_pcm(targets, temp0, h_store, temp_block, h_block, alpha,
                    ha, sub_dt, n_sub, mass, cp_s, cp_l, t_melt, h_sol,
                    h_liq) -> None:
    """Vectorized-per-tick spelling of the air + PCM recurrence.

    Same IEEE-754 operation order per element as ``ServerAirModel.step``
    and ``PCMBank.step`` (the commuted operand orders below are bitwise
    exact: IEEE add/multiply are commutative).
    """
    T, n = targets.shape
    t_melt_row = np.full(n, t_melt)
    scratch_a = np.empty(n)
    scratch_b = np.empty(n)
    scratch_c = np.empty(n)
    q_buf = np.empty(n)
    subtract = np.subtract
    multiply = np.multiply
    divide = np.divide
    npadd = np.add
    where = np.where
    target_rows = list(targets)
    temp_rows = list(temp_block)
    h_rows = list(h_block)
    temp = temp0
    h = h_store[0]
    if n_sub == 1:
        below = np.empty(n, dtype=bool)
        twax_buf = np.empty(n)
        less = np.less
        copyto = np.copyto
        arr_max = np.ndarray.max
        for t in range(T):
            trow = temp_rows[t]
            subtract(target_rows[t], temp, out=trow)
            multiply(trow, alpha, out=trow)
            npadd(temp, trow, out=trow)
            temp = trow
            hrow = h_rows[t]
            if arr_max(h) > h_liq:
                # Rare: something fully molten.  Spell out the full
                # three-branch selection exactly as PCMBank does.
                divide(h, cp_s, out=scratch_a)
                subtract(h, h_liq, out=scratch_b)
                divide(scratch_b, cp_l, out=scratch_b)
                npadd(scratch_b, t_melt, out=scratch_b)
                t_wax = where(h < h_sol, scratch_a,
                              where(h > h_liq, scratch_b, t_melt))
            else:
                # Nothing above liquidus: the inner where collapses to
                # t_melt, and masked copyto picks the same bits the
                # two-branch where would.
                less(h, h_sol, out=below)
                divide(h, cp_s, out=scratch_a)
                copyto(twax_buf, t_melt_row)
                copyto(twax_buf, scratch_a, where=below)
                t_wax = twax_buf
            subtract(temp, t_wax, out=q_buf)
            multiply(q_buf, ha, out=q_buf)
            multiply(q_buf, sub_dt, out=q_buf)
            divide(q_buf, mass, out=q_buf)
            npadd(h, q_buf, out=hrow)
            h = hrow
        return
    npmin = np.min
    npmax = np.max
    for t in range(T):
        trow = temp_rows[t]
        subtract(target_rows[t], temp, out=trow)
        multiply(trow, alpha, out=trow)
        npadd(temp, trow, out=trow)
        temp = trow
        hrow = h_rows[t]
        hcur = h
        for sub in range(n_sub):
            dest = hrow if sub == n_sub - 1 else scratch_c
            if npmin(hcur) < h_sol or npmax(hcur) > h_liq:
                divide(hcur, cp_s, out=scratch_a)
                subtract(hcur, h_liq, out=scratch_b)
                divide(scratch_b, cp_l, out=scratch_b)
                npadd(scratch_b, t_melt, out=scratch_b)
                t_wax = where(hcur < h_sol, scratch_a,
                              where(hcur > h_liq, scratch_b, t_melt))
            else:
                # Everything in the melting band reads t_melt exactly.
                t_wax = t_melt_row
            subtract(temp, t_wax, out=q_buf)
            multiply(q_buf, ha, out=q_buf)
            multiply(q_buf, sub_dt, out=q_buf)
            divide(q_buf, mass, out=q_buf)
            npadd(hcur, q_buf, out=dest)
            hcur = dest
        h = hrow

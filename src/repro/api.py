"""The stable, keyword-only facade over the simulation stack.

Everything a typical study needs is reachable through four calls:

* :func:`run` -- one policy, one cluster, one result;
* :func:`compare` -- several policies on the *same* cluster, with the
  peak-cooling-reduction arithmetic done for you;
* :func:`sweep` -- the grouping-value sweep (Fig. 18 and friends);
* :func:`stress` -- the scenario suite: named stress scenarios x
  policies, metamorphically verified, with a ranked report;
* :func:`datacenter` -- K clusters sharing one cooling plant.

All arguments are keyword-only, and config overrides are accepted
directly -- no need to build a :class:`~repro.config.SimulationConfig`
first::

    from repro import api

    result = api.run(policy="vmt-wa", num_servers=100, gv=22.0,
                     telemetry="runs/")
    duel = api.compare(policies=("vmt-ta", "round-robin"),
                       num_servers=100)
    print(f"{duel.peak_reduction('vmt-ta') * 100:.1f}% peak reduction")

Passing a prebuilt ``config=`` is the escape hatch for everything the
shortcuts do not cover (fault scenarios, custom wax, trace shape); the
shortcut keywords and ``config=`` are mutually exclusive so a call site
can never silently half-override a config.

Every function accepts ``telemetry=`` (a directory or
:class:`~repro.obs.telemetry.Telemetry`): runs then write JSONL traces,
per-tick metric columns, and ledger manifests there without changing a
single simulated bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .analysis.sweep import SweepResult, gv_sweep
from .cluster.metrics import SimulationResult
from .cluster.multi import DatacenterResult, run_datacenter
from .cluster.simulation import run_simulation
from .config import SimulationConfig, paper_cluster_config
from .core.policies import SCHEDULER_NAMES, make_scheduler
from .errors import ConfigurationError
from .obs.telemetry import TelemetryLike, telemetry_directory
from .perf.runner import ExperimentRunner, RunSpec
from .workloads.trace import TraceMatrix

__all__ = ["API_VERSION", "Comparison", "run", "compare", "sweep",
           "stress", "datacenter", "live_run", "fleet_run"]

#: The frozen public-API version.  Everything exported here (and the
#: ``to_json`` schemas of :class:`Comparison`,
#: :class:`~repro.analysis.sweep.SweepResult`, and
#: :class:`~repro.scenarios.suite.SuiteReport`) is stable within a
#: major version: fields may be added, never renamed or removed.  The
#: HTTP layer (:mod:`repro.serve`) serves this surface under ``/v1/``.
API_VERSION = "1.0"


def _build_config(config: Optional[SimulationConfig], *,
                  num_servers: Optional[int], gv: Optional[float],
                  seed: Optional[int], inlet_stdev_c: Optional[float],
                  wax_threshold: Optional[float]) -> SimulationConfig:
    """Resolve ``config=`` vs the shortcut keywords (mutually exclusive)."""
    shortcuts = {"num_servers": num_servers, "gv": gv, "seed": seed,
                 "inlet_stdev_c": inlet_stdev_c,
                 "wax_threshold": wax_threshold}
    given = [name for name, value in shortcuts.items() if value is not None]
    if config is not None:
        if given:
            raise ConfigurationError(
                f"pass either config= or the shortcut keywords "
                f"({', '.join(given)}), not both")
        return config
    return paper_cluster_config(
        num_servers=num_servers if num_servers is not None else 100,
        grouping_value=gv if gv is not None else 22.0,
        seed=seed if seed is not None else 7,
        inlet_stdev_c=inlet_stdev_c if inlet_stdev_c is not None else 0.0,
        wax_threshold=wax_threshold if wax_threshold is not None else 0.98)


def _check_policy(policy: str) -> str:
    if policy not in SCHEDULER_NAMES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from "
            f"{', '.join(SCHEDULER_NAMES)}")
    return policy


def run(*, policy: Optional[str] = None,
        config: Optional[SimulationConfig] = None,
        num_servers: Optional[int] = None, gv: Optional[float] = None,
        seed: Optional[int] = None, inlet_stdev_c: Optional[float] = None,
        wax_threshold: Optional[float] = None,
        trace: Optional[TraceMatrix] = None, record_heatmaps: bool = True,
        telemetry: TelemetryLike = None,
        checks: Optional[str] = None,
        backend: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume_from: Optional[str] = None) -> SimulationResult:
    """Run one policy on one cluster and return its result.

    Shortcut defaults reproduce the README quickstart: 100 servers,
    GV=22, seed 7, noise-free inlets, wax threshold 0.98.
    ``checks`` attaches the invariant sanitizer ("off" | "cheap" |
    "full"); ``None`` defers to the ``REPRO_CHECKS`` environment
    variable.  The sanitizer only reads state, so results are
    bit-identical at every level.  ``backend`` selects the tick engine
    ("reference" | "fast"; ``None`` defers to ``REPRO_BACKEND``) --
    the fast engine returns bit-identical results.

    ``checkpoint_every=N`` with ``checkpoint_dir=`` writes a snapshot
    every N completed ticks; ``resume_from=`` continues a run from such
    a snapshot (its config, policy, and trace come from the snapshot, so
    those keywords must then be omitted -- except ``policy``, which, if
    given, must match the snapshot's).  A resumed run is bit-identical
    to the straight-through run: same ``fingerprint()``.
    """
    if resume_from is not None:
        if config is not None or trace is not None:
            raise ConfigurationError(
                "resume_from= carries its own config and trace; do not "
                "pass config= or trace= alongside it")
        shortcuts = {"num_servers": num_servers, "gv": gv, "seed": seed,
                     "inlet_stdev_c": inlet_stdev_c,
                     "wax_threshold": wax_threshold}
        given = [k for k, v in shortcuts.items() if v is not None]
        if given:
            raise ConfigurationError(
                f"resume_from= carries its own config; do not pass "
                f"shortcut keywords ({', '.join(given)}) alongside it")
        from .state import load_snapshot, restore_simulation
        snapshot = load_snapshot(resume_from)
        if policy is not None and policy != snapshot.policy:
            raise ConfigurationError(
                f"snapshot {resume_from} was taken under policy "
                f"{snapshot.policy!r}, not {policy!r}")
        sim = restore_simulation(snapshot, telemetry=telemetry,
                                 checks=checks, backend=backend,
                                 checkpoint_every=checkpoint_every,
                                 checkpoint_dir=checkpoint_dir)
        return sim.run()
    if policy is None:
        raise ConfigurationError(
            "policy= is required (it is optional only with resume_from=)")
    _check_policy(policy)
    resolved = _build_config(config, num_servers=num_servers, gv=gv,
                             seed=seed, inlet_stdev_c=inlet_stdev_c,
                             wax_threshold=wax_threshold)
    return run_simulation(resolved, make_scheduler(policy, resolved),
                          trace=trace, record_heatmaps=record_heatmaps,
                          telemetry=telemetry, checks=checks,
                          backend=backend,
                          checkpoint_every=checkpoint_every,
                          checkpoint_dir=checkpoint_dir)


@dataclass(frozen=True)
class Comparison:
    """Results of several policies on the same cluster configuration."""

    config: SimulationConfig
    results: Dict[str, SimulationResult]

    def __getitem__(self, policy: str) -> SimulationResult:
        return self.results[policy]

    @property
    def policies(self) -> Tuple[str, ...]:
        """The compared policies, in the order they were requested."""
        return tuple(self.results)

    def peak_reduction(self, policy: str,
                       baseline: str = "round-robin") -> float:
        """Fractional peak-cooling-load reduction of one policy vs another."""
        for name in (policy, baseline):
            if name not in self.results:
                raise ConfigurationError(
                    f"{name!r} was not part of this comparison "
                    f"(ran: {', '.join(self.results)})")
        return self.results[policy].peak_reduction_vs(
            self.results[baseline])

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable dict that round-trips losslessly.

        Policy order is preserved; each embedded result carries its full
        series (see :meth:`SimulationResult.to_json`), so fingerprints
        survive the round trip bit-identically.
        """
        return {
            "schema": "repro.comparison/1",
            "config": self.config.to_dict(),
            "policies": list(self.results),
            "results": {policy: result.to_json()
                        for policy, result in self.results.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Comparison":
        """Rebuild a comparison from :meth:`to_json` output."""
        from .errors import SimulationError
        if payload.get("schema") != "repro.comparison/1":
            raise SimulationError(
                f"not a repro.comparison/1 payload "
                f"(schema={payload.get('schema')!r})")
        results = {policy: SimulationResult.from_json(
                       payload["results"][policy])
                   for policy in payload["policies"]}
        return cls(config=SimulationConfig.from_dict(payload["config"]),
                   results=results)


def compare(*, policies: Sequence[str] = ("vmt-ta", "round-robin"),
            config: Optional[SimulationConfig] = None,
            num_servers: Optional[int] = None, gv: Optional[float] = None,
            seed: Optional[int] = None,
            inlet_stdev_c: Optional[float] = None,
            wax_threshold: Optional[float] = None,
            record_heatmaps: bool = False,
            max_workers: Optional[int] = 1,
            workers_mode: str = "process",
            telemetry: TelemetryLike = None,
            checks: Optional[str] = None,
            backend: Optional[str] = None) -> Comparison:
    """Run several policies against the identical cluster and trace.

    Every policy sees the same config and the same generated trace, so
    :meth:`Comparison.peak_reduction` is an apples-to-apples number.
    ``backend``/``workers_mode`` mirror :func:`sweep`: the tick engine
    per run and the pool flavor ("process" | "thread") -- every
    combination is bit-identical.
    """
    policies = tuple(dict.fromkeys(policies))  # dedupe, keep order
    if not policies:
        raise ConfigurationError("compare needs at least one policy")
    for policy in policies:
        _check_policy(policy)
    resolved = _build_config(config, num_servers=num_servers, gv=gv,
                             seed=seed, inlet_stdev_c=inlet_stdev_c,
                             wax_threshold=wax_threshold)
    telemetry_dir = telemetry_directory(telemetry)
    specs = [RunSpec(resolved, policy, record_heatmaps=record_heatmaps,
                     telemetry_dir=telemetry_dir, checks=checks,
                     backend=backend)
             for policy in policies]
    results = ExperimentRunner(max_workers, workers_mode).run(specs)
    return Comparison(config=resolved,
                      results=dict(zip(policies, results)))


def sweep(*, grouping_values: Sequence[float],
          policies: Sequence[str] = ("vmt-ta", "vmt-wa"),
          num_servers: int = 100, seed: int = 7,
          inlet_stdev_c: float = 0.0, wax_threshold: float = 0.98,
          max_workers: Optional[int] = 1,
          workers_mode: str = "process",
          telemetry: TelemetryLike = None,
          checks: Optional[str] = None,
          backend: Optional[str] = None) -> SweepResult:
    """Sweep the grouping value against a round-robin baseline."""
    for policy in policies:
        _check_policy(policy)
    return gv_sweep(grouping_values, policies=tuple(policies),
                    num_servers=num_servers, seed=seed,
                    inlet_stdev_c=inlet_stdev_c,
                    wax_threshold=wax_threshold, max_workers=max_workers,
                    workers_mode=workers_mode,
                    telemetry=telemetry, checks=checks, backend=backend)


def stress(*, scenarios: Optional[Sequence] = None,
           policies: Optional[Sequence[str]] = None,
           num_servers: Optional[int] = None,
           duration_hours: Optional[float] = None,
           seed: Optional[int] = None,
           max_workers: Optional[int] = 1,
           timeout_s: Optional[float] = None,
           telemetry: TelemetryLike = None,
           checks: Optional[str] = None):
    """Run the stress-scenario suite and return its ranked report.

    ``scenarios`` accepts library names and/or ad-hoc
    :class:`~repro.scenarios.ScenarioSpec` objects (``None`` = the
    whole library); ``policies`` defaults to all five schedulers.  Each
    scenario runs next to a matched unstressed baseline and the
    verifier's metamorphic properties are checked; failed runs come
    back as structured rows, never an aborted suite.  See
    :func:`repro.scenarios.run_suite` for the full knob set.
    """
    from .scenarios import run_suite
    if policies is not None:
        for policy in policies:
            _check_policy(policy)
    return run_suite(scenarios=scenarios, policies=policies,
                     num_servers=num_servers,
                     duration_hours=duration_hours, seed=seed,
                     max_workers=max_workers, timeout_s=timeout_s,
                     telemetry_dir=telemetry_directory(telemetry),
                     checks=checks)


def live_run(*, policy: Optional[str] = None,
             config: Optional[SimulationConfig] = None,
             num_servers: Optional[int] = None,
             gv: Optional[float] = None, seed: Optional[int] = None,
             inlet_stdev_c: Optional[float] = None,
             wax_threshold: Optional[float] = None,
             feed="replay", feed_seed: Optional[int] = None,
             forecaster: str = "oracle",
             decision_every: Optional[int] = None,
             mpc: bool = False, mpc_horizon_steps: int = 60,
             mpc_workers: int = 4,
             speedup: Optional[float] = None,
             record_heatmaps: bool = True,
             telemetry: TelemetryLike = None,
             checks: Optional[str] = None,
             timeout_s: Optional[float] = None,
             checkpoint_every: Optional[int] = None,
             checkpoint_dir: Optional[str] = None,
             resume_from: Optional[str] = None):
    """Drive one policy from a streaming feed with no lookahead.

    ``feed`` is a kind name (``"replay"`` replays the exact trace the
    batch run would generate; ``"synthetic"`` is a seeded open-loop
    arrival process) or any feed object from :mod:`repro.live`.
    ``forecaster`` supplies the grouping-value estimate the scheduler is
    retargeted with at each decision boundary (``"oracle"`` |
    ``"last-value"``); ``mpc=True`` instead races candidate GVs through
    fast-backend shadow simulations forked from the live snapshot.
    ``speedup`` paces ingestion against the wall clock (e.g. ``60.0``
    plays one simulated minute per real second); ``None`` runs
    accelerated, as fast as rows can be consumed.

    A live run with the oracle forecaster over a replay feed is
    bit-identical to :func:`run` on the same config -- that differential
    is this subsystem's honesty proof.  Returns a
    :class:`~repro.live.runner.LiveRunReport` (``.result`` is the usual
    :class:`~repro.cluster.metrics.SimulationResult`).
    """
    from .live import (DEFAULT_DECISION_EVERY, LiveRunner, MPCController,
                       make_feed, resume_live)
    from .perf.runner import Deadline

    deadline = Deadline.of(timeout_s)
    cadence = (DEFAULT_DECISION_EVERY if decision_every is None
               else decision_every)
    if resume_from is not None:
        if config is not None or policy is not None:
            raise ConfigurationError(
                "resume_from= carries its own config and policy; do not "
                "pass config= or policy= alongside it")
        snapshot_config = None
    else:
        if policy is None:
            raise ConfigurationError(
                "policy= is required (optional only with resume_from=)")
        _check_policy(policy)
        snapshot_config = _build_config(
            config, num_servers=num_servers, gv=gv, seed=seed,
            inlet_stdev_c=inlet_stdev_c, wax_threshold=wax_threshold)

    def _resolve_feed(cfg):
        if isinstance(feed, str):
            return make_feed(feed, cfg, seed=feed_seed)
        return feed

    def _controller(cfg):
        if not mpc:
            return None
        return MPCController(cfg, horizon_steps=mpc_horizon_steps,
                             max_workers=mpc_workers)

    if resume_from is not None:
        from .state import load_snapshot
        snapshot = load_snapshot(resume_from)
        cfg = SimulationConfig.from_dict(snapshot.config)
        runner = resume_live(
            snapshot, _resolve_feed(cfg), forecaster=forecaster,
            decision_every=cadence, mpc=_controller(cfg),
            telemetry=telemetry, checks=checks,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir, deadline=deadline)
        return runner.run()

    runner = LiveRunner(
        snapshot_config, policy, _resolve_feed(snapshot_config),
        forecaster=forecaster, decision_every=cadence,
        mpc=_controller(snapshot_config), telemetry=telemetry,
        checks=checks, record_heatmaps=record_heatmaps,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir, deadline=deadline,
        speedup=speedup)
    return runner.run()


def fleet_run(*, fleet=None, num_sites: Optional[int] = None,
              policy: str = "independent",
              scheduler: str = "round-robin",
              config: Optional[SimulationConfig] = None,
              num_servers: Optional[int] = None,
              gv: Optional[float] = None, seed: Optional[int] = None,
              stagger_hours: float = 0.0, demo: bool = False,
              max_workers: Optional[int] = 1,
              record_heatmaps: bool = False,
              telemetry: TelemetryLike = None,
              checks: Optional[str] = None):
    """Simulate a (possibly heterogeneous) multi-datacenter fleet.

    Three entry shapes, in precedence order:

    * ``fleet=`` -- a full :class:`~repro.fleet.FleetSpec` (site table,
      hardware classes, tariffs, batteries), the escape hatch;
    * ``demo=True`` -- the documented 3-site heterogeneous reference
      fleet (CPU+GPU classes, two tariffs including a wrapped
      overnight-peak one, a battery site) on the resolved base config;
    * ``num_sites=N`` -- a homogeneous fleet, whose per-site results
      are *fingerprint-identical* to :func:`datacenter` with
      ``num_clusters=N``.

    ``policy`` is the fleet-level strategy (a
    :data:`~repro.fleet.FLEET_POLICIES` key: ``"independent"``,
    ``"price-arbitrage"``, ``"battery-co-schedule"``,
    ``"thermal-placement"``, ``"latency-spill"``); ``scheduler`` is the
    per-site VMT scheduler name.  Returns a
    :class:`~repro.fleet.FleetResult` with per-site cost and carbon
    accounts next to the usual physics series.
    """
    from .fleet import FleetSpec, demo_fleet, run_fleet
    _check_policy(scheduler)
    if fleet is not None:
        if num_sites is not None or demo:
            raise ConfigurationError(
                "pass either fleet= or num_sites=/demo=, not both")
        spec = fleet
    else:
        resolved = _build_config(config, num_servers=num_servers,
                                 gv=gv, seed=seed, inlet_stdev_c=None,
                                 wax_threshold=None)
        if demo:
            if num_sites is not None:
                raise ConfigurationError(
                    "demo=True builds its own 3 sites; do not pass "
                    "num_sites= alongside it")
            spec = demo_fleet(resolved, policies=(scheduler,),
                              fleet_policy_name=policy,
                              stagger_hours=stagger_hours)
        else:
            if num_sites is None:
                raise ConfigurationError(
                    "pass fleet=, demo=True, or num_sites=")
            spec = FleetSpec.homogeneous(resolved, num_sites,
                                         policy=scheduler,
                                         stagger_hours=stagger_hours)
            if policy != "independent":
                spec = FleetSpec(sites=spec.sites,
                                 base_config=spec.base_config,
                                 policies=spec.policies,
                                 policy=policy,
                                 stagger_hours=stagger_hours)
    return run_fleet(spec, max_workers=max_workers,
                     record_heatmaps=record_heatmaps,
                     telemetry=telemetry, checks=checks)


def datacenter(*, num_clusters: int, policy: str = "round-robin",
               config: Optional[SimulationConfig] = None,
               num_servers: Optional[int] = None,
               gv: Optional[float] = None, seed: Optional[int] = None,
               stagger_hours: float = 0.0,
               max_workers: Optional[int] = 1,
               record_heatmaps: bool = False,
               telemetry: TelemetryLike = None) -> DatacenterResult:
    """Simulate ``num_clusters`` clusters sharing one cooling plant."""
    _check_policy(policy)
    if num_clusters <= 0:
        raise ConfigurationError("need at least one cluster")
    resolved = _build_config(config, num_servers=num_servers, gv=gv,
                             seed=seed, inlet_stdev_c=None,
                             wax_threshold=None)
    return run_datacenter(resolved, num_clusters, policy=policy,
                          stagger_hours=stagger_hours,
                          max_workers=max_workers,
                          record_heatmaps=record_heatmaps,
                          telemetry=telemetry)

"""Cross-site demand routing with network-latency-aware load spill.

Routing happens *before* simulation, on the per-site demand traces:
moving a job between sites is a front-end placement decision, so the
fleet router rewrites the (steps x workloads) demand matrices and each
site then simulates its routed trace with its own scheduler.  That
keeps the per-site physics engine untouched and the routed run exactly
as deterministic as an unrouted one.

The router is deliberately greedy and integral: at each tick it picks
the worst donor and the best receiver by the policy's score, respects
the round-trip latency budget (source + destination backbone latency),
moves at most ``spill_fraction`` of the donor's demand, and never
overfills a receiver past its core capacity.  Per-tick, per-workload
job conservation is an invariant the fleet verifier re-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..workloads.trace import TraceMatrix

#: Scores closer than this are not worth a cross-site move.
SCORE_EPSILON = 1e-9


@dataclass(frozen=True)
class RoutingPlan:
    """What the router did: routed traces plus an audit trail."""

    traces: Tuple[TraceMatrix, ...]
    #: Total job-cores moved across all ticks (0 = routing was a no-op).
    moved_job_cores: int
    #: Per-site net job-cores received (negative = net donor), summed
    #: over the whole horizon.  Always sums to zero.
    net_received: Tuple[int, ...]
    #: Fraction of ticks where at least one move happened.
    active_tick_fraction: float


def pair_latency_ms(sites_latency_ms: Sequence[float],
                    src: int, dst: int) -> float:
    """Round-trip cost of routing a job from ``src`` to ``dst``.

    Both sites sit on a shared backbone, so the path pays each end's
    access latency once.
    """
    return float(sites_latency_ms[src] + sites_latency_ms[dst])


def route_traces(traces: Sequence[TraceMatrix],
                 scores: np.ndarray, *,
                 sites_latency_ms: Sequence[float],
                 latency_budget_ms: float,
                 spill_fraction: float,
                 capacities: Optional[Sequence[int]] = None
                 ) -> RoutingPlan:
    """Shift demand between sites, tick by tick, along a score field.

    ``scores`` is a (steps x sites) array where *higher* means "shed
    load" (price in peak, hot ambient, high utilization); at each tick
    the router moves jobs from the highest-scoring site with demand to
    the lowest-scoring site with headroom, if the pair's round-trip
    latency fits the budget and the score gap is material.

    Returns a :class:`RoutingPlan`; the input traces are never
    mutated (they are read-only by construction).
    """
    num_sites = len(traces)
    if num_sites == 0:
        raise ConfigurationError("need at least one trace to route")
    steps = traces[0].num_steps
    step_s = traces[0].step_seconds
    for trace in traces:
        if trace.num_steps != steps:
            raise ConfigurationError(
                "all site traces must share the same horizon")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (steps, num_sites):
        raise ConfigurationError(
            f"scores must be (steps, sites) = ({steps}, {num_sites}); "
            f"got {scores.shape}")
    if capacities is None:
        capacities = [trace.total_cores for trace in traces]

    counts = [trace.counts for trace in traces]  # writable copies
    moved_total = 0
    net = [0] * num_sites
    active_ticks = 0

    order = np.argsort(scores, axis=1)  # ascending: receivers first
    for tick in range(steps):
        tick_order = order[tick]
        donor = int(tick_order[-1])
        donor_total = int(counts[donor][tick].sum())
        if donor_total == 0:
            continue
        budget = int(np.floor(spill_fraction * donor_total))
        if budget == 0:
            continue
        moved_this_tick = 0
        for receiver in tick_order[:-1]:
            receiver = int(receiver)
            if budget <= 0:
                break
            gap = scores[tick, donor] - scores[tick, receiver]
            if gap <= SCORE_EPSILON:
                break  # order is sorted; no better receiver follows
            if pair_latency_ms(sites_latency_ms, donor, receiver) \
                    > latency_budget_ms:
                continue
            headroom = capacities[receiver] \
                - int(counts[receiver][tick].sum())
            if headroom <= 0:
                continue
            movable = min(budget, headroom)
            # Take from the donor's largest workload columns first so a
            # single move stays integral and deterministic.
            columns = np.argsort(counts[donor][tick])[::-1]
            for col in columns:
                if movable <= 0:
                    break
                take = min(int(counts[donor][tick][col]), movable)
                if take <= 0:
                    continue
                counts[donor][tick][col] -= take
                counts[receiver][tick][col] += take
                movable -= take
                budget -= take
                moved_this_tick += take
                net[donor] -= take
                net[receiver] += take
        if moved_this_tick:
            moved_total += moved_this_tick
            active_ticks += 1

    routed = tuple(
        TraceMatrix(counts[index], step_s, traces[index].total_cores)
        for index in range(num_sites))
    return RoutingPlan(
        traces=routed, moved_job_cores=moved_total,
        net_received=tuple(net),
        active_tick_fraction=active_ticks / steps if steps else 0.0)


def routing_scores(mode: str, traces: Sequence[TraceMatrix], *,
                   tariffs: Sequence,
                   ambients_c: Sequence[np.ndarray]) -> np.ndarray:
    """The (steps x sites) score field a routing mode ranks sites by.

    * ``latency`` -- utilization: spill away from the busiest site (the
      latency budget then decides who may absorb it).
    * ``thermal`` -- site condenser ambient: hot sites shed, cool sites
      absorb, so the fleet's aggregate chiller COP improves.
    * ``price`` -- the site's *current* tariff rate: in-peak sites shed
      toward off-peak sites (timezone stagger and wrapped overnight
      windows make this a real arbitrage).
    """
    steps = traces[0].num_steps
    num_sites = len(traces)
    scores = np.zeros((steps, num_sites), dtype=np.float64)
    if mode == "latency":
        for index, trace in enumerate(traces):
            scores[:, index] = trace.utilization()
    elif mode == "thermal":
        for index in range(num_sites):
            scores[:, index] = np.asarray(ambients_c[index],
                                          dtype=np.float64)
    elif mode == "price":
        times_h = traces[0].times_hours
        for index in range(num_sites):
            scores[:, index] = tariffs[index].rate_usd_per_kwh(times_h)
    else:
        raise ConfigurationError(
            f"no score field for routing mode {mode!r}")
    return scores


def conservation_violation(before: Sequence[TraceMatrix],
                           after: Sequence[TraceMatrix]) -> Optional[str]:
    """Check per-tick, per-workload job conservation across the fleet.

    Returns ``None`` when the routed traces redistribute exactly the
    demand the input traces carried, or a description of the first
    violation -- the fleet verifier turns that into an
    :class:`~repro.errors.InvariantViolation`.
    """
    total_before = sum(trace.counts for trace in before)
    total_after = sum(trace.counts for trace in after)
    if not np.array_equal(total_before, total_after):
        bad = np.argwhere(total_before != total_after)
        tick, workload = (int(bad[0][0]), int(bad[0][1])) if len(bad) \
            else (0, 0)
        return (f"routing broke job conservation at tick {tick}, "
                f"workload column {workload}: "
                f"{int(total_before[tick, workload])} job-cores in, "
                f"{int(total_after[tick, workload])} out")
    for index, trace in enumerate(after):
        counts = trace.counts
        if (counts < 0).any():
            return f"site {index} routed trace went negative"
        if (counts.sum(axis=1) > trace.total_cores).any():
            return (f"site {index} routed trace exceeds its "
                    f"{trace.total_cores}-core capacity")
    return None


def routed_site_traces(mode: str, traces: List[TraceMatrix], *,
                       tariffs: Sequence,
                       ambients_c: Sequence[np.ndarray],
                       sites_latency_ms: Sequence[float],
                       latency_budget_ms: float,
                       spill_fraction: float) -> RoutingPlan:
    """Route a fleet's traces under a named mode (``"none"`` = no-op)."""
    if mode == "none":
        return RoutingPlan(traces=tuple(traces), moved_job_cores=0,
                           net_received=tuple(0 for _ in traces),
                           active_tick_fraction=0.0)
    scores = routing_scores(mode, traces, tariffs=tariffs,
                            ambients_c=ambients_c)
    return route_traces(traces, scores,
                        sites_latency_ms=sites_latency_ms,
                        latency_budget_ms=latency_budget_ms,
                        spill_fraction=spill_fraction)

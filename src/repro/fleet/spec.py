"""Fleet topology: named sites, hardware classes, markets, batteries.

The paper evaluates 1,000 *identical* CPU servers in one room and
scales the result "multiplied linearly" (Section IV-E).  A real
operator runs a *fleet*: heterogeneous sites, each with its own
hardware class, weather, chiller plant, electricity tariff, grid
carbon mix, and (sometimes) battery storage.  :class:`FleetSpec`
describes that topology declaratively; :mod:`repro.fleet.run`
executes it.

The crucial backwards-compatibility contract: a *homogeneous* fleet
(no per-site overrides, fleet policy ``"independent"``) must be
bit-identical to :func:`repro.cluster.multi.run_datacenter` -- same
derived seeds, same stagger, same traces, same fingerprints.  The
golden harness therefore remains the oracle for the fleet layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..config import (AmbientConfig, BatteryConfig, SimulationConfig,
                      hardware_class)
from ..errors import ConfigurationError
from ..tco.energy import CarbonIntensityCurve, ElectricityTariff
from ..thermal.plant import ChillerPlant

#: Cross-site demand routing modes (see :mod:`repro.fleet.router`).
ROUTING_MODES = ("none", "latency", "thermal", "price")

#: Battery dispatch modes (see :mod:`repro.fleet.battery`).
BATTERY_MODES = ("idle", "arbitrage", "peak-shave")


@dataclass(frozen=True)
class FleetPolicy:
    """One named fleet-level strategy: a routing mode x a battery mode.

    Site-local VMT scheduling (the paper's contribution) is orthogonal
    and configured per site; the fleet policy decides what the *fleet*
    does on top of it.
    """

    routing: str
    battery_mode: str

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on unknown modes."""
        if self.routing not in ROUTING_MODES:
            raise ConfigurationError(
                f"routing must be one of {ROUTING_MODES}, "
                f"got {self.routing!r}")
        if self.battery_mode not in BATTERY_MODES:
            raise ConfigurationError(
                f"battery mode must be one of {BATTERY_MODES}, "
                f"got {self.battery_mode!r}")


#: The fleet-level policy table.  ``independent`` is the homogeneous
#: default (no routing, batteries idle) and stays bit-identical to
#: ``run_datacenter``; the other entries are the strategies the issue
#: names: price arbitrage (route work toward cheap power and trade the
#: battery against the tariff), battery co-scheduling (wax shifts the
#: thermal peak while the battery shifts the electrical one), and
#: thermal-aware heterogeneous placement (route work toward cool sites
#: where the chiller COP is best).
FLEET_POLICIES: Dict[str, FleetPolicy] = {
    "independent": FleetPolicy(routing="none", battery_mode="idle"),
    "latency-spill": FleetPolicy(routing="latency", battery_mode="idle"),
    "price-arbitrage": FleetPolicy(routing="price",
                                   battery_mode="arbitrage"),
    "battery-co-schedule": FleetPolicy(routing="none",
                                       battery_mode="arbitrage"),
    "thermal-placement": FleetPolicy(routing="thermal",
                                     battery_mode="idle"),
}


def fleet_policy(name: str) -> FleetPolicy:
    """Look up a fleet policy, with a helpful error on a miss."""
    try:
        return FLEET_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(FLEET_POLICIES))
        raise ConfigurationError(
            f"unknown fleet policy {name!r}; known: {known}") from None


@dataclass(frozen=True)
class SiteSpec:
    """One datacenter site in the fleet.

    Every override defaults to "inherit the fleet's base": a site built
    as ``SiteSpec(name="x")`` changes nothing about the simulation, so
    a fleet of such sites reproduces the homogeneous datacenter
    exactly.  ``hardware`` names a row of the
    :data:`~repro.config.HARDWARE_CLASSES` table and swaps the site's
    server power curve / core count and PCM loadout; ``config`` swaps
    the entire simulation configuration; ``ambient`` the weather
    profile.  Market coupling (``tariff``, ``carbon``), the cooling
    plant, and battery storage are per-site by nature.
    """

    name: str
    #: Hardware class name from the table; ``None`` inherits the base
    #: config's server/wax untouched (a named default like ``"cpu"``
    #: would silently clobber a custom base config).
    hardware: Optional[str] = None
    #: Full per-site :class:`SimulationConfig`; ``None`` = fleet base.
    config: Optional[SimulationConfig] = None
    #: Weather override; ``None`` = whatever the site's config carries.
    ambient: Optional[AmbientConfig] = None
    #: Cooling plant; ``None`` sizes a plant at the site's own peak
    #: cooling load after simulation (never saturated by construction).
    plant: Optional[ChillerPlant] = None
    tariff: ElectricityTariff = field(default_factory=ElectricityTariff)
    carbon: CarbonIntensityCurve = field(
        default_factory=CarbonIntensityCurve)
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    #: One-way network latency from this site to the fleet backbone,
    #: milliseconds; a routed job pays source + destination latency.
    latency_ms: float = 0.0
    #: Mean outdoor (condenser) ambient; the site's weather profile
    #: swings around this base for the chiller COP derate.
    outdoor_base_c: float = 25.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if not self.name:
            raise ConfigurationError("site needs a non-empty name")
        if self.hardware is not None:
            hardware_class(self.hardware)  # raises on unknown name
        if self.config is not None:
            self.config.validate()
        if self.ambient is not None:
            self.ambient.validate()
        self.battery.validate()
        if self.latency_ms < 0:
            raise ConfigurationError("site latency must be >= 0")
        if not -60.0 <= self.outdoor_base_c <= 60.0:
            raise ConfigurationError(
                "outdoor ambient base must be within +-60 deg C")


@dataclass(frozen=True)
class FleetSpec:
    """A fleet of sites plus the fleet-level strategy knobs.

    ``policies`` mirrors :class:`MultiClusterSimulation`: one VMT
    scheduler name for the whole fleet or one per site.  ``policy``
    (the *fleet* policy) picks a row of :data:`FLEET_POLICIES`.
    ``stagger_hours`` shifts site ``k``'s trace by ``k * stagger``
    (wrapping), exactly as the multi-cluster study does.
    """

    sites: Tuple[SiteSpec, ...]
    base_config: SimulationConfig = field(
        default_factory=SimulationConfig)
    policies: Tuple[str, ...] = ("round-robin",)
    policy: str = "independent"
    stagger_hours: float = 0.0
    #: Round-trip latency budget a routed job tolerates, milliseconds.
    latency_budget_ms: float = 50.0
    #: Largest fraction of a donor site's demand the router may move
    #: away in one tick.
    spill_fraction: float = 0.25

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "policies", tuple(self.policies))

    @property
    def num_sites(self) -> int:
        """How many sites the fleet runs."""
        return len(self.sites)

    @property
    def fleet_policy(self) -> FleetPolicy:
        """The resolved fleet-level strategy."""
        return fleet_policy(self.policy)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical values."""
        if not self.sites:
            raise ConfigurationError("fleet needs at least one site")
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"site names must be unique, got {names}")
        for site in self.sites:
            site.validate()
        self.base_config.validate()
        if len(self.policies) not in (1, len(self.sites)):
            raise ConfigurationError(
                "pass one scheduler policy or one per site")
        self.fleet_policy.validate()
        if self.latency_budget_ms < 0:
            raise ConfigurationError("latency budget must be >= 0")
        if not 0.0 <= self.spill_fraction <= 1.0:
            raise ConfigurationError(
                "spill fraction must be in [0, 1]")

    def scheduler_for(self, index: int) -> str:
        """The VMT scheduler name site ``index`` runs."""
        if len(self.policies) == 1:
            return self.policies[0]
        return self.policies[index]

    def site_config(self, index: int) -> SimulationConfig:
        """Site ``index``'s fully resolved simulation configuration.

        Override order: site config (or fleet base), then hardware
        class, then ambient profile, then the index-derived seed.  The
        seed derivation (``base seed + index``) matches
        :class:`~repro.cluster.multi.MultiClusterSimulation` exactly --
        it is what keeps the homogeneous fleet bit-identical to
        ``run_datacenter``.
        """
        site = self.sites[index]
        config = site.config if site.config is not None \
            else self.base_config
        if site.hardware is not None:
            config = hardware_class(site.hardware).apply_to(config)
        if site.ambient is not None:
            config = config.replace(ambient=site.ambient)
        return config.replace(seed=config.seed + index)

    def trace_shift_hours(self, index: int) -> float:
        """Trace stagger for site ``index`` (wrapping, as documented)."""
        return index * self.stagger_hours

    @classmethod
    def homogeneous(cls, config: SimulationConfig, num_sites: int, *,
                    policy: str = "round-robin",
                    stagger_hours: float = 0.0) -> "FleetSpec":
        """The fleet equivalent of ``run_datacenter``'s argument list.

        ``num_sites`` identical sites, no market/battery/routing
        coupling -- the configuration whose results are fingerprint-
        identical to the multi-cluster datacenter study.
        """
        if num_sites <= 0:
            raise ConfigurationError("need at least one site")
        sites = tuple(SiteSpec(name=f"site-{index}")
                      for index in range(num_sites))
        return cls(sites=sites, base_config=config,
                   policies=(policy,), policy="independent",
                   stagger_hours=stagger_hours)


def demo_fleet(base_config: Optional[SimulationConfig] = None, *,
               policies: Sequence[str] = ("round-robin",),
               fleet_policy_name: str = "price-arbitrage",
               stagger_hours: float = 6.0) -> FleetSpec:
    """The 3-site heterogeneous reference fleet the docs and CI run.

    Three sites spanning the interesting axes:

    * ``ashburn`` -- CPU class, US afternoon-peak tariff, warm summer
      ambient, no battery: the paper's cluster dropped into a market.
    * ``reykjavik`` -- GPU class (hotter servers, more wax), *wrapped*
      overnight-peak tariff (the bugfix this PR lands), cool ambient,
      clean grid, and the fleet's battery: the arbitrage play.
    * ``phoenix`` -- CPU class, desert heat wave ambient driving the
      chiller COP derate, dirty evening grid: the site work should
      route *away from*.
    """
    base = base_config if base_config is not None else SimulationConfig()
    sites = (
        SiteSpec(
            name="ashburn",
            hardware="cpu",
            tariff=ElectricityTariff(peak_rate_usd_per_kwh=0.16,
                                     off_peak_rate_usd_per_kwh=0.08,
                                     peak_window_h=(12.0, 22.0)),
            carbon=CarbonIntensityCurve(base_g_per_kwh=380.0,
                                        amplitude_g_per_kwh=60.0),
            ambient=AmbientConfig(diurnal_amplitude_c=2.0),
            latency_ms=5.0,
            outdoor_base_c=28.0,
        ),
        SiteSpec(
            name="reykjavik",
            hardware="gpu",
            tariff=ElectricityTariff(peak_rate_usd_per_kwh=0.14,
                                     off_peak_rate_usd_per_kwh=0.05,
                                     peak_window_h=(22.0, 8.0)),
            carbon=CarbonIntensityCurve(base_g_per_kwh=30.0),
            battery=BatteryConfig(capacity_kwh=500.0,
                                  max_charge_kw=150.0,
                                  max_discharge_kw=150.0),
            ambient=AmbientConfig(diurnal_amplitude_c=1.0),
            latency_ms=20.0,
            outdoor_base_c=10.0,
        ),
        SiteSpec(
            name="phoenix",
            hardware="cpu",
            tariff=ElectricityTariff(peak_rate_usd_per_kwh=0.22,
                                     off_peak_rate_usd_per_kwh=0.09,
                                     peak_window_h=(14.0, 20.0)),
            carbon=CarbonIntensityCurve(base_g_per_kwh=520.0,
                                        amplitude_g_per_kwh=80.0),
            ambient=AmbientConfig(diurnal_amplitude_c=4.0,
                                  diurnal_peak_hour=16.0),
            latency_ms=12.0,
            outdoor_base_c=38.0,
        ),
    )
    return FleetSpec(sites=sites, base_config=base,
                     policies=tuple(policies),
                     policy=fleet_policy_name,
                     stagger_hours=stagger_hours)

"""Fleet run products: per-site accounts and the fleet aggregate.

A :class:`SiteResult` pairs a site's physics run
(:class:`~repro.cluster.metrics.SimulationResult`, fingerprint and
all) with its market outcome: the chiller's electrical draw under the
site's ambient, the battery's dispatch, and the resulting cost and
carbon.  :class:`FleetResult` aggregates the sites the same way
:class:`~repro.cluster.multi.DatacenterResult` aggregates clusters --
and can project itself down to one, so every existing analysis tool
keeps working on fleet output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..cluster.metrics import SimulationResult
from ..cluster.multi import DatacenterResult
from ..errors import SimulationError
from ..tco.energy import CoolingEnergyAccount
from ..thermal.plant import ChillerPlant
from .battery import BatteryDispatch
from .spec import SiteSpec


@dataclass(frozen=True)
class SiteResult:
    """Everything one site produced: physics, power, money, carbon."""

    site: SiteSpec
    result: SimulationResult
    #: The plant that actually priced this site (auto-sized when the
    #: spec left it ``None``).
    plant: ChillerPlant
    #: Cooling-only account (the chiller's share of the bill).
    cooling: CoolingEnergyAccount
    #: Site grid draw after battery action, kW (IT + chiller).
    grid_kw: np.ndarray
    #: Condenser ambient the plant saw, deg C.
    ambient_c: np.ndarray
    battery: BatteryDispatch
    #: Whole-site bill (IT + cooling, after the battery), USD.
    energy_cost_usd: float
    #: Whole-site emissions (IT + cooling, after the battery), kg CO2e.
    carbon_kg: float
    #: Net job-cores routed into (+) or out of (-) this site.
    net_routed_job_cores: int = 0

    @property
    def name(self) -> str:
        """The site's name."""
        return self.site.name

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak thermal cooling load of this site."""
        return float(self.result.cooling_load_w.max())

    @property
    def energy_kwh(self) -> float:
        """Total grid energy the site drew, kWh."""
        dt_h = self.result.config.trace.step_seconds / 3600.0
        return float(self.grid_kw.sum() * dt_h)

    def summary(self) -> Dict[str, Any]:
        """Scalar site summary for reports and the CLI table."""
        return {
            "site": self.name,
            "hardware": self.site.hardware or "base",
            "policy": self.result.scheduler_name,
            "peak_cooling_kw": self.peak_cooling_load_w / 1e3,
            "energy_kwh": self.energy_kwh,
            "energy_cost_usd": self.energy_cost_usd,
            "carbon_kg": self.carbon_kg,
            "overloaded_tick_fraction":
                self.cooling.overloaded_tick_fraction,
            "battery_shifted_kwh": self.battery.shifted_kwh,
            "net_routed_job_cores": self.net_routed_job_cores,
            "fingerprint": self.result.fingerprint(),
        }


@dataclass(frozen=True)
class FleetResult:
    """Aggregated outcome of a fleet run."""

    site_results: Tuple[SiteResult, ...]
    times_s: np.ndarray
    total_cooling_load_w: np.ndarray
    #: Fleet policy the run executed (a FLEET_POLICIES key).
    policy: str
    #: Job-cores the router moved across sites (0 = independent sites).
    moved_job_cores: int = 0

    @property
    def num_sites(self) -> int:
        """How many sites the fleet ran."""
        return len(self.site_results)

    @property
    def sites(self) -> Tuple[str, ...]:
        """Site names, in fleet order."""
        return tuple(s.name for s in self.site_results)

    @property
    def cluster_results(self) -> List[SimulationResult]:
        """Per-site physics results (DatacenterResult-compatible)."""
        return [s.result for s in self.site_results]

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak of the fleet-wide cooling load."""
        return float(self.total_cooling_load_w.max())

    @property
    def total_energy_cost_usd(self) -> float:
        """Fleet electricity bill (IT + cooling, after batteries)."""
        return float(sum(s.energy_cost_usd for s in self.site_results))

    @property
    def total_carbon_kg(self) -> float:
        """Fleet emissions (IT + cooling, after batteries)."""
        return float(sum(s.carbon_kg for s in self.site_results))

    @property
    def total_energy_kwh(self) -> float:
        """Fleet grid energy, kWh."""
        return float(sum(s.energy_kwh for s in self.site_results))

    def site(self, name: str) -> SiteResult:
        """Look up one site's result by name."""
        for entry in self.site_results:
            if entry.name == name:
                return entry
        raise SimulationError(
            f"no site named {name!r} in fleet result "
            f"(sites: {', '.join(self.sites)})")

    def to_datacenter_result(self) -> DatacenterResult:
        """Project down to the multi-cluster result shape.

        Every analysis/plotting tool written against
        :class:`DatacenterResult` works on fleet output through this --
        and for a homogeneous fleet the projection is *bit-identical*
        to what ``run_datacenter`` returns.
        """
        return DatacenterResult(
            cluster_results=self.cluster_results,
            times_s=self.times_s,
            total_cooling_load_w=self.total_cooling_load_w)

    def summary(self) -> Dict[str, Any]:
        """Scalar fleet summary plus one row per site."""
        return {
            "policy": self.policy,
            "num_sites": self.num_sites,
            "peak_cooling_kw": self.peak_cooling_load_w / 1e3,
            "energy_kwh": self.total_energy_kwh,
            "energy_cost_usd": self.total_energy_cost_usd,
            "carbon_kg": self.total_carbon_kg,
            "moved_job_cores": self.moved_job_cores,
            "sites": [s.summary() for s in self.site_results],
        }

    def to_text(self) -> str:
        """Human-readable fleet report for the CLI."""
        lines = [f"fleet run ({self.policy}): {self.num_sites} sites, "
                 f"peak cooling {self.peak_cooling_load_w / 1e3:.1f} kW, "
                 f"bill ${self.total_energy_cost_usd:,.2f}, "
                 f"carbon {self.total_carbon_kg:,.1f} kg"]
        if self.moved_job_cores:
            lines.append(f"  routed {self.moved_job_cores} job-cores "
                         f"across sites")
        header = (f"  {'site':<12s} {'hw':<5s} {'peak kW':>9s} "
                  f"{'kWh':>11s} {'cost $':>10s} {'kg CO2e':>10s} "
                  f"{'batt kWh':>9s} {'routed':>7s}")
        lines.append(header)
        for entry in self.site_results:
            row = entry.summary()
            lines.append(
                f"  {row['site']:<12.12s} {row['hardware']:<5.5s} "
                f"{row['peak_cooling_kw']:>9.1f} "
                f"{row['energy_kwh']:>11.1f} "
                f"{row['energy_cost_usd']:>10.2f} "
                f"{row['carbon_kg']:>10.1f} "
                f"{row['battery_shifted_kwh']:>9.1f} "
                f"{row['net_routed_job_cores']:>7d}")
        saturated = [s.name for s in self.site_results
                     if s.cooling.overloaded_tick_fraction > 0]
        if saturated:
            lines.append(f"  WARNING: plant saturated at: "
                         f"{', '.join(saturated)}")
        return "\n".join(lines)


def aggregate_sites(site_results: Tuple[SiteResult, ...], *,
                    policy: str, moved_job_cores: int) -> FleetResult:
    """Fold per-site results into a :class:`FleetResult`.

    Sums cooling loads on the shared time base (all sites run the same
    trace horizon, which the fleet spec guarantees).
    """
    if not site_results:
        raise SimulationError("fleet produced no site results")
    total: Optional[np.ndarray] = None
    for entry in site_results:
        load = entry.result.cooling_load_w
        total = load.copy() if total is None else total + load
    assert total is not None
    return FleetResult(site_results=tuple(site_results),
                       times_s=site_results[0].result.times_s,
                       total_cooling_load_w=total,
                       policy=policy,
                       moved_job_cores=moved_job_cores)

"""The fleet engine: resolve, route, simulate, and price every site.

Two execution paths, chosen by the fleet policy's routing mode:

* **Unrouted** (``"none"``) -- each site is an independent job and fans
  out across the :class:`~repro.perf.runner.ExperimentRunner` exactly
  like the multi-cluster datacenter study (same specs, same derived
  seeds, same trace stagger).  This is what keeps a homogeneous fleet
  bit-identical to :func:`~repro.cluster.multi.run_datacenter`, and it
  inherits the runner's whole fault-tolerance story (pool-crash retry,
  structured failures).
* **Routed** -- the router rewrites the per-site traces first, and the
  sites then simulate in-process with their explicit routed traces
  (traces are deliberately not picklable spec fields).

After simulation every site is *priced*: the chiller's electrical draw
under the site's condenser ambient, the battery dispatch on the total
grid draw, and the site's bill and emissions under its own tariff and
carbon curve.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..checks.sanitizer import resolve_check_level
from ..cluster.metrics import SimulationResult
from ..cluster.multi import collect_cluster_results
from ..config import SimulationConfig
from ..errors import SimulationError
from ..obs.telemetry import TelemetryLike, telemetry_directory
from ..perf.cache import shared_trace
from ..perf.runner import ExperimentRunner, RunSpec
from ..tco.energy import cooling_energy_account
from ..thermal.plant import ChillerPlant
from ..workloads.trace import TraceMatrix
from .battery import dispatch_battery
from .result import FleetResult, SiteResult, aggregate_sites
from .router import RoutingPlan, routed_site_traces
from .spec import FleetSpec

#: COP lost per degree of condenser ambient above reference on plants
#: the fleet sizes itself (a site that supplies its own plant decides
#: its own derate).  ~2%/K is a typical air-cooled chiller slope.
DEFAULT_COP_DERATE_PER_C = 0.02


class FleetSimulation:
    """Execute a :class:`~repro.fleet.spec.FleetSpec` end to end."""

    def __init__(self, spec: FleetSpec, *,
                 max_workers: Optional[int] = 1,
                 record_heatmaps: bool = False,
                 telemetry: TelemetryLike = None,
                 checks: Optional[str] = None) -> None:
        spec.validate()
        self._spec = spec
        self._max_workers = max_workers
        self._record_heatmaps = record_heatmaps
        self._telemetry_dir = telemetry_directory(telemetry)
        self._checks = checks

    @property
    def spec(self) -> FleetSpec:
        """The fleet being simulated."""
        return self._spec

    def _site_configs(self) -> List[SimulationConfig]:
        return [self._spec.site_config(index)
                for index in range(self._spec.num_sites)]

    def _ambient_series(self, config: SimulationConfig, index: int,
                        times_s: np.ndarray) -> np.ndarray:
        """Condenser ambient the site's plant sees, per tick.

        The site's weather profile (the same one shifting server
        inlets) swings around its outdoor base -- so a desert site's
        afternoon derates its chiller exactly when its servers run hot.
        """
        site = self._spec.sites[index]
        ambient = config.ambient
        offsets = np.fromiter(
            (ambient.offset_c_at(float(t)) for t in times_s),
            dtype=np.float64, count=len(times_s))
        return site.outdoor_base_c + offsets

    def _plant_for(self, index: int,
                   cooling_load_w: np.ndarray) -> ChillerPlant:
        """The site's plant: as specified, or sized at its own peak."""
        site = self._spec.sites[index]
        if site.plant is not None:
            return site.plant
        peak = float(cooling_load_w.max()) if cooling_load_w.size else 0.0
        return ChillerPlant(capacity_w=max(peak, 1.0),
                            cop_derate_per_c=DEFAULT_COP_DERATE_PER_C)

    def _spec_for(self, index: int,
                  config: SimulationConfig) -> RunSpec:
        policy = self._spec.scheduler_for(index)
        site = self._spec.sites[index]
        return RunSpec(config=config, policy=policy,
                       label=f"site-{site.name}[{policy}]",
                       trace_shift_hours=self._spec.trace_shift_hours(
                           index),
                       record_heatmaps=self._record_heatmaps,
                       telemetry_dir=self._telemetry_dir,
                       checks=self._checks)

    def _run_unrouted(self, configs: List[SimulationConfig]
                      ) -> List[SimulationResult]:
        specs = [self._spec_for(index, config)
                 for index, config in enumerate(configs)]
        outcomes = ExperimentRunner(self._max_workers).run(
            specs, raise_on_error=False)
        return collect_cluster_results(outcomes, what="site")

    def _run_routed(self, configs: List[SimulationConfig],
                    plan: RoutingPlan) -> List[SimulationResult]:
        """Simulate every site in-process on its routed trace.

        Routed traces cannot ride a :class:`RunSpec` across a process
        boundary, so this path runs serially -- but through the same
        captured-execution machinery, so a failing site still surfaces
        as a readable error naming it, not a bare traceback mid-batch.
        """
        from ..perf.runner import RunFailure

        results: List[SimulationResult] = []
        failures: List[Tuple[int, RunFailure]] = []
        for index, config in enumerate(configs):
            outcome = _execute_site(self._spec_for(index, config),
                                    plan.traces[index])
            if isinstance(outcome, RunFailure):
                failures.append((index, outcome))
            else:
                results.append(outcome)
        if failures:
            lines = []
            for index, failure in failures:
                site = self._spec.sites[index]
                lines.append(
                    f"site {index} ({site.name!r}, policy "
                    f"'{failure.spec.policy}') failed with "
                    f"{failure.error_type}: {failure.message}")
                if failure.traceback_text:
                    lines.append(failure.traceback_text.rstrip())
            raise SimulationError(
                f"{len(failures)} of {len(configs)} fleet site run(s) "
                f"failed:\n" + "\n".join(lines))
        return results

    def run(self) -> FleetResult:
        """Simulate the fleet and return the aggregated result."""
        spec = self._spec
        policy = spec.fleet_policy
        configs = self._site_configs()

        if policy.routing == "none":
            plan: Optional[RoutingPlan] = None
            results = self._run_unrouted(configs)
        else:
            traces = [shared_trace(config,
                                   shift_hours=spec.trace_shift_hours(i))
                      for i, config in enumerate(configs)]
            plan = routed_site_traces(
                policy.routing, traces,
                tariffs=[site.tariff for site in spec.sites],
                ambients_c=[self._routing_ambient(configs[i], i,
                                                  traces[i])
                            for i in range(spec.num_sites)],
                sites_latency_ms=[site.latency_ms
                                  for site in spec.sites],
                latency_budget_ms=spec.latency_budget_ms,
                spill_fraction=spec.spill_fraction)
            results = self._run_routed(configs, plan)

        site_results = tuple(
            self._price_site(index, configs[index], results[index],
                             plan)
            for index in range(spec.num_sites))
        fleet_result = aggregate_sites(
            site_results, policy=spec.policy,
            moved_job_cores=plan.moved_job_cores if plan else 0)
        if resolve_check_level(self._checks) != "off":
            from .verify import verify_fleet_result
            verify_fleet_result(spec, fleet_result, plan=plan)
        return fleet_result

    def _routing_ambient(self, config: SimulationConfig, index: int,
                         trace: TraceMatrix) -> np.ndarray:
        times_s = np.arange(trace.num_steps) * trace.step_seconds
        return self._ambient_series(config, index, times_s)

    def _price_site(self, index: int, config: SimulationConfig,
                    result: SimulationResult,
                    plan: Optional[RoutingPlan]) -> SiteResult:
        """Attach market and battery accounting to one site's physics."""
        site = self._spec.sites[index]
        policy = self._spec.fleet_policy
        dt_s = config.trace.step_seconds
        times_h = result.times_s / 3600.0
        ambient = self._ambient_series(config, index, result.times_s)
        plant = self._plant_for(index, result.cooling_load_w)
        cooling = cooling_energy_account(
            plant, result.cooling_load_w, times_h, site.tariff, dt_s,
            carbon=site.carbon, ambient_c=ambient)
        cooling_kw = plant.electrical_power_w(result.cooling_load_w,
                                              ambient) / 1e3
        it_kw = result.it_power_w / 1e3
        dispatch = dispatch_battery(it_kw + cooling_kw, times_h, dt_s,
                                    site.battery, site.tariff,
                                    mode=policy.battery_mode)
        rates = site.tariff.rate_usd_per_kwh(times_h)
        dt_h = dt_s / 3600.0
        cost = float((dispatch.grid_kw * rates).sum() * dt_h)
        carbon = site.carbon.carbon_kg(dispatch.grid_kw, times_h, dt_s)
        return SiteResult(
            site=site, result=result, plant=plant, cooling=cooling,
            grid_kw=dispatch.grid_kw, ambient_c=ambient,
            battery=dispatch, energy_cost_usd=cost, carbon_kg=carbon,
            net_routed_job_cores=(plan.net_received[index]
                                  if plan else 0))


def _execute_site(spec: RunSpec, trace: TraceMatrix):
    """Run one routed site in-process with its explicit trace."""
    from ..cluster.simulation import run_simulation
    from ..core.policies import make_scheduler
    from ..perf.runner import RunFailure

    import traceback as tb
    try:
        scheduler = make_scheduler(spec.policy, spec.config)
        telemetry = None
        if spec.telemetry_dir is not None:
            from ..obs.telemetry import Telemetry
            telemetry = Telemetry(spec.telemetry_dir)
            telemetry.bind(spec.name, policy=spec.policy,
                           capacity=spec.config.trace.num_steps)
        return run_simulation(spec.config, scheduler, trace=trace,
                              record_heatmaps=spec.record_heatmaps,
                              telemetry=telemetry, checks=spec.checks)
    except BaseException as exc:  # noqa: BLE001 -- captured by design
        return RunFailure(spec=spec, error_type=type(exc).__name__,
                          message=str(exc),
                          traceback_text=tb.format_exc())


def run_fleet(spec: FleetSpec, *, max_workers: Optional[int] = 1,
              record_heatmaps: bool = False,
              telemetry: TelemetryLike = None,
              checks: Optional[str] = None) -> FleetResult:
    """Convenience wrapper: build and run a :class:`FleetSimulation`."""
    return FleetSimulation(spec, max_workers=max_workers,
                           record_heatmaps=record_heatmaps,
                           telemetry=telemetry, checks=checks).run()

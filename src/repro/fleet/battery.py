"""Site battery storage: the electrical twin of the wax buffer.

The paper's PCM shifts the *thermal* peak in time; a battery shifts the
*electrical* one.  The two compose: VMT flattens the cooling load the
chiller must remove, and the battery then moves the remaining grid draw
(IT + chiller) into cheap or clean hours.  Dispatch is greedy and
deterministic -- no solver, no randomness -- so a fleet run stays
reproducible tick for tick.

Sign conventions: ``charge_kw`` and ``discharge_kw`` are both
non-negative; grid draw = load + charge - discharge and is floored at
zero by construction (the battery never discharges more than the site
is drawing -- this model does not export to the grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import BatteryConfig
from ..errors import ConfigurationError
from ..tco.energy import ElectricityTariff


@dataclass(frozen=True)
class BatteryDispatch:
    """One site's battery behaviour over a run."""

    #: Grid draw after battery action, kW (>= 0 everywhere).
    grid_kw: np.ndarray
    #: State of charge after each tick, kWh (within [0, capacity]).
    soc_kwh: np.ndarray
    #: Total energy pushed into the cell (after charge losses), kWh.
    charged_kwh: float
    #: Total energy delivered to the site bus, kWh.
    discharged_kwh: float

    @property
    def shifted_kwh(self) -> float:
        """Energy the battery time-shifted (delivered side)."""
        return self.discharged_kwh

    @property
    def active(self) -> bool:
        """Whether the battery did anything at all."""
        return self.charged_kwh > 0.0 or self.discharged_kwh > 0.0


def idle_dispatch(load_kw: np.ndarray,
                  battery: BatteryConfig) -> BatteryDispatch:
    """The no-op dispatch: grid follows the load, SOC never moves."""
    load = np.asarray(load_kw, dtype=np.float64)
    soc = np.full(load.shape,
                  battery.capacity_kwh * battery.initial_soc)
    return BatteryDispatch(grid_kw=load.copy(), soc_kwh=soc,
                           charged_kwh=0.0, discharged_kwh=0.0)


def dispatch_battery(load_kw: Sequence[float],
                     times_h: Sequence[float],
                     dt_s: float,
                     battery: BatteryConfig,
                     tariff: ElectricityTariff,
                     mode: str = "idle") -> BatteryDispatch:
    """Greedily dispatch a site battery against a load series.

    * ``idle`` -- do nothing (also the path for absent batteries).
    * ``arbitrage`` -- charge flat-out off-peak, discharge into the
      tariff's peak window: the battery buys cheap energy and burns it
      when power is expensive.  Wrapped overnight-peak windows work
      exactly like daytime ones.
    * ``peak-shave`` -- discharge whenever the load is above its own
      mean, recharge below it: flattens the site's grid draw the way
      the wax flattens its thermal load.

    Charging pays the one-way efficiency on the way in; discharging
    pays it on the way out, so a full cycle loses exactly
    ``1 - round_trip_efficiency``.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt must be positive")
    if mode not in ("idle", "arbitrage", "peak-shave"):
        raise ConfigurationError(f"unknown battery mode {mode!r}")
    load = np.asarray(load_kw, dtype=np.float64)
    times = np.asarray(times_h, dtype=np.float64)
    if load.shape != times.shape:
        raise ConfigurationError("load and time series must align")
    if (load < 0).any():
        raise ConfigurationError("site load must be non-negative")
    if mode == "idle" or not battery.enabled or load.size == 0:
        return idle_dispatch(load, battery)

    dt_h = dt_s / 3600.0
    eff = battery.one_way_efficiency
    capacity = battery.capacity_kwh
    soc = capacity * battery.initial_soc
    peak = tariff.is_peak(times)
    mean_kw = float(load.mean())

    grid = np.empty_like(load)
    soc_series = np.empty_like(load)
    charged = 0.0
    discharged = 0.0
    for tick in range(load.size):
        if mode == "arbitrage":
            want_discharge = bool(peak[tick])
            charge_target_kw = battery.max_charge_kw
            discharge_target_kw = battery.max_discharge_kw
        else:  # peak-shave
            excess = load[tick] - mean_kw
            want_discharge = excess > 0.0
            # Never shave below / recharge above the mean line.
            discharge_target_kw = min(battery.max_discharge_kw,
                                      max(excess, 0.0))
            charge_target_kw = min(battery.max_charge_kw,
                                   max(-excess, 0.0))
        if want_discharge:
            # Delivered power is bounded by the rate, the load itself
            # (no grid export), and the energy left in the cell.
            deliver_kw = min(discharge_target_kw, float(load[tick]),
                             soc * eff / dt_h if dt_h > 0 else 0.0)
            deliver_kw = max(deliver_kw, 0.0)
            soc -= deliver_kw * dt_h / eff
            discharged += deliver_kw * dt_h
            grid[tick] = load[tick] - deliver_kw
        else:
            # Stored power is bounded by the rate and the headroom.
            draw_kw = min(charge_target_kw,
                          (capacity - soc) / (eff * dt_h)
                          if dt_h > 0 else 0.0)
            draw_kw = max(draw_kw, 0.0)
            soc += draw_kw * eff * dt_h
            charged += draw_kw * eff * dt_h
            grid[tick] = load[tick] + draw_kw
        soc = min(max(soc, 0.0), capacity)
        soc_series[tick] = soc
    return BatteryDispatch(grid_kw=grid, soc_kwh=soc_series,
                           charged_kwh=charged,
                           discharged_kwh=discharged)

"""Fleet-level invariant checks, in the spirit of the run sanitizer.

The per-run sanitizer (PR 4) audits within-run physics; the scenario
verifier (PR 5) audits between-run metamorphic properties.  This layer
audits the *fleet composition*: routing must conserve demand, batteries
must respect their physical envelope, and the aggregate must equal the
sum of its sites.  Checks run automatically whenever the run's check
level resolves to anything but ``"off"`` (the ``REPRO_CHECKS``
contract), and raise :class:`~repro.errors.InvariantViolation` with the
site named.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import InvariantViolation
from .result import FleetResult
from .router import RoutingPlan
from .spec import FleetSpec

#: Absolute slack for floating-point aggregation comparisons, watts.
AGG_TOL_W = 1e-6
#: Relative slack for battery energy-balance comparisons.
REL_TOL = 1e-9


def check_aggregation(result: FleetResult) -> Optional[str]:
    """The fleet cooling load must equal the sum over its sites."""
    total = sum(s.result.cooling_load_w for s in result.site_results)
    if not np.allclose(result.total_cooling_load_w, total,
                       rtol=0.0, atol=AGG_TOL_W):
        worst = float(np.abs(result.total_cooling_load_w - total).max())
        return (f"fleet cooling load disagrees with the site sum "
                f"(max error {worst:.3e} W)")
    for entry in result.site_results:
        if entry.result.times_s.shape \
                != result.times_s.shape \
                or not np.array_equal(entry.result.times_s,
                                      result.times_s):
            return (f"site {entry.name!r} time base disagrees with "
                    f"the fleet's")
    return None


def check_routing(spec: FleetSpec,
                  plan: Optional[RoutingPlan]) -> Optional[str]:
    """Routing must conserve demand and stay within net bookkeeping."""
    if plan is None:
        return None
    if sum(plan.net_received) != 0:
        return (f"routing net flows do not sum to zero: "
                f"{plan.net_received}")
    if plan.moved_job_cores < 0:
        return "routing reported negative moved job-cores"
    for index, trace in enumerate(plan.traces):
        counts = trace.counts
        if (counts < 0).any():
            return f"site {index} routed trace went negative"
        if (counts.sum(axis=1) > trace.total_cores).any():
            return (f"site {index} routed trace exceeds its "
                    f"{trace.total_cores}-core capacity")
    return None


def check_batteries(result: FleetResult) -> Optional[str]:
    """Battery SOC and grid draws must stay in their envelopes."""
    for entry in result.site_results:
        battery = entry.site.battery
        soc = entry.battery.soc_kwh
        if soc.size and (soc.min() < -REL_TOL
                         or soc.max() > battery.capacity_kwh
                         * (1.0 + REL_TOL) + REL_TOL):
            return (f"site {entry.name!r} battery SOC escaped "
                    f"[0, {battery.capacity_kwh}] kWh: "
                    f"[{soc.min():.3f}, {soc.max():.3f}]")
        if entry.grid_kw.size and entry.grid_kw.min() < -REL_TOL:
            return (f"site {entry.name!r} grid draw went negative "
                    f"({entry.grid_kw.min():.3f} kW)")
        if not battery.enabled and entry.battery.active:
            return (f"site {entry.name!r} has no battery but "
                    f"dispatched energy")
    return None


def check_accounts(result: FleetResult) -> Optional[str]:
    """Money and carbon must be finite and non-negative."""
    for entry in result.site_results:
        for label, value in (("cost", entry.energy_cost_usd),
                             ("carbon", entry.carbon_kg),
                             ("cooling cost", entry.cooling.cost_usd),
                             ("cooling energy",
                              entry.cooling.energy_kwh)):
            if not np.isfinite(value) or value < 0:
                return (f"site {entry.name!r} {label} is "
                        f"non-finite or negative: {value!r}")
    return None


def verify_fleet_result(spec: FleetSpec, result: FleetResult, *,
                        plan: Optional[RoutingPlan] = None) -> None:
    """Run every fleet invariant; raise on the first violation."""
    violations: List[str] = []
    for check in (lambda: check_aggregation(result),
                  lambda: check_routing(spec, plan),
                  lambda: check_batteries(result),
                  lambda: check_accounts(result)):
        detail = check()
        if detail is not None:
            violations.append(detail)
    if violations:
        raise InvariantViolation(
            "fleet invariant violation: " + "; ".join(violations))

"""Heterogeneous multi-datacenter fleet with energy-market coupling.

The generalization of the paper's single identical-server room: named
sites with their own hardware class, weather, chiller plant, tariff,
carbon mix, and battery; cross-site demand routing; and fleet-level
policies that compose VMT's thermal time-shifting with electrical
(battery) time-shifting and market/thermal-aware placement.

A homogeneous fleet under the ``"independent"`` policy is bit-identical
to :func:`repro.cluster.multi.run_datacenter` -- fingerprint for
fingerprint -- so everything the golden harness proves about the
single-datacenter study carries over unchanged.
"""

from .battery import BatteryDispatch, dispatch_battery
from .result import FleetResult, SiteResult
from .router import RoutingPlan, route_traces, routing_scores
from .run import FleetSimulation, run_fleet
from .spec import (BATTERY_MODES, FLEET_POLICIES, ROUTING_MODES,
                   FleetPolicy, FleetSpec, SiteSpec, demo_fleet,
                   fleet_policy)
from .verify import verify_fleet_result

__all__ = [
    "BATTERY_MODES",
    "BatteryDispatch",
    "FLEET_POLICIES",
    "FleetPolicy",
    "FleetResult",
    "FleetSimulation",
    "FleetSpec",
    "ROUTING_MODES",
    "RoutingPlan",
    "SiteResult",
    "SiteSpec",
    "demo_fleet",
    "dispatch_battery",
    "fleet_policy",
    "route_traces",
    "routing_scores",
    "run_fleet",
    "verify_fleet_result",
]

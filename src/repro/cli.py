"""Command-line interface.

Installs as ``repro-sim`` (see pyproject) and also runs as
``python -m repro.cli``.  Subcommands cover the everyday workflows:

* ``run``      -- one simulation, summary (optionally saved to .npz);
  ``--kill``/``--stuck-wax``/``--derate``/``--hazard`` inject faults;
  ``--telemetry DIR`` writes a JSONL trace + metrics + run manifest;
  ``--checks LEVEL`` attaches the invariant sanitizer;
  ``--checkpoint-every N --checkpoint-dir D`` writes resumable
  snapshots and ``--resume PATH`` continues from one bit-identically;
  ``--registry DIR`` consults the content-addressed run registry first
  and reports provenance (``cached: true`` + manifest) on a hit
* ``serve``    -- the HTTP job server: async submissions, SSE
  streaming, the run registry, and the policy leaderboard under /v1/
* ``scenario`` -- the stress-scenario engine: ``list`` the library,
  ``run`` one scenario against its matched baseline with metamorphic
  verification, or ``suite`` the whole scenarios x policies matrix
  fault-tolerantly with a ranked report
* ``check``    -- re-run the committed golden configs and diff the
  results against the stored fingerprints (``--update`` re-captures)
* ``ledger``   -- list or verify the run manifests in a telemetry dir
* ``compare``  -- policies vs the round-robin baseline
* ``resilience`` -- policies under an injected fault scenario
* ``sweep``    -- grouping-value sweep for the VMT policies
  (``--workers N`` fans the sweep points across a process pool)
* ``profile``  -- per-subsystem tick timing for one simulation
* ``trace``    -- the two-day trace and its landmarks
* ``heatmap``  -- ASCII temperature / wax heatmaps for a policy
* ``tco``      -- datacenter-scale TCO what-if
* ``fleet``    -- multi-datacenter fleet: heterogeneous sites,
  tariffs (wrapped overnight peaks included), carbon curves, batteries,
  and cross-site routing; ``--demo`` runs the documented 3-site fleet
* ``info``     -- workload table and calibration constants
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, Sequence

import numpy as np

from . import __version__
from .analysis.reporting import format_heatmap, format_series, format_table
from .cluster.simulation import run_simulation
from .config import paper_cluster_config
from .core.policies import SCHEDULER_NAMES, make_scheduler
from .errors import ReproError
from .io import save_result
from .workloads.workload import WORKLOAD_LIST


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=100,
                        help="cluster size (default 100)")
    parser.add_argument("--gv", type=float, default=22.0,
                        help="grouping value for VMT policies")
    parser.add_argument("--seed", type=int, default=7,
                        help="root RNG seed")
    parser.add_argument("--inlet-stdev", type=float, default=0.0,
                        help="per-server inlet temperature stdev (deg C)")


def _config_from(args: argparse.Namespace):
    return paper_cluster_config(num_servers=args.servers,
                                grouping_value=args.gv, seed=args.seed,
                                inlet_stdev_c=args.inlet_stdev)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "fault injection", "inject failures mid-run (all off by default)")
    group.add_argument("--kill", metavar="IDS",
                       help="comma-separated server ids to fail")
    group.add_argument("--kill-hot-fraction", type=float, metavar="FRAC",
                       help="fail this fraction of the hot group instead")
    group.add_argument("--kill-at", type=float, default=10.0,
                       metavar="HOUR", help="failure hour (default 10)")
    group.add_argument("--repair-after", type=float, metavar="HOURS",
                       help="repair killed servers after this many hours")
    group.add_argument("--stuck-wax", metavar="IDS",
                       help="comma-separated ids whose wax sensor sticks")
    group.add_argument("--stuck-at", type=float, default=10.0,
                       metavar="HOUR", help="sensor-fault hour (default 10)")
    group.add_argument("--derate", type=float, metavar="FACTOR",
                       help="derate cooling to this capacity factor [0,1]")
    group.add_argument("--derate-at", type=float, default=10.0,
                       metavar="HOUR", help="derate hour (default 10)")
    group.add_argument("--derate-restore", type=float, metavar="HOURS",
                       help="restore full cooling after this many hours")
    group.add_argument("--hazard", type=float, metavar="ACCEL",
                       help="temperature-dependent random failures, "
                            "hazard accelerated by this factor")


def _parse_ids(spec: str) -> List[int]:
    try:
        return [int(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise ReproError(f"bad server id list: {spec!r}") from None


def _faults_from(args: argparse.Namespace, config):
    """Build a FaultConfig from CLI flags, or None when all are off."""
    from .faults.scenarios import (cooling_derate, kill_hot_group_fraction,
                                   kill_servers, merge_scenarios,
                                   stuck_wax_sensors, temperature_hazard)
    parts = []
    if args.kill:
        parts.append(kill_servers(_parse_ids(args.kill), args.kill_at,
                                  repair_after_hours=args.repair_after))
    if args.kill_hot_fraction is not None:
        parts.append(kill_hot_group_fraction(
            config, args.kill_hot_fraction, args.kill_at,
            repair_after_hours=args.repair_after))
    if args.stuck_wax:
        parts.append(stuck_wax_sensors(_parse_ids(args.stuck_wax),
                                       args.stuck_at))
    if args.derate is not None:
        parts.append(cooling_derate(
            args.derate, args.derate_at,
            restore_after_hours=args.derate_restore))
    if args.hazard is not None:
        parts.append(temperature_hazard(args.hazard))
    if not parts:
        return None
    return merge_scenarios(*parts)


def _with_faults(config, args: argparse.Namespace):
    faults = _faults_from(args, config)
    if faults is None:
        return config
    return dataclasses.replace(config, faults=faults)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.checkpoint_every is not None and not args.checkpoint_dir:
        raise ReproError("--checkpoint-every requires --checkpoint-dir")
    if args.registry and args.resume:
        raise ReproError("--registry and --resume are mutually exclusive "
                         "(a resumed run's partial history is not a "
                         "registry-addressable result)")
    telemetry = None
    if args.telemetry:
        from .obs.telemetry import Telemetry
        telemetry = Telemetry(args.telemetry)
    cached = None
    registry_manifest = None
    if args.resume:
        from .state import resume_run
        result = resume_run(args.resume, telemetry=telemetry,
                            checks=args.checks, backend=args.backend,
                            checkpoint_every=args.checkpoint_every,
                            checkpoint_dir=args.checkpoint_dir)
    elif args.registry:
        import time as _time
        from .serve.registry import RunRegistry, registry_key
        config = _with_faults(_config_from(args), args)
        registry = RunRegistry(args.registry)
        key = registry_key(config, args.policy, args.backend)
        entry = registry.lookup(key)
        if entry is not None:
            result = registry.load(entry)
            cached = True
        else:
            scheduler = make_scheduler(args.policy, config)
            start = _time.perf_counter()
            # Heatmaps always on under --registry: they participate in
            # the fingerprint, so one keyed entry must mean one exact
            # result regardless of --save.
            result = run_simulation(config, scheduler,
                                    record_heatmaps=True,
                                    telemetry=telemetry,
                                    checks=args.checks,
                                    backend=args.backend,
                                    checkpoint_every=args.checkpoint_every,
                                    checkpoint_dir=args.checkpoint_dir)
            entry = registry.store(key, result,
                                   wall_clock_s=_time.perf_counter() - start,
                                   source="cli")
            cached = False
        registry_manifest = entry.manifest_path
    else:
        config = _with_faults(_config_from(args), args)
        scheduler = make_scheduler(args.policy, config)
        result = run_simulation(config, scheduler,
                                record_heatmaps=bool(args.save),
                                telemetry=telemetry, checks=args.checks,
                                backend=args.backend,
                                checkpoint_every=args.checkpoint_every,
                                checkpoint_dir=args.checkpoint_dir)
    summary = result.summary()
    rows = [(key, value) for key, value in summary.items()]
    print(format_table(["metric", "value"], rows))
    print(f"\nfingerprint: {result.fingerprint()}")
    if cached is not None:
        # Provenance is part of the contract: a registry hit is never
        # passed off as a fresh simulation.
        print(f"cached: {'true' if cached else 'false'}")
        print(f"registry manifest: {registry_manifest}")
        if cached:
            print("(served from the run registry: zero simulation ticks "
                  "executed)")
    if args.save:
        path = save_result(result, args.save)
        print(f"saved result to {path}")
    if telemetry is not None and (cached is None or not cached):
        print(f"telemetry: {telemetry.manifest_path}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    import json as _json

    from . import api

    if args.checkpoint_every is not None and not args.checkpoint_dir:
        raise ReproError("--checkpoint-every requires --checkpoint-dir")
    feed = args.feed
    if feed == "jsonl":
        from .live import JsonlFeed
        source = (open(args.feed_file) if args.feed_file else sys.stdin)
        feed = JsonlFeed(source)
    kwargs = dict(feed=feed, feed_seed=args.feed_seed,
                  forecaster=args.forecaster,
                  decision_every=args.decision_every,
                  mpc=args.mpc, mpc_horizon_steps=args.mpc_horizon,
                  speedup=args.speedup, telemetry=args.telemetry,
                  checks=args.checks, timeout_s=args.timeout,
                  checkpoint_every=args.checkpoint_every,
                  checkpoint_dir=args.checkpoint_dir)
    if args.resume:
        report = api.live_run(resume_from=args.resume, **kwargs)
    else:
        if args.policy is None:
            raise ReproError("a policy is required unless --resume is "
                             "given")
        config = _config_from(args)
        if args.hours is not None:
            config = config.replace(trace=dataclasses.replace(
                config.trace, duration_hours=args.hours))
        report = api.live_run(policy=args.policy, config=config,
                              **kwargs)
    summary = report.result.summary()
    rows = [(key, value) for key, value in summary.items()]
    print(format_table(["metric", "value"], rows))
    print(f"\nforecaster: {report.forecaster}  "
          f"(decisions every {report.decision_every} steps, "
          f"{report.steps_ingested} steps ingested)")
    print(f"fingerprint: {report.result.fingerprint()}")
    if report.mpc_decisions:
        last = report.mpc_decisions[-1]
        print(f"mpc: {len(report.mpc_decisions)} decisions, last chose "
              f"gv={last['chosen_gv']:g} at step {last['step']}")
    if args.report:
        with open(args.report, "w") as fh:
            _json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report: {args.report}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import Server
    server = Server(args.data_dir, host=args.host, port=args.port,
                    max_workers=args.max_workers,
                    default_timeout_s=args.job_timeout)
    print(f"repro-serve: listening on http://{args.host}:{args.port} "
          f"(data: {args.data_dir})")
    server.serve_forever()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    baseline = run_simulation(config,
                              make_scheduler("round-robin", config),
                              record_heatmaps=False)
    rows = [("round-robin",
             f"{baseline.peak_cooling_load_w / 1e3:.2f}", "--")]
    for policy in args.policies:
        result = run_simulation(config, make_scheduler(policy, config),
                                record_heatmaps=False)
        rows.append((result.scheduler_name,
                     f"{result.peak_cooling_load_w / 1e3:.2f}",
                     f"{result.peak_reduction_vs(baseline) * 100:.1f}%"))
    print(format_table(["policy", "peak cooling (kW)", "reduction"],
                       rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweep import gv_sweep
    values = np.arange(args.start, args.stop + 1e-9, args.step)
    sweep = gv_sweep([float(v) for v in values],
                     policies=tuple(args.policies),
                     num_servers=args.servers, seed=args.seed,
                     inlet_stdev_c=args.inlet_stdev,
                     max_workers=args.workers or None,
                     workers_mode=args.workers_mode,
                     telemetry=args.telemetry, checks=args.checks,
                     backend=args.backend)
    headers = ["GV"] + list(args.policies)
    rows = []
    for i, gv in enumerate(sweep.values):
        rows.append((f"{gv:g}",
                     *(f"{sweep.reductions[p][i] * 100:.1f}%"
                       for p in args.policies)))
    print(format_table(headers, rows))
    for policy in args.policies:
        gv, best = sweep.best(policy)
        print(f"best {policy}: GV={gv:g} ({best * 100:.1f}%)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .cluster.simulation import ClusterSimulation
    from .perf.profiler import TickProfiler
    config = _config_from(args)
    profiler = TickProfiler()
    sim = ClusterSimulation(config, make_scheduler(args.policy, config),
                            record_heatmaps=False, profiler=profiler,
                            backend=args.backend)
    result = sim.run()
    if sim.backend == "fast":
        print(f"backend: fast (kernel path: {sim.kernel_path})\n")
    timings = profiler.timings().values()
    total_s = sum(t.total_s for t in timings)
    rows = [(t.name, f"{t.calls}", f"{t.total_s * 1e3:.1f}",
             f"{t.mean_us:.1f}",
             f"{t.total_s / total_s * 100:.1f}%" if total_s > 0 else "--")
            for t in timings]
    print(format_table(
        ["subsystem", "calls", "total (ms)", "mean (us)", "share"], rows))
    ticks = profiler.ticks
    if ticks and total_s > 0:
        print(f"\n{ticks} ticks, {ticks / total_s:,.0f} ticks/sec "
              f"(instrumented sections only)")
    print(f"peak cooling load: {result.peak_cooling_load_w / 1e3:.2f} kW")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.experiments import figure8_trace
    trace = figure8_trace(num_servers=args.servers)
    print(format_series("cluster utilization vs hour",
                        trace.times_hours, trace.utilization,
                        x_label="hour", y_label="utilization",
                        max_points=args.points))
    print(f"\npeaks at hours {trace.peak_hours[0]:.1f} / "
          f"{trace.peak_hours[1]:.1f}; troughs at "
          f"{trace.trough_hours[0]:.1f} / {trace.trough_hours[1]:.1f}; "
          f"hot share {trace.mean_hot_fraction * 100:.1f}%")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from .analysis.experiments import heatmap_experiment
    result = heatmap_experiment(args.policy, grouping_value=args.gv,
                                num_servers=args.servers, seed=args.seed)
    print(format_heatmap(result.temp_heatmap,
                         title=f"air temperature, {args.policy}",
                         vmin=10, vmax=50))
    print()
    print(format_heatmap(result.melt_heatmap,
                         title=f"wax melted, {args.policy}",
                         vmin=0, vmax=1))
    return 0


def _cmd_tco(args: argparse.Namespace) -> int:
    from .analysis.experiments import tco_analysis
    study = tco_analysis(peak_reduction=args.reduction,
                         num_servers=args.servers, seed=args.seed)
    rows = [
        ("peak reduction", f"{study.measured_reduction * 100:.1f}%"),
        ("cooling reduction",
         f"{study.impact.cooling_reduction_w / 1e6:.2f} MW"),
        ("lifetime cooling savings",
         f"${study.savings.gross_cooling_savings_usd:,.0f}"),
        ("wax deployment cost",
         f"${study.savings.wax_deployment_cost_usd:,.0f}"),
        ("net savings", f"${study.savings.net_savings_usd:,.0f}"),
        ("additional servers", f"{study.impact.additional_servers:,}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.registry import EXPERIMENTS, get_experiment
    if args.id is None:
        rows = [(e.id, e.paper_ref, "sim" if e.simulated else "model",
                 e.title) for e in EXPERIMENTS.values()]
        print(format_table(["id", "paper", "kind", "title"], rows))
        print("\nrun one with: repro-sim experiments <id>  "
              "(simulated ones take seconds to minutes)")
        return 0
    experiment = get_experiment(args.id)
    print(f"running {experiment.id} ({experiment.paper_ref}): "
          f"{experiment.title} ...")
    overrides = {}
    if args.servers is not None and "num_servers" \
            in experiment.default_kwargs:
        overrides["num_servers"] = args.servers
    result = experiment.run(**overrides)
    print(f"done: {type(result).__name__}")
    summary = getattr(result, "summary", None)
    if callable(summary):
        for key, value in summary().items():
            print(f"  {key}: {value}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .analysis.validation import (validate_calibration,
                                      validate_with_simulation)
    checks = validate_calibration()
    if args.simulate:
        checks += validate_with_simulation(num_servers=args.servers,
                                           seed=args.seed)
    rows = [("PASS" if c.passed else "FAIL", c.name, c.detail)
            for c in checks]
    print(format_table(["status", "check", "detail"], rows))
    failed = sum(not c.passed for c in checks)
    print(f"\n{len(checks) - failed}/{len(checks)} checks passed")
    return 0 if failed == 0 else 1


def _cmd_resilience(args: argparse.Namespace) -> int:
    config = _config_from(args)
    if args.kill is None and args.kill_hot_fraction is None \
            and args.stuck_wax is None and args.derate is None \
            and args.hazard is None:
        # Default scenario: lose part of the hot group right at the peak.
        args.kill_hot_fraction = args.fraction
        args.kill_at = args.at
    config = _with_faults(config, args)
    rows = []
    for policy in args.policies:
        scheduler = make_scheduler(policy, config)
        result = run_simulation(config, scheduler,
                                record_heatmaps=False)
        mean_recovery = result.mean_recovery_time_s
        recovery = ("--" if not np.isfinite(mean_recovery)
                    else f"{mean_recovery / 60.0:.1f} min")
        degraded = getattr(scheduler, "degraded", False)
        rows.append((result.scheduler_name,
                     f"{result.peak_cooling_load_w / 1e3:.2f}",
                     f"{result.min_availability * 100:.1f}%",
                     f"{result.total_displaced_jobs}",
                     recovery,
                     f"{float(result.max_cpu_temp_c.max()):.1f}",
                     "yes" if degraded else "no"))
    print(format_table(
        ["policy", "peak cooling (kW)", "min avail", "displaced",
         "mean recovery", "max cpu (C)", "degraded"], rows))
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from .scenarios import SCENARIO_LIBRARY
    rows = [(spec.name, ",".join(spec.tags), ",".join(spec.checks),
             spec.description)
            for spec in SCENARIO_LIBRARY.values()]
    print(format_table(["scenario", "tags", "checks", "description"],
                       rows))
    print("\nrun one with: repro-sim scenario run <name>; "
          "the whole matrix with: repro-sim scenario suite")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from .perf.runner import ExperimentRunner, RunFailure, RunSpec
    from .scenarios import get_scenario, verify_scenario
    spec = get_scenario(args.name).with_overrides(
        num_servers=args.servers, duration_hours=args.hours,
        seed=args.seed)
    runner = ExperimentRunner(max_workers=1)
    outcomes = runner.run(
        [RunSpec(config=spec.compile(), policy=args.policy,
                 label=f"{spec.name}:{args.policy}", scenario=spec.name,
                 scenario_sha256=spec.sha256(), timeout_s=args.timeout,
                 telemetry_dir=args.telemetry, checks=args.checks),
         RunSpec(config=spec.baseline(), policy=args.policy,
                 label=f"{spec.name}:baseline:{args.policy}",
                 timeout_s=args.timeout, telemetry_dir=args.telemetry,
                 checks=args.checks)],
        raise_on_error=False)
    for outcome in outcomes:
        if isinstance(outcome, RunFailure):
            print(f"error: run '{outcome.spec.name}' failed: "
                  f"{outcome.error_type}: {outcome.message}",
                  file=sys.stderr)
            return 2
    result, baseline = outcomes
    rows = [
        ("scenario", spec.name),
        ("spec sha256", spec.sha256()),
        ("policy", args.policy),
        ("peak cooling (kW)",
         f"{result.peak_cooling_load_w / 1e3:.2f} "
         f"(baseline {baseline.peak_cooling_load_w / 1e3:.2f})"),
        ("min availability", f"{result.min_availability * 100:.1f}%"),
        ("max mean melt", f"{result.max_melt_fraction:.3f} "
         f"(baseline {baseline.max_melt_fraction:.3f})"),
        ("fingerprint", result.fingerprint()),
    ]
    print(format_table(["quantity", "value"], rows))
    print()
    checks = verify_scenario(spec, result, baseline, policy=args.policy)
    for outcome in checks:
        print(outcome)
    violations = sum(not c.passed for c in checks)
    return 1 if violations else 0


def _cmd_scenario_suite(args: argparse.Namespace) -> int:
    from .scenarios import run_suite
    report = run_suite(
        scenarios=args.scenarios or None, policies=args.policies or None,
        num_servers=args.servers, duration_hours=args.hours,
        seed=args.seed, max_workers=args.workers or None,
        timeout_s=args.timeout, telemetry_dir=args.telemetry,
        checks=args.checks)
    print(report.to_text())
    if report.failures:
        return 2
    return 1 if report.violations else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .checks.golden import check_all, update_goldens
    policies = list(args.policies) if args.policies else None
    if args.update:
        fingerprints = update_goldens(policies, checks=args.checks)
        rows = [(name, fp) for name, fp in fingerprints.items()]
        print(format_table(["policy", "new fingerprint"], rows))
        print("\ngoldens re-captured; commit the goldens/ directory and "
              "document the intentional change in CHANGES.md")
        return 0
    comparisons = check_all(policies, checks=args.checks)
    drifted = 0
    for comparison in comparisons:
        print(comparison.report())
        if not comparison.matches:
            drifted += 1
    total = len(comparisons)
    print(f"\n{total - drifted}/{total} policies match their goldens")
    return 1 if drifted else 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .obs.ledger import read_manifests
    from .obs.schema import validate_trace_file
    import os
    manifests = read_manifests(args.dir)
    if not manifests:
        print(f"no run manifests under {args.dir}")
        return 1
    if args.verify:
        rows = []
        failures = 0
        for m in manifests:
            trace_name = m.get("files", {}).get("trace")
            if trace_name is None:
                rows.append((m["run_id"], "--", "no trace recorded"))
                continue
            path = os.path.join(args.dir, trace_name)
            try:
                count = validate_trace_file(path)
                rows.append((m["run_id"], f"{count}", "valid"))
            except ReproError as exc:
                failures += 1
                rows.append((m["run_id"], "--", f"INVALID: {exc}"))
        print(format_table(["run", "trace lines", "status"], rows))
        return 1 if failures else 0
    rows = [(m["run_id"], m["policy"], f"{m['num_servers']}",
             f"{m['seed']}", f"{m['ticks']}", m["result_fingerprint"],
             f"{m['wall_clock_s']:.1f}s")
            for m in manifests]
    print(format_table(
        ["run", "policy", "servers", "seed", "ticks", "fingerprint",
         "wall clock"], rows))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    config = paper_cluster_config(num_servers=args.servers)
    rows = [(w.name, f"{w.per_cpu_power_w:.1f} W", w.thermal_class.value)
            for w in WORKLOAD_LIST]
    print(format_table(["workload", "per-CPU power", "VMT class"], rows))
    print()
    rows = [
        ("servers", config.num_servers),
        ("cores/server", config.server.cores),
        ("idle / peak power", f"{config.server.idle_power_w:.0f} / "
         f"{config.server.peak_power_w:.0f} W"),
        ("wax", f"{config.wax.volume_liters:.1f} L @ "
         f"{config.wax.melt_temp_c} C melt"),
        ("latent capacity/server",
         f"{config.wax.latent_capacity_j / 1e3:.0f} kJ"),
        ("inlet / R_air / hA",
         f"{config.thermal.inlet_temp_c:.0f} C / "
         f"{config.thermal.r_air_c_per_w} C/W / "
         f"{config.thermal.ha_w_per_k} W/K"),
        ("schedulers", ", ".join(SCHEDULER_NAMES)),
    ]
    print(format_table(["parameter", "value"], rows))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from . import api

    config = _config_from(args)
    if args.hours is not None:
        config = dataclasses.replace(
            config, trace=dataclasses.replace(
                config.trace, duration_hours=args.hours))
    kwargs = dict(policy=args.fleet_policy, scheduler=args.policy,
                  config=config, stagger_hours=args.stagger,
                  max_workers=args.max_workers,
                  telemetry=args.telemetry, checks=args.checks)
    if args.demo:
        result = api.fleet_run(demo=True, **kwargs)
    else:
        result = api.fleet_run(num_sites=args.sites, **kwargs)
    print(result.to_text())
    if args.json:
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.summary(), handle, indent=2)
        print(f"summary written to {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="VMT (ISCA 2018) datacenter thermal simulator")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    _add_cluster_args(run)
    _add_fault_args(run)
    run.add_argument("--policy", choices=SCHEDULER_NAMES,
                     default="vmt-ta")
    run.add_argument("--save", metavar="PATH",
                     help="save the result to a .npz file")
    run.add_argument("--telemetry", metavar="DIR",
                     help="write a JSONL trace, per-tick metrics, and a "
                          "run manifest into this directory")
    run.add_argument("--checks", choices=("off", "cheap", "full"),
                     default=None,
                     help="invariant sanitizer level (default: the "
                          "REPRO_CHECKS environment variable, else off)")
    run.add_argument("--backend", choices=("reference", "fast"),
                     default=None,
                     help="tick engine (default: the REPRO_BACKEND "
                          "environment variable, else reference); "
                          "fast is bit-identical")
    run.add_argument("--checkpoint-every", type=int, metavar="N",
                     help="write a resumable snapshot every N ticks "
                          "(requires --checkpoint-dir)")
    run.add_argument("--checkpoint-dir", metavar="DIR",
                     help="directory snapshots are written into")
    run.add_argument("--resume", metavar="PATH",
                     help="resume from a checkpoint snapshot (config and "
                          "policy come from the snapshot; cluster/fault "
                          "flags are ignored)")
    run.add_argument("--registry", metavar="DIR",
                     help="consult the content-addressed run registry in "
                          "DIR before simulating; a hit is served with "
                          "'cached: true' and its ledger manifest, a "
                          "miss runs then stores (heatmaps always on)")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP job server (async /v1 API, SSE, registry, "
             "leaderboard)")
    serve.add_argument("--data-dir", default="repro-serve-data",
                       metavar="DIR",
                       help="state root for jobs, registry, checkpoints, "
                            "and the leaderboard cache "
                            "(default: %(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--max-workers", type=int, default=2,
                       help="concurrent job executor threads "
                            "(default: %(default)s)")
    serve.add_argument("--job-timeout", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="default wall-clock budget per job; 0 "
                            "disables (default: %(default)s)")
    serve.set_defaults(func=_cmd_serve)

    live = sub.add_parser(
        "live",
        help="drive a policy from a streaming feed (no lookahead)")
    live.add_argument("policy", nargs="?", choices=SCHEDULER_NAMES,
                      help="scheduling policy (omit with --resume)")
    _add_cluster_args(live)
    live.add_argument("--hours", type=float, default=None,
                      help="trace duration in hours "
                           "(default: the paper's 48)")
    live.add_argument("--feed", default="replay",
                      choices=("replay", "synthetic", "jsonl"),
                      help="arrival source: replay the batch trace, a "
                           "seeded synthetic arrival process, or "
                           "line-delimited JSON (default: %(default)s)")
    live.add_argument("--feed-file", metavar="PATH",
                      help="jsonl feed source (default: stdin)")
    live.add_argument("--feed-seed", type=int, default=None,
                      help="synthetic feed seed (default: --seed)")
    live.add_argument("--forecaster", default="oracle",
                      choices=("oracle", "last-value"),
                      help="GV forecaster (default: %(default)s; "
                           "oracle reproduces the offline run exactly)")
    live.add_argument("--decision-every", type=int, default=60,
                      metavar="STEPS",
                      help="retarget cadence in scheduling intervals "
                           "(default: %(default)s)")
    live.add_argument("--mpc", action="store_true",
                      help="race candidate GVs through shadow "
                           "simulations at each decision boundary")
    live.add_argument("--mpc-horizon", type=int, default=60,
                      metavar="STEPS",
                      help="MPC forecast window (default: %(default)s)")
    live.add_argument("--speedup", type=float, default=None,
                      metavar="X",
                      help="wall-clock pacing: X simulated seconds per "
                           "real second (default: fully accelerated)")
    live.add_argument("--timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="cooperative wall-clock budget for the run")
    live.add_argument("--telemetry", metavar="DIR",
                      help="write JSONL trace + metrics + manifest")
    live.add_argument("--checks", choices=("off", "cheap", "full"),
                      default=None, help="invariant sanitizer level")
    live.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N", help="snapshot every N ticks")
    live.add_argument("--checkpoint-dir", metavar="DIR",
                      help="where snapshots land")
    live.add_argument("--resume", metavar="SNAPSHOT",
                      help="continue a live run from a mid-stream "
                           "snapshot (state migration)")
    live.add_argument("--report", metavar="PATH",
                      help="write the full live-run report as JSON")
    live.set_defaults(func=_cmd_live)

    scenario = sub.add_parser(
        "scenario",
        help="stress scenarios: list, run one verified, run the suite")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)

    sc_list = scenario_sub.add_parser("list",
                                      help="list the scenario library")
    sc_list.set_defaults(func=_cmd_scenario_list)

    def _add_scenario_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--servers", type=int, default=None,
                       help="rescale the scenario cluster (default: "
                            "the library's 100)")
        p.add_argument("--hours", type=float, default=None,
                       help="rescale the trace duration (default: the "
                            "full two days)")
        p.add_argument("--seed", type=int, default=None,
                       help="reseed the scenario (default: library's)")
        p.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-run wall-clock budget; a run over "
                            "budget becomes a structured failure")
        p.add_argument("--telemetry", metavar="DIR",
                       help="write per-run telemetry bundles (the "
                            "manifest records the scenario sha)")
        p.add_argument("--checks", choices=("off", "cheap", "full"),
                       default=None,
                       help="invariant sanitizer level (default: "
                            "REPRO_CHECKS, else off)")

    sc_run = scenario_sub.add_parser(
        "run", help="run one scenario + matched baseline and verify")
    sc_run.add_argument("name", help="library scenario name")
    sc_run.add_argument("--policy", choices=SCHEDULER_NAMES,
                        default="vmt-ta")
    _add_scenario_scale_args(sc_run)
    sc_run.set_defaults(func=_cmd_scenario_run)

    sc_suite = scenario_sub.add_parser(
        "suite",
        help="run scenarios x policies fault-tolerantly, ranked report")
    sc_suite.add_argument("--scenarios", nargs="+", default=None,
                          help="library scenario names (default: all)")
    sc_suite.add_argument("--policies", nargs="+",
                          choices=SCHEDULER_NAMES, default=None,
                          help="policies to rank (default: all five)")
    sc_suite.add_argument("--workers", type=int, default=1,
                          help="worker processes (default 1 = serial; "
                               "0 = all cores)")
    _add_scenario_scale_args(sc_suite)
    sc_suite.set_defaults(func=_cmd_scenario_suite)

    check = sub.add_parser(
        "check",
        help="diff the golden configs against committed fingerprints")
    check.add_argument("--policies", nargs="+", choices=SCHEDULER_NAMES,
                       default=None,
                       help="policies to check (default: all)")
    check.add_argument("--checks", choices=("off", "cheap", "full"),
                       default="full",
                       help="sanitizer level for the re-runs "
                            "(default full)")
    check.add_argument("--update", action="store_true",
                       help="re-capture the goldens instead of diffing "
                            "(after an intentional behavior change)")
    check.set_defaults(func=_cmd_check)

    resilience = sub.add_parser(
        "resilience",
        help="compare policies under an injected fault scenario")
    _add_cluster_args(resilience)
    _add_fault_args(resilience)
    resilience.add_argument("--policies", nargs="+",
                            choices=SCHEDULER_NAMES,
                            default=["round-robin", "coolest-first",
                                     "vmt-ta", "vmt-wa"])
    resilience.add_argument("--fraction", type=float, default=0.05,
                            help="default scenario: hot-group fraction "
                                 "to kill (default 0.05)")
    resilience.add_argument("--at", type=float, default=20.0,
                            help="default scenario: failure hour "
                                 "(default 20, the load peak)")
    resilience.set_defaults(func=_cmd_resilience)

    compare = sub.add_parser("compare",
                             help="compare policies vs round robin")
    _add_cluster_args(compare)
    compare.add_argument("--policies", nargs="+",
                         choices=SCHEDULER_NAMES,
                         default=["coolest-first", "vmt-ta", "vmt-wa"])
    compare.set_defaults(func=_cmd_compare)

    sweep = sub.add_parser("sweep", help="sweep the grouping value")
    _add_cluster_args(sweep)
    sweep.add_argument("--start", type=float, default=14.0)
    sweep.add_argument("--stop", type=float, default=30.0)
    sweep.add_argument("--step", type=float, default=2.0)
    sweep.add_argument("--policies", nargs="+",
                       choices=("vmt-ta", "vmt-wa", "vmt-preserve"),
                       default=["vmt-ta", "vmt-wa"])
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes for the sweep points "
                            "(default 1 = serial; 0 = all cores)")
    sweep.add_argument("--workers-mode", choices=("process", "thread"),
                       default="process",
                       help="pool flavor for parallel sweeps: thread "
                            "workers share the read-only trace arrays "
                            "(pairs well with --backend fast)")
    sweep.add_argument("--backend", choices=("reference", "fast"),
                       default=None,
                       help="tick engine for every sweep point "
                            "(default: REPRO_BACKEND, else reference)")
    sweep.add_argument("--telemetry", metavar="DIR",
                       help="write one telemetry bundle per sweep point "
                            "into this directory")
    sweep.add_argument("--checks", choices=("off", "cheap", "full"),
                       default=None,
                       help="invariant sanitizer level for every sweep "
                            "point (default: REPRO_CHECKS, else off)")
    sweep.set_defaults(func=_cmd_sweep)

    profile = sub.add_parser(
        "profile", help="per-subsystem tick timing for one run")
    _add_cluster_args(profile)
    profile.add_argument("--policy", choices=SCHEDULER_NAMES,
                         default="vmt-ta")
    profile.add_argument("--backend", choices=("reference", "fast"),
                         default=None,
                         help="tick engine to profile (fast reports "
                              "kernel-stage sections instead of "
                              "per-tick ones)")
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser("trace", help="show the two-day trace")
    trace.add_argument("--servers", type=int, default=100)
    trace.add_argument("--points", type=int, default=25)
    trace.set_defaults(func=_cmd_trace)

    heatmap = sub.add_parser("heatmap", help="ASCII cluster heatmaps")
    _add_cluster_args(heatmap)
    heatmap.add_argument("--policy", choices=SCHEDULER_NAMES,
                         default="vmt-ta")
    heatmap.set_defaults(func=_cmd_heatmap)

    tco = sub.add_parser("tco", help="datacenter TCO what-if")
    tco.add_argument("--servers", type=int, default=100,
                     help="cluster size used to measure the reduction")
    tco.add_argument("--seed", type=int, default=7)
    tco.add_argument("--reduction", type=float, default=None,
                     help="skip simulation; use this fraction (e.g. 0.128)")
    tco.set_defaults(func=_cmd_tco)

    fleet = sub.add_parser(
        "fleet",
        help="simulate a multi-datacenter fleet (sites, tariffs, "
             "carbon, batteries, cross-site routing)")
    _add_cluster_args(fleet)
    fleet.add_argument("--sites", type=int, default=3,
                       help="homogeneous site count (default: "
                            "%(default)s); ignored with --demo")
    fleet.add_argument("--demo", action="store_true",
                       help="run the documented 3-site heterogeneous "
                            "fleet (CPU+GPU classes, two tariffs, a "
                            "battery site)")
    from .fleet.spec import FLEET_POLICIES
    fleet.add_argument("--fleet-policy", default="independent",
                       choices=sorted(FLEET_POLICIES),
                       help="fleet-level strategy (default: %(default)s)")
    fleet.add_argument("--policy", choices=SCHEDULER_NAMES,
                       default="round-robin",
                       help="per-site VMT scheduler "
                            "(default: %(default)s)")
    fleet.add_argument("--stagger", type=float, default=0.0,
                       metavar="HOURS",
                       help="trace stagger between sites (wrapping)")
    fleet.add_argument("--hours", type=float, default=None,
                       help="trace duration in hours "
                            "(default: the paper's 48)")
    fleet.add_argument("--max-workers", type=int, default=1,
                       metavar="N",
                       help="worker processes for unrouted fleets")
    fleet.add_argument("--telemetry", metavar="DIR",
                       help="write per-site telemetry bundles here")
    fleet.add_argument("--checks", choices=("off", "cheap", "full"),
                       default=None,
                       help="invariant sanitizer + fleet verifier level")
    fleet.add_argument("--json", metavar="PATH",
                       help="write the fleet summary as JSON")
    fleet.set_defaults(func=_cmd_fleet)

    ledger = sub.add_parser(
        "ledger", help="list or verify run manifests in a telemetry dir")
    ledger.add_argument("dir", help="telemetry directory to inspect")
    ledger.add_argument("--verify", action="store_true",
                        help="validate every recorded JSONL trace "
                             "against the schema")
    ledger.set_defaults(func=_cmd_ledger)

    info = sub.add_parser("info", help="workloads and calibration")
    info.add_argument("--servers", type=int, default=1000)
    info.set_defaults(func=_cmd_info)

    experiments = sub.add_parser(
        "experiments", help="list or run the paper's experiments")
    experiments.add_argument("id", nargs="?", default=None,
                             help="experiment id (omit to list)")
    experiments.add_argument("--servers", type=int, default=None,
                             help="override cluster size where supported")
    experiments.set_defaults(func=_cmd_experiments)

    validate = sub.add_parser(
        "validate", help="check the calibration invariants")
    validate.add_argument("--simulate", action="store_true",
                          help="also run simulation-backed checks")
    validate.add_argument("--servers", type=int, default=50)
    validate.add_argument("--seed", type=int, default=7)
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

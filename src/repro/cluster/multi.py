"""Multi-cluster datacenter simulation.

Section IV-E scales the single-cluster DCsim results to the datacenter
"multiplied linearly", which is exact when every cluster sees the same
trace.  This module simulates the datacenter directly -- K clusters,
each with its own scheduler and (optionally time-shifted) trace -- and
aggregates the cooling load the shared plant must remove.  That enables
studies the linear scaling cannot express: timezone-staggered load,
per-cluster policy mixes, and how VMT composes with the natural
flattening that staggering already provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError, SimulationError
from ..obs.telemetry import TelemetryLike, telemetry_directory
from ..perf.runner import ExperimentRunner, Outcome, RunFailure, RunSpec
from ..workloads.trace import TraceMatrix
from .metrics import SimulationResult


def collect_cluster_results(outcomes: Sequence[Outcome], *,
                            what: str = "cluster"
                            ) -> List[SimulationResult]:
    """Unwrap runner outcomes, surfacing failures as a readable error.

    A pool worker that fails twice comes back as a
    :class:`~repro.perf.runner.RunFailure` row, not a result -- reading
    ``.cooling_load_w`` off it would die with a bare ``AttributeError``
    that names nothing.  Instead, raise a :class:`SimulationError`
    listing every failed index, its policy, and the traceback captured
    inside the worker.
    """
    failures = [(index, outcome) for index, outcome in enumerate(outcomes)
                if isinstance(outcome, RunFailure)]
    if failures:
        lines = []
        for index, failure in failures:
            lines.append(
                f"{what} {index} (policy '{failure.spec.policy}', "
                f"run '{failure.spec.name}') failed after "
                f"{failure.attempts} attempt(s) with "
                f"{failure.error_type}: {failure.message}")
            if failure.traceback_text:
                lines.append(failure.traceback_text.rstrip())
        raise SimulationError(
            f"{len(failures)} of {len(outcomes)} {what} run(s) failed:\n"
            + "\n".join(lines))
    return list(outcomes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DatacenterResult:
    """Aggregated outcome of a multi-cluster run."""

    cluster_results: List[SimulationResult]
    times_s: np.ndarray
    total_cooling_load_w: np.ndarray

    @property
    def num_clusters(self) -> int:
        """How many clusters were simulated."""
        return len(self.cluster_results)

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak of the datacenter-wide cooling load."""
        return float(self.total_cooling_load_w.max())

    def peak_reduction_vs(self, baseline: "DatacenterResult") -> float:
        """Fractional peak reduction against another datacenter run."""
        base = baseline.peak_cooling_load_w
        if base <= 0:
            raise SimulationError("baseline peak must be positive")
        return 1.0 - self.peak_cooling_load_w / base


class MultiClusterSimulation:
    """K clusters sharing one cooling plant.

    Parameters
    ----------
    config:
        Per-cluster configuration (every cluster uses the same one; the
        per-cluster seed is derived so traces and noise differ).
    num_clusters:
        How many clusters to simulate.
    policies:
        Scheduler name per cluster, or a single name for all.
    stagger_hours:
        Time shift applied to cluster ``k``'s trace as
        ``k * stagger_hours`` (wrapping), emulating clusters that serve
        different regions.
    max_workers:
        Worker-process bound for the underlying
        :class:`~repro.perf.runner.ExperimentRunner`; ``1`` (the
        default) simulates the clusters serially in-process, ``None``
        uses every core.  Results are identical either way.
    record_heatmaps:
        Record per-server temperature heatmaps on every cluster result.
    telemetry:
        A directory (or :class:`~repro.obs.telemetry.Telemetry`, of
        which only the directory is used) receiving one telemetry
        bundle per cluster.
    """

    def __init__(self, config: SimulationConfig, num_clusters: int, *,
                 policies: Sequence[str] = ("round-robin",),
                 stagger_hours: float = 0.0,
                 max_workers: Optional[int] = 1,
                 record_heatmaps: bool = False,
                 telemetry: "TelemetryLike" = None) -> None:
        config.validate()
        if num_clusters <= 0:
            raise ConfigurationError("need at least one cluster")
        if len(policies) not in (1, num_clusters):
            raise ConfigurationError(
                "pass one policy or one per cluster")
        self._config = config
        self._k = num_clusters
        if len(policies) == 1:
            policies = tuple(policies) * num_clusters
        self._policies = tuple(policies)
        self._stagger_h = float(stagger_hours)
        self._max_workers = max_workers
        self._record_heatmaps = record_heatmaps
        self._telemetry_dir = telemetry_directory(telemetry)

    def _config_for(self, index: int) -> SimulationConfig:
        """Per-cluster config: the shared one under a derived seed."""
        return self._config.replace(seed=self._config.seed + index)

    def _spec_for(self, index: int) -> RunSpec:
        """The cluster's run, as an independent job.

        The trace is generated from the cluster's *derived* seed (its
        ``"trace"`` RNG stream), exactly as :class:`ClusterSimulation`
        would when handed no trace -- so staggered clusters genuinely
        differ in trace noise, as the class docstring promises -- and
        then time-shifted by ``index * stagger_hours``.
        """
        return RunSpec(config=self._config_for(index),
                       policy=self._policies[index],
                       label=f"cluster-{index}[{self._policies[index]}]",
                       trace_shift_hours=index * self._stagger_h,
                       record_heatmaps=self._record_heatmaps,
                       telemetry_dir=self._telemetry_dir)

    def _trace_for(self, index: int) -> TraceMatrix:
        """The (seed-derived, shifted) trace cluster ``index`` runs."""
        from ..perf.cache import shared_trace
        return shared_trace(self._config_for(index),
                            shift_hours=index * self._stagger_h)

    def run(self) -> DatacenterResult:
        """Simulate every cluster and aggregate the cooling load.

        A cluster whose worker fails (even twice, exhausting the pool's
        bounded retry) aborts the run with a :class:`SimulationError`
        naming the cluster index, its policy, and the worker traceback
        -- never a bare ``AttributeError`` off a ``RunFailure`` row.
        """
        specs = [self._spec_for(index) for index in range(self._k)]
        outcomes = ExperimentRunner(self._max_workers).run(
            specs, raise_on_error=False)
        results = collect_cluster_results(outcomes)
        total: Optional[np.ndarray] = None
        for result in results:
            total = (result.cooling_load_w if total is None
                     else total + result.cooling_load_w)
        assert total is not None
        return DatacenterResult(cluster_results=list(results),
                                times_s=results[0].times_s,
                                total_cooling_load_w=total)


def run_datacenter(config: SimulationConfig, num_clusters: int, *,
                   policy: str = "round-robin",
                   stagger_hours: float = 0.0,
                   max_workers: Optional[int] = 1,
                   record_heatmaps: bool = False,
                   telemetry: TelemetryLike = None) -> DatacenterResult:
    """Convenience wrapper: one policy across ``num_clusters`` clusters."""
    return MultiClusterSimulation(config, num_clusters,
                                  policies=(policy,),
                                  stagger_hours=stagger_hours,
                                  max_workers=max_workers,
                                  record_heatmaps=record_heatmaps,
                                  telemetry=telemetry).run()

"""Wiring: trace + scheduler + cluster on the event engine.

One :class:`ClusterSimulation` reproduces the paper's experimental loop:
every minute (the wax model's update period) the scheduler observes the
sensed cluster state, places the current demand, and the physical models
advance one tick; a metrics collector records the series the figures
need.

When the configuration carries an enabled
:class:`~repro.config.FaultConfig` (or a
:class:`~repro.faults.injector.FaultInjector` is passed explicitly), the
injector's events run on the same engine: servers fail and recover,
sensors corrupt, cooling derates -- and the per-tick loop additionally
tracks availability, displaced jobs, and failure-to-replacement times.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from ..config import SimulationConfig
from ..core.scheduler import Placement, Scheduler
from ..errors import SimulationError
from ..kernel import resolve_backend
from ..obs.telemetry import Telemetry, TelemetryLike
from ..sim.engine import Engine
from ..sim.process import PeriodicProcess
from ..sim.rng import RngStreams
from ..workloads.trace import TraceMatrix, TwoDayTrace
from .cluster import Cluster
from .metrics import MetricsCollector, SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.registry import MetricRegistry
    from ..perf.profiler import TickProfiler
    from ..perf.runner import Deadline

#: Observer signature: (time_s, demand_vector, placement, cluster).
Observer = Callable[[float, np.ndarray, Placement, Cluster], None]


class ClusterSimulation:
    """A complete, runnable cluster experiment.

    Observers registered with :meth:`add_observer` are called after every
    tick with ``(time_s, demand, placement, cluster)`` -- the extension
    point for QoS monitoring, custom metrics, or live controllers.
    """

    def __init__(self, config: SimulationConfig, scheduler: Scheduler, *,
                 trace: Optional[TraceMatrix] = None,
                 record_heatmaps: bool = True,
                 fault_injector: Optional["FaultInjector"] = None,
                 profiler: Optional["TickProfiler"] = None,
                 telemetry: TelemetryLike = None,
                 checks: Optional[str] = None,
                 backend: Optional[str] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 deadline: Optional["Deadline"] = None) -> None:
        config.validate()
        self._deadline = deadline
        self._backend = resolve_backend(backend)
        self._kernel_path = "reference"
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise SimulationError("checkpoint_every must be positive")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise SimulationError(
                "checkpoint_every requires a checkpoint_dir")
        self._checkpoint_every = checkpoint_every
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_records: List[dict] = []
        self._restored = False
        if scheduler.config.num_servers != config.num_servers:
            raise SimulationError(
                "scheduler was built for a different cluster size")
        self._config = config
        self._streams = RngStreams(config.seed)
        if fault_injector is None and config.faults.enabled:
            from ..faults.injector import FaultInjector
            fault_injector = FaultInjector(config,
                                           rng_streams=self._streams)
        self._injector = fault_injector
        fault_state = (fault_injector.state
                       if fault_injector is not None else None)
        self._fault_state = fault_state
        self._telemetry = Telemetry.coerce(telemetry)
        if self._telemetry is not None and not self._telemetry.bound:
            self._telemetry.use_profiler(profiler)
            self._telemetry.bind(
                f"{scheduler.name}-n{config.num_servers}"
                f"-seed{config.seed}",
                capacity=config.trace.num_steps)
        if self._telemetry is not None and profiler is None:
            # A telemetry bundle built with profile=True carries its own
            # profiler; adopt it so profiling and metrics share one
            # snapshot path.
            profiler = self._telemetry.profiler
        self._profiler = profiler
        self._cluster = Cluster(config, self._streams,
                                fault_state=fault_state,
                                profiler=profiler)
        self._scheduler = scheduler
        if trace is None:
            trace = TwoDayTrace(config.trace).generate(
                config.num_servers, config.server.cores,
                rng=self._streams.stream("trace"))
        if trace.total_cores != config.total_cores:
            trace = trace.scaled_to(config.num_servers, config.server.cores)
        self._trace = trace
        self._metrics = MetricsCollector(record_heatmaps=record_heatmaps,
                                         capacity=trace.num_steps)
        self._engine = Engine()
        self._step_index = 0
        self._stream_process: Optional[PeriodicProcess] = None
        self._stream_wall_start = 0.0
        self._observers: List[Observer] = []
        self._last_allocation: Optional[np.ndarray] = None
        # Event-edge state for the tracer (previous-tick values).
        self._prev_hot_size: Optional[int] = None
        self._prev_above_threshold = False
        self._prev_degraded = False
        if self._telemetry is not None:
            registry = self._telemetry.registry
            self._engine.register_metrics(registry)
            self._scheduler.register_metrics(registry)
            self._cluster.register_metrics(registry)
            if self._injector is not None:
                self._injector.register_metrics(registry)
                self._injector.set_tracer(self._telemetry.tracer)
            self._obs_registry: Optional["MetricRegistry"] = registry
            self._obs_tracer = self._telemetry.tracer
        else:
            self._obs_registry = None
            self._obs_tracer = None
        # Imported lazily so the checks package (which imports the
        # scheduler classes) never participates in this module's import.
        from ..checks.sanitizer import (SimulationSanitizer,
                                        resolve_check_level)
        level = resolve_check_level(checks, scheduler.name)
        if level == "off":
            self._sanitizer: Optional[SimulationSanitizer] = None
        else:
            self._sanitizer = SimulationSanitizer(
                config=config, cluster=self._cluster,
                scheduler=scheduler, metrics=self._metrics,
                level=level, tracer=self._obs_tracer)
            if self._obs_registry is not None:
                self._sanitizer.register_metrics(self._obs_registry)

    @property
    def sanitizer(self) -> Optional["SimulationSanitizer"]:
        """The attached invariant sanitizer, or ``None`` (checks off)."""
        return self._sanitizer

    @property
    def backend(self) -> str:
        """The resolved execution backend (``reference`` or ``fast``)."""
        return self._backend

    @property
    def kernel_path(self) -> str:
        """Which kernel the last :meth:`run` used.

        ``planned`` or ``stepped`` when a fast-path kernel ran,
        ``reference`` otherwise (including before any run).
        """
        return self._kernel_path

    def add_observer(self, observer: Observer) -> None:
        """Register a per-tick observer (see class docstring)."""
        self._observers.append(observer)

    @property
    def cluster(self) -> Cluster:
        """The physical cluster under simulation."""
        return self._cluster

    @property
    def trace(self) -> TraceMatrix:
        """The demand trace driving the run."""
        return self._trace

    @property
    def engine(self) -> Engine:
        """The discrete-event engine."""
        return self._engine

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        """The attached fault injector, if any."""
        return self._injector

    def _displaced_this_tick(self) -> int:
        """Job-cores orphaned by failures since the previous tick."""
        if self._fault_state is None:
            return 0
        newly_failed = self._fault_state.drain_newly_failed()
        if not newly_failed or self._last_allocation is None:
            return 0
        return int(self._last_allocation[newly_failed].sum())

    def _notify_observers(self, demand: np.ndarray, placement) -> None:
        """Dispatch observers; a raising observer aborts the run loudly.

        Without the wrapper an exception from one observer would unwind
        through the event engine mid-tick and leave the run silently
        truncated; instead it surfaces as a :class:`SimulationError`
        naming the culprit.
        """
        for observer in self._observers:
            try:
                observer(self._cluster.time_s, demand, placement,
                         self._cluster)
            except Exception as exc:
                name = getattr(observer, "__qualname__",
                               getattr(observer, "__name__",
                                       repr(observer)))
                raise SimulationError(
                    f"observer {name} raised {type(exc).__name__}: {exc}"
                ) from exc

    def _emit_tick_events(self, now_s: float, demand: np.ndarray,
                          placement: Placement, tick_start: float) -> None:
        """Emit the per-tick trace span plus edge-triggered events.

        Reads only ground-truth views and already-computed placement
        state, so emission can never perturb the simulated physics.
        """
        tracer = self._obs_tracer
        tracer.span("tick", now_s, time.perf_counter() - tick_start,
                    step=self._step_index, jobs=int(demand.sum()))
        hot = placement.hot_group_mask
        hot_size = int(hot.sum()) if hot is not None else None
        tracer.event("placement", now_s, jobs=placement.jobs_placed,
                     hot_group=hot_size)
        if hot_size is not None:
            if (self._prev_hot_size is not None
                    and hot_size != self._prev_hot_size):
                tracer.event("group-resize", now_s,
                             prev=self._prev_hot_size, size=hot_size)
            self._prev_hot_size = hot_size
        threshold = self._config.scheduler.wax_threshold
        above = int(np.count_nonzero(
            self._cluster.wax_melt_fraction_view >= threshold))
        if (above > 0) != self._prev_above_threshold:
            tracer.event("wax-threshold-crossing", now_s,
                         direction="melted" if above > 0 else "cleared",
                         servers_above=above, threshold=threshold)
            self._prev_above_threshold = above > 0
        if not self._prev_degraded and getattr(self._scheduler,
                                               "degraded", False):
            tracer.event("vmt-wa-degraded", now_s,
                         hot_group=hot_size)
            self._prev_degraded = True

    def _tick(self, now_s: float) -> None:
        if self._step_index >= self._trace.num_steps:
            return
        if self._deadline is not None:
            # Cooperative wall-clock budget: raises RunTimeout from inside
            # the tick, unwinding through the engine -- works on any
            # thread, unlike the SIGALRM scheme this replaced.
            self._deadline.check()
        prof = self._profiler
        tick_start = (time.perf_counter()
                      if self._obs_tracer is not None
                      and self._obs_tracer.enabled else 0.0)
        demand = self._trace.demand_at(self._step_index)
        displaced = self._displaced_this_tick()
        view = self._cluster.view()
        if prof is None:
            placement = self._scheduler.place(demand, view)
        else:
            mark = time.perf_counter()
            placement = self._scheduler.place(demand, view)
            prof.add("placement", time.perf_counter() - mark)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            mark = time.perf_counter() if prof is not None else 0.0
            sanitizer.check_placement(self._step_index, now_s, demand,
                                      view, placement)
            if prof is not None:
                prof.add("checks", time.perf_counter() - mark)
        if self._fault_state is not None:
            # The full demand (including any displaced jobs) has been
            # re-placed on surviving servers: pending failures recovered.
            self._fault_state.note_recovered(now_s)
        self._cluster.step(placement.allocation,
                           self._trace.step_seconds)
        mark = time.perf_counter() if prof is not None else 0.0
        if self._fault_state is None:
            self._metrics.record(
                self._cluster.time_s,
                air_temp_c=self._cluster.air_temp_c_view,
                melt_fraction=self._cluster.wax_melt_fraction_view,
                power_w=self._cluster.power_w_view,
                wax_absorption_w=self._cluster.wax_absorption_w_view,
                jobs=int(demand.sum()),
                hot_mask=placement.hot_group_mask,
                max_cpu_temp_c=float(
                    self._cluster.cpu_junction_temp_c.max()),
            )
        else:
            self._metrics.record(
                self._cluster.time_s,
                air_temp_c=self._cluster.air_temp_c_view,
                melt_fraction=self._cluster.wax_melt_fraction_view,
                power_w=self._cluster.power_w_view,
                wax_absorption_w=self._cluster.wax_absorption_w_view,
                jobs=int(demand.sum()),
                hot_mask=placement.hot_group_mask,
                max_cpu_temp_c=float(
                    self._cluster.cpu_junction_temp_c.max()),
                availability=self._fault_state.availability,
                displaced_jobs=displaced,
                cooling_capacity_factor=self._fault_state.cooling_factor,
            )
        if prof is not None:
            prof.add("metrics", time.perf_counter() - mark)
            prof.count_tick()
        if sanitizer is not None:
            mark = time.perf_counter() if prof is not None else 0.0
            sanitizer.check_state(self._step_index, now_s,
                                  self._trace.step_seconds)
            if prof is not None:
                prof.add("checks", time.perf_counter() - mark)
        if self._obs_registry is not None:
            self._obs_registry.snapshot_tick(self._cluster.time_s)
            if self._obs_tracer.enabled:
                self._emit_tick_events(now_s, demand, placement,
                                       tick_start)
        self._last_allocation = placement.allocation
        self._notify_observers(demand, placement)
        self._step_index += 1
        if (self._checkpoint_every is not None
                and self._step_index % self._checkpoint_every == 0):
            self._write_checkpoint()

    # -- checkpoint/resume ---------------------------------------------------

    def snapshot(self) -> "SimulationSnapshot":
        """Capture the complete run state at the current tick boundary.

        Valid between ticks (snapshots taken mid-callback would miss the
        in-flight tick); the checkpoint path calls it at the end of
        :meth:`_tick`, where the only live queue entries are
        reconstructable from configuration.
        """
        # Imported lazily: repro.state sits above the cluster layer.
        from ..obs.ledger import config_sha256, git_describe
        from ..state.snapshot import (SNAPSHOT_SCHEMA_VERSION,
                                      SimulationSnapshot)
        state = {
            "engine": self._engine.state_dict(),
            "streams": self._streams.state_dict(),
            "scheduler": self._scheduler.state_dict(),
            "cluster": self._cluster.state_dict(),
            "metrics": self._metrics.state_dict(),
            "faults": (self._injector.state_dict()
                       if self._injector is not None else None),
            "sim": {
                "last_allocation":
                    (None if self._last_allocation is None
                     else self._last_allocation.copy()),
                "prev_hot_size": self._prev_hot_size,
                "prev_above_threshold": self._prev_above_threshold,
                "prev_degraded": self._prev_degraded,
            },
        }
        if getattr(self._trace, "is_live", False):
            # Live runs carry the ingested demand prefix so a restored
            # process can treat the checkpoint as a state migration: the
            # buffer resumes exactly where ingestion left off.
            state["live"] = self._trace.state_dict()
        return SimulationSnapshot(
            schema=SNAPSHOT_SCHEMA_VERSION,
            tick=self._step_index,
            policy=self._scheduler.name.split("(")[0],
            scheduler_name=self._scheduler.name,
            record_heatmaps=self._metrics.record_heatmaps,
            config=self._config.to_dict(),
            config_sha256=config_sha256(self._config),
            trace_sha256=self._trace.fingerprint(),
            git_describe=git_describe(),
            state=state,
        )

    def restore(self, snapshot: "SimulationSnapshot", *,
                trace_check: bool = True) -> None:
        """Load a snapshot into this freshly constructed simulation.

        The simulation must have been built from the *same* experiment:
        config hash, scheduler name, trace fingerprint, heatmap setting,
        and fault-injector presence are all verified before any state is
        touched, so a stale checkpoint directory fails loudly instead of
        resuming the wrong run.  After a successful restore,
        :meth:`run` continues from the captured tick.

        ``trace_check=False`` skips the trace-fingerprint guard -- the
        escape hatch for MPC shadow simulations, which deliberately fork
        a live snapshot onto a *forecast* trace that diverges from the
        observed history beyond the fork point.
        """
        from ..errors import CheckpointError
        from ..obs.ledger import config_sha256

        if self._step_index != 0 or self._engine.events_dispatched != 0:
            raise CheckpointError(
                "restore() requires a freshly constructed simulation")
        own_sha = config_sha256(self._config)
        if snapshot.config_sha256 != own_sha:
            raise CheckpointError(
                "snapshot was taken under a different configuration "
                f"(config sha {snapshot.config_sha256[:12]} != "
                f"{own_sha[:12]})")
        if snapshot.scheduler_name != self._scheduler.name:
            raise CheckpointError(
                f"snapshot holds policy {snapshot.scheduler_name!r}, "
                f"this simulation runs {self._scheduler.name!r}")
        if (getattr(self._trace, "is_live", False)
                and "live" in snapshot.state):
            # Replaying the ingested prefix must happen before the
            # fingerprint guard: a live buffer's fingerprint covers its
            # filled rows, so a fresh (empty) buffer can only match the
            # snapshot after the captured prefix is loaded back.
            self._trace.load_state_dict(snapshot.state["live"])
        if trace_check and snapshot.trace_sha256 != self._trace.fingerprint():
            raise CheckpointError(
                "snapshot was taken against a different demand trace")
        if snapshot.record_heatmaps != self._metrics.record_heatmaps:
            raise CheckpointError(
                "snapshot and simulation disagree on record_heatmaps")
        has_faults = snapshot.state["faults"] is not None
        if has_faults != (self._injector is not None):
            raise CheckpointError(
                "snapshot and simulation disagree on fault injection")

        state = snapshot.state
        self._engine.load_state_dict(state["engine"])
        self._streams.load_state_dict(state["streams"])
        self._scheduler.load_state_dict(state["scheduler"])
        self._cluster.load_state_dict(state["cluster"])
        self._metrics.load_state_dict(state["metrics"])
        if self._injector is not None:
            self._injector.load_state_dict(state["faults"])
        sim_state = state["sim"]
        alloc = sim_state["last_allocation"]
        self._last_allocation = (
            None if alloc is None
            else np.asarray(alloc, dtype=np.int64).copy())
        hot = sim_state["prev_hot_size"]
        self._prev_hot_size = None if hot is None else int(hot)
        self._prev_above_threshold = bool(
            sim_state["prev_above_threshold"])
        self._prev_degraded = bool(sim_state["prev_degraded"])
        self._step_index = int(snapshot.tick)
        self._restored = True

    def _write_checkpoint(self) -> None:
        """Serialize the current state into the checkpoint directory."""
        from ..state.checkpoint import checkpoint_path
        from ..state.snapshot import save_snapshot
        path = checkpoint_path(self._checkpoint_dir, self._step_index)
        manifest = save_snapshot(self.snapshot(), path)
        self._checkpoint_records.append({
            "tick": self._step_index,
            "file": os.path.abspath(path),
            "sha256": manifest["snapshot_sha256"],
        })

    @property
    def checkpoint_records(self) -> List[dict]:
        """Checkpoints written so far (tick, file, payload sha)."""
        return list(self._checkpoint_records)

    def run(self) -> SimulationResult:
        """Run the full trace and return the collected result.

        With telemetry attached, the bundle is finished on the way out:
        the trace is flushed, metric columns saved, and the run manifest
        written -- none of which touches the returned result, so the
        fingerprint is bit-identical with telemetry on or off.

        On a restored simulation the scheduler is *not* reset (its
        mid-run state came from the snapshot) and the tick process and
        fault events re-align to the next unfinished tick.
        """
        if self._backend == "fast":
            from ..kernel import run_fast
            result = run_fast(self)
            if result is not None:
                return result
            # No kernel applies (fault injection or telemetry attached):
            # fall through to the reference engine loop.
        wall_start = time.perf_counter()
        step_s = self._trace.step_seconds
        if self._restored:
            if self._injector is not None:
                self._injector.reattach(
                    self._engine, self._cluster,
                    next_tick_s=self._step_index * step_s)
        else:
            self._scheduler.reset()
            if self._injector is not None:
                self._injector.attach(self._engine, self._cluster)
        if self._obs_tracer is not None and self._obs_tracer.enabled:
            self._obs_tracer.event(
                "run-start", self._engine.now,
                run_id=self._telemetry.run_id,
                scheduler=self._scheduler.name,
                servers=self._config.num_servers,
                ticks=self._trace.num_steps)
        process = PeriodicProcess(
            self._engine, step_s, self._tick,
            start_at=(self._step_index * step_s if self._restored
                      else None),
            name="scheduler-tick")
        duration = self._trace.num_steps * self._trace.step_seconds
        self._engine.run_until(duration - 1e-9)
        process.stop()
        profile = (self._profiler.snapshot()
                   if self._profiler is not None else None)
        if self._injector is not None:
            self._injector.detach()
            result = self._metrics.finish(
                self._config, self._scheduler.name,
                recovery_times_s=self._fault_state.recovery_times_s,
                profile=profile)
        else:
            result = self._metrics.finish(self._config,
                                          self._scheduler.name,
                                          profile=profile)
        if self._telemetry is not None:
            if self._obs_tracer.enabled:
                self._obs_tracer.event("run-end", self._cluster.time_s,
                                       fingerprint=result.fingerprint())
            self._telemetry.finish(
                config=self._config,
                scheduler_name=self._scheduler.name,
                result=result,
                trace_sha256=self._trace.fingerprint(),
                wall_clock_s=time.perf_counter() - wall_start,
                checkpoints=(self._checkpoint_records or None))
        return result

    # -- streaming (live) mode ---------------------------------------------

    def begin_streaming(self) -> None:
        """Arm the tick process for incremental, no-lookahead driving.

        The streaming spelling of :meth:`run`'s prologue: the caller (a
        :class:`~repro.live.LiveRunner`) feeds demand rows into the live
        trace buffer and calls :meth:`advance_stream` once per arrival,
        so the engine only ever advances to times whose demand has
        actually been observed.  Tick events fire at exactly the same
        simulation times as a batch run -- ``k * step_seconds`` -- which
        is what keeps a live run with a perfect forecaster bit-identical
        to the offline batch fingerprint.

        Fault injection is not supported live yet: scripted fault events
        are scheduled against the full run span up front, which would be
        lookahead.
        """
        if self._injector is not None:
            raise SimulationError(
                "live streaming does not support fault injection")
        if getattr(self, "_stream_process", None) is not None:
            raise SimulationError("begin_streaming called twice")
        self._stream_wall_start = time.perf_counter()
        step_s = self._trace.step_seconds
        if not self._restored:
            self._scheduler.reset()
        if self._obs_tracer is not None and self._obs_tracer.enabled:
            self._obs_tracer.event(
                "run-start", self._engine.now,
                run_id=self._telemetry.run_id,
                scheduler=self._scheduler.name,
                servers=self._config.num_servers,
                ticks=self._trace.num_steps,
                live=True)
        self._stream_process = PeriodicProcess(
            self._engine, step_s, self._tick,
            start_at=(self._step_index * step_s if self._restored
                      else None),
            name="scheduler-tick")

    def advance_stream(self, step_index: int) -> None:
        """Fire the tick for ``step_index`` (its demand row must be fed).

        Delegates to :meth:`Engine.advance_to` at ``step_index *
        step_seconds`` -- the exact time the batch tick process would
        have fired this tick.
        """
        if getattr(self, "_stream_process", None) is None:
            raise SimulationError(
                "advance_stream requires begin_streaming first")
        self._engine.advance_to(step_index * self._trace.step_seconds)

    def finish_streaming(self) -> SimulationResult:
        """Tear down the stream and return the collected result.

        The streaming spelling of :meth:`run`'s epilogue; safe to call
        after any number of ticks (an early-closed feed simply yields a
        shorter result).
        """
        if getattr(self, "_stream_process", None) is None:
            raise SimulationError(
                "finish_streaming requires begin_streaming first")
        self._stream_process.stop()
        self._stream_process = None
        profile = (self._profiler.snapshot()
                   if self._profiler is not None else None)
        result = self._metrics.finish(self._config,
                                      self._scheduler.name,
                                      profile=profile)
        if self._telemetry is not None:
            if self._obs_tracer.enabled:
                self._obs_tracer.event("run-end", self._cluster.time_s,
                                       fingerprint=result.fingerprint())
            self._telemetry.finish(
                config=self._config,
                scheduler_name=self._scheduler.name,
                result=result,
                trace_sha256=self._trace.fingerprint(),
                wall_clock_s=(time.perf_counter()
                              - self._stream_wall_start),
                checkpoints=(self._checkpoint_records or None))
        return result


def run_simulation(config: SimulationConfig, scheduler: Scheduler, *,
                   trace: Optional[TraceMatrix] = None,
                   record_heatmaps: bool = True,
                   fault_injector: Optional["FaultInjector"] = None,
                   profiler: Optional["TickProfiler"] = None,
                   telemetry: TelemetryLike = None,
                   checks: Optional[str] = None,
                   backend: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   checkpoint_dir: Optional[str] = None,
                   deadline: Optional["Deadline"] = None) -> SimulationResult:
    """Convenience one-call experiment runner."""
    return ClusterSimulation(config, scheduler, trace=trace,
                             record_heatmaps=record_heatmaps,
                             fault_injector=fault_injector,
                             profiler=profiler,
                             telemetry=telemetry,
                             checks=checks,
                             backend=backend,
                             checkpoint_every=checkpoint_every,
                             checkpoint_dir=checkpoint_dir,
                             deadline=deadline).run()

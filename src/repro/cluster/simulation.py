"""Wiring: trace + scheduler + cluster on the event engine.

One :class:`ClusterSimulation` reproduces the paper's experimental loop:
every minute (the wax model's update period) the scheduler observes the
sensed cluster state, places the current demand, and the physical models
advance one tick; a metrics collector records the series the figures
need.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..config import SimulationConfig
from ..core.scheduler import Scheduler
from ..errors import SimulationError
from ..sim.engine import Engine
from ..sim.process import PeriodicProcess
from ..sim.rng import RngStreams
from ..workloads.trace import TraceMatrix, TwoDayTrace
from .cluster import Cluster
from .metrics import MetricsCollector, SimulationResult

#: Observer signature: (time_s, demand_vector, placement, cluster).
Observer = Callable[[float, np.ndarray, "object", Cluster], None]


class ClusterSimulation:
    """A complete, runnable cluster experiment.

    Observers registered with :meth:`add_observer` are called after every
    tick with ``(time_s, demand, placement, cluster)`` -- the extension
    point for QoS monitoring, custom metrics, or live controllers.
    """

    def __init__(self, config: SimulationConfig, scheduler: Scheduler, *,
                 trace: Optional[TraceMatrix] = None,
                 record_heatmaps: bool = True) -> None:
        config.validate()
        if scheduler.config.num_servers != config.num_servers:
            raise SimulationError(
                "scheduler was built for a different cluster size")
        self._config = config
        self._streams = RngStreams(config.seed)
        self._cluster = Cluster(config, self._streams)
        self._scheduler = scheduler
        if trace is None:
            trace = TwoDayTrace(config.trace).generate(
                config.num_servers, config.server.cores,
                rng=self._streams.stream("trace"))
        if trace.total_cores != config.total_cores:
            trace = trace.scaled_to(config.num_servers, config.server.cores)
        self._trace = trace
        self._metrics = MetricsCollector(record_heatmaps=record_heatmaps)
        self._engine = Engine()
        self._step_index = 0
        self._observers: List[Observer] = []

    def add_observer(self, observer: Observer) -> None:
        """Register a per-tick observer (see class docstring)."""
        self._observers.append(observer)

    @property
    def cluster(self) -> Cluster:
        """The physical cluster under simulation."""
        return self._cluster

    @property
    def trace(self) -> TraceMatrix:
        """The demand trace driving the run."""
        return self._trace

    @property
    def engine(self) -> Engine:
        """The discrete-event engine."""
        return self._engine

    def _tick(self, now_s: float) -> None:
        if self._step_index >= self._trace.num_steps:
            return
        demand = self._trace.demand_at(self._step_index)
        view = self._cluster.view()
        placement = self._scheduler.place(demand, view)
        self._cluster.step(placement.allocation,
                           self._trace.step_seconds)
        self._metrics.record(
            self._cluster.time_s,
            air_temp_c=self._cluster.air_temp_c,
            melt_fraction=self._cluster.wax_melt_fraction,
            power_w=self._cluster.power_w,
            wax_absorption_w=self._cluster.wax_absorption_w,
            jobs=int(demand.sum()),
            hot_mask=placement.hot_group_mask,
            max_cpu_temp_c=float(self._cluster.cpu_junction_temp_c.max()),
        )
        for observer in self._observers:
            observer(self._cluster.time_s, demand, placement,
                     self._cluster)
        self._step_index += 1

    def run(self) -> SimulationResult:
        """Run the full trace and return the collected result."""
        self._scheduler.reset()
        process = PeriodicProcess(self._engine, self._trace.step_seconds,
                                  self._tick, name="scheduler-tick")
        duration = self._trace.num_steps * self._trace.step_seconds
        self._engine.run_until(duration - 1e-9)
        process.stop()
        return self._metrics.finish(self._config, self._scheduler.name)


def run_simulation(config: SimulationConfig, scheduler: Scheduler, *,
                   trace: Optional[TraceMatrix] = None,
                   record_heatmaps: bool = True) -> SimulationResult:
    """Convenience one-call experiment runner."""
    return ClusterSimulation(config, scheduler, trace=trace,
                             record_heatmaps=record_heatmaps).run()

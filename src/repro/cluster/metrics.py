"""Metrics collection and simulation results.

The evaluation's figures all derive from a handful of series recorded per
scheduling tick: the cluster cooling load (Figs. 13/16), per-server air
temperature and wax-melt heatmaps (Figs. 9-11, 14), and group-mean
temperatures (Figs. 12/15).  :class:`MetricsCollector` accumulates them;
:class:`SimulationResult` is the immutable analysis-friendly product.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError

#: Scalar series buffers, in (attribute, dtype) order.  Kept in one table
#: so the preallocation, growth, and finish paths cannot drift apart.
_SCALAR_SERIES = (
    ("times_s", np.float64),
    ("cooling_load_w", np.float64),
    ("it_power_w", np.float64),
    ("wax_absorption_w", np.float64),
    ("mean_temp_c", np.float64),
    ("hot_group_mean_temp_c", np.float64),
    ("cold_group_mean_temp_c", np.float64),
    ("mean_melt_fraction", np.float64),
    ("hot_group_size", np.int64),
    ("jobs", np.int64),
    ("max_cpu_temp_c", np.float64),
    ("availability", np.float64),
    ("displaced_jobs", np.int64),
    ("cooling_capacity_factor", np.float64),
)

#: Default buffer size when the caller cannot predict the tick count.
_DEFAULT_CAPACITY = 1024


class MetricsCollector:
    """Accumulates per-tick series during a simulation run.

    Buffers are preallocated numpy arrays, not growing Python lists:
    pass ``capacity`` (normally ``trace.num_steps``) and every tick is a
    handful of scalar stores into fixed storage.  When the capacity is
    unknown (or underestimated) the buffers double transparently.

    ``record_heatmaps=False`` skips the (steps x servers) arrays to keep
    1,000-server parameter sweeps light.
    """

    def __init__(self, record_heatmaps: bool = True,
                 capacity: Optional[int] = None) -> None:
        self._record_heatmaps = record_heatmaps
        self._capacity = (int(capacity) if capacity and capacity > 0
                          else _DEFAULT_CAPACITY)
        self._size = 0
        self._series: Dict[str, np.ndarray] = {
            name: np.empty(self._capacity, dtype=dtype)
            for name, dtype in _SCALAR_SERIES}
        # Heatmap buffers need the server count; allocated lazily on the
        # first record.
        self._temp_map: Optional[np.ndarray] = None
        self._melt_map: Optional[np.ndarray] = None

    def _grow(self) -> None:
        self._capacity *= 2
        for name, buffer in self._series.items():
            grown = np.empty(self._capacity, dtype=buffer.dtype)
            grown[:self._size] = buffer[:self._size]
            self._series[name] = grown
        for attr in ("_temp_map", "_melt_map"):
            buffer = getattr(self, attr)
            if buffer is not None:
                grown = np.empty((self._capacity, buffer.shape[1]),
                                 dtype=buffer.dtype)
                grown[:self._size] = buffer[:self._size]
                setattr(self, attr, grown)

    def record(self, time_s: float, *, air_temp_c: np.ndarray,
               melt_fraction: np.ndarray, power_w: np.ndarray,
               wax_absorption_w: np.ndarray, jobs: int,
               hot_mask: Optional[np.ndarray] = None,
               max_cpu_temp_c: float = float("nan"),
               availability: float = 1.0, displaced_jobs: int = 0,
               cooling_capacity_factor: float = 1.0) -> None:
        """Record one tick's state."""
        if self._size == self._capacity:
            self._grow()
        idx = self._size
        series = self._series
        series["times_s"][idx] = time_s
        series["max_cpu_temp_c"][idx] = max_cpu_temp_c
        series["availability"][idx] = availability
        series["displaced_jobs"][idx] = displaced_jobs
        series["cooling_capacity_factor"][idx] = cooling_capacity_factor
        total_power = float(power_w.sum())
        total_absorbed = float(wax_absorption_w.sum())
        series["it_power_w"][idx] = total_power
        series["wax_absorption_w"][idx] = total_absorbed
        series["cooling_load_w"][idx] = total_power - total_absorbed
        series["mean_temp_c"][idx] = air_temp_c.mean()
        series["mean_melt_fraction"][idx] = melt_fraction.mean()
        series["jobs"][idx] = jobs
        if hot_mask is not None and hot_mask.any():
            series["hot_group_mean_temp_c"][idx] = \
                air_temp_c[hot_mask].mean()
            cold = ~hot_mask
            series["cold_group_mean_temp_c"][idx] = (
                air_temp_c[cold].mean() if cold.any() else float("nan"))
            series["hot_group_size"][idx] = int(hot_mask.sum())
        else:
            series["hot_group_mean_temp_c"][idx] = float("nan")
            series["cold_group_mean_temp_c"][idx] = float("nan")
            series["hot_group_size"][idx] = 0
        if self._record_heatmaps:
            if self._temp_map is None:
                width = len(air_temp_c)
                self._temp_map = np.empty((self._capacity, width),
                                          dtype=np.float32)
                self._melt_map = np.empty((self._capacity, width),
                                          dtype=np.float32)
            self._temp_map[idx] = air_temp_c
            self._melt_map[idx] = melt_fraction
        self._size = idx + 1

    def fill_block(self, *, times_s: np.ndarray,
                   cooling_load_w: np.ndarray, it_power_w: np.ndarray,
                   wax_absorption_w: np.ndarray, mean_temp_c: np.ndarray,
                   hot_group_mean_temp_c: np.ndarray,
                   cold_group_mean_temp_c: np.ndarray,
                   mean_melt_fraction: np.ndarray, hot_group_size: int,
                   jobs: np.ndarray, max_cpu_temp_c: np.ndarray,
                   temp_map: Optional[np.ndarray] = None,
                   melt_map: Optional[np.ndarray] = None) -> None:
        """Record a whole fault-free run's series in one block write.

        The fast-path kernel computes every series as a column; this
        stores them straight into the preallocated buffers with no
        per-tick python, exactly as ``record`` would have, with the
        fault-only columns at their fault-free defaults.  Only valid on
        a fresh collector.
        """
        if self._size != 0:
            raise SimulationError(
                "fill_block requires a fresh collector")
        size = len(times_s)
        while self._capacity < size:
            self._grow()
        series = self._series
        series["times_s"][:size] = times_s
        series["cooling_load_w"][:size] = cooling_load_w
        series["it_power_w"][:size] = it_power_w
        series["wax_absorption_w"][:size] = wax_absorption_w
        series["mean_temp_c"][:size] = mean_temp_c
        series["hot_group_mean_temp_c"][:size] = hot_group_mean_temp_c
        series["cold_group_mean_temp_c"][:size] = cold_group_mean_temp_c
        series["mean_melt_fraction"][:size] = mean_melt_fraction
        series["hot_group_size"][:size] = hot_group_size
        series["jobs"][:size] = jobs
        series["max_cpu_temp_c"][:size] = max_cpu_temp_c
        series["availability"][:size] = 1.0
        series["displaced_jobs"][:size] = 0
        series["cooling_capacity_factor"][:size] = 1.0
        if self._record_heatmaps and temp_map is not None:
            width = temp_map.shape[1]
            self._temp_map = np.empty((self._capacity, width),
                                      dtype=np.float32)
            self._melt_map = np.empty((self._capacity, width),
                                      dtype=np.float32)
            self._temp_map[:size] = temp_map
            self._melt_map[:size] = melt_map
        self._size = size

    @property
    def size(self) -> int:
        """Ticks recorded so far."""
        return self._size

    @property
    def record_heatmaps(self) -> bool:
        """Whether per-server heatmaps are being collected."""
        return self._record_heatmaps

    def last_value(self, name: str) -> float:
        """The most recently recorded sample of a scalar series.

        Lets the :mod:`repro.checks` sanitizer audit what the collector
        actually stored (e.g. the cooling-load identity) without copying
        whole series mid-run.
        """
        if self._size == 0:
            raise SimulationError("no ticks were recorded")
        if name not in self._series:
            raise SimulationError(f"unknown metrics series {name!r}")
        return float(self._series[name][self._size - 1])

    def state_dict(self) -> Dict[str, Any]:
        """Rows recorded so far, trimmed to the live size."""
        return {
            "size": self._size,
            "record_heatmaps": self._record_heatmaps,
            "series": {name: self._series[name][:self._size].copy()
                       for name, _ in _SCALAR_SERIES},
            "temp_map": (None if self._temp_map is None
                         else self._temp_map[:self._size].copy()),
            "melt_map": (None if self._melt_map is None
                         else self._melt_map[:self._size].copy()),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore rows captured by :meth:`state_dict`."""
        if bool(state["record_heatmaps"]) != self._record_heatmaps:
            raise SimulationError(
                "snapshot was taken with record_heatmaps="
                f"{bool(state['record_heatmaps'])}, this collector uses "
                f"{self._record_heatmaps}")
        size = int(state["size"])
        self._capacity = max(self._capacity, size, 1)
        for name, dtype in _SCALAR_SERIES:
            buffer = np.empty(self._capacity, dtype=dtype)
            buffer[:size] = np.asarray(state["series"][name], dtype=dtype)
            self._series[name] = buffer
        for attr, stored in (("_temp_map", state["temp_map"]),
                             ("_melt_map", state["melt_map"])):
            if stored is None:
                setattr(self, attr, None)
                continue
            stored = np.asarray(stored, dtype=np.float32)
            buffer = np.empty((self._capacity, stored.shape[1]),
                              dtype=np.float32)
            buffer[:size] = stored
            setattr(self, attr, buffer)
        self._size = size

    def _trimmed(self, buffer: np.ndarray) -> np.ndarray:
        if self._size == len(buffer):
            return buffer
        return buffer[:self._size].copy()

    def finish(self, config: SimulationConfig, scheduler_name: str,
               recovery_times_s: Optional[List[float]] = None,
               profile: Optional[Dict[str, Any]] = None
               ) -> "SimulationResult":
        """Freeze the collected series into a result object."""
        if self._size == 0:
            raise SimulationError("no ticks were recorded")
        heat = (self._trimmed(self._temp_map)
                if self._temp_map is not None else None)
        melt = (self._trimmed(self._melt_map)
                if self._melt_map is not None else None)
        recovery = (np.asarray(recovery_times_s, dtype=np.float64)
                    if recovery_times_s is not None
                    else np.zeros(0))
        trimmed = {name: self._trimmed(buffer)
                   for name, buffer in self._series.items()}
        return SimulationResult(
            config=config,
            scheduler_name=scheduler_name,
            recovery_times_s=recovery,
            temp_heatmap=heat,
            melt_heatmap=melt,
            profile=profile,
            **trimmed,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced, ready for analysis and plotting."""

    config: SimulationConfig
    scheduler_name: str
    times_s: np.ndarray
    cooling_load_w: np.ndarray
    it_power_w: np.ndarray
    wax_absorption_w: np.ndarray
    mean_temp_c: np.ndarray
    hot_group_mean_temp_c: np.ndarray
    cold_group_mean_temp_c: np.ndarray
    mean_melt_fraction: np.ndarray
    hot_group_size: np.ndarray
    jobs: np.ndarray
    max_cpu_temp_c: Optional[np.ndarray] = None
    availability: Optional[np.ndarray] = None
    displaced_jobs: Optional[np.ndarray] = None
    cooling_capacity_factor: Optional[np.ndarray] = None
    recovery_times_s: Optional[np.ndarray] = None
    temp_heatmap: Optional[np.ndarray] = None
    melt_heatmap: Optional[np.ndarray] = None
    #: Per-subsystem tick timings (``TickProfiler.snapshot()``) when the
    #: run was profiled; ``None`` otherwise.  Wall-clock only -- never
    #: part of the simulated state or the fingerprint.
    profile: Optional[Dict[str, Dict[str, float]]] = None

    #: Array fields hashed by :meth:`fingerprint`, in hashing order.
    FINGERPRINT_FIELDS = (
        "times_s", "cooling_load_w", "it_power_w", "wax_absorption_w",
        "mean_temp_c", "hot_group_mean_temp_c", "cold_group_mean_temp_c",
        "mean_melt_fraction", "hot_group_size", "jobs", "max_cpu_temp_c",
        "availability", "displaced_jobs", "cooling_capacity_factor",
        "recovery_times_s", "temp_heatmap", "melt_heatmap")

    def fingerprint(self) -> str:
        """A short, stable hash of every simulated series.

        Two runs with identical physics produce identical fingerprints
        regardless of *how* they executed (serial, pooled, profiled,
        trace-cached), which is the contract the performance layer is
        tested against.
        """
        digest = hashlib.sha256()
        for name in self.FINGERPRINT_FIELDS:
            arr = getattr(self, name)
            if arr is None:
                continue
            arr = np.ascontiguousarray(arr)
            digest.update(name.encode())
            digest.update(str(arr.dtype).encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()[:16]

    @property
    def times_hours(self) -> np.ndarray:
        """Tick times in hours."""
        return self.times_s / 3600.0

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak cluster cooling load over the run (W)."""
        return float(self.cooling_load_w.max())

    @property
    def peak_it_power_w(self) -> float:
        """Peak cluster IT power over the run (W)."""
        return float(self.it_power_w.max())

    @property
    def total_energy_stored_j(self) -> float:
        """Gross latent+sensible energy absorbed by wax while melting (J)."""
        dt = float(np.median(np.diff(self.times_s))) if len(self.times_s) > 1 \
            else 0.0
        positive = np.clip(self.wax_absorption_w, 0.0, None)
        return float(positive.sum() * dt)

    @property
    def total_it_energy_j(self) -> float:
        """Total IT (server) energy drawn over the run (J)."""
        dt = float(np.median(np.diff(self.times_s))) if len(self.times_s) > 1 \
            else 0.0
        return float(self.it_power_w.sum() * dt)

    @property
    def total_job_seconds(self) -> float:
        """Aggregate job-seconds of demand actually served."""
        dt = float(np.median(np.diff(self.times_s))) if len(self.times_s) > 1 \
            else 0.0
        return float(self.jobs.sum() * dt)

    @property
    def max_melt_fraction(self) -> float:
        """Highest cluster-mean melt fraction reached."""
        return float(self.mean_melt_fraction.max())

    @property
    def min_availability(self) -> float:
        """Lowest fraction of the fleet alive at any tick (1.0 = no
        failures, or a run that predates availability tracking)."""
        if self.availability is None or len(self.availability) == 0:
            return 1.0
        return float(self.availability.min())

    @property
    def total_displaced_jobs(self) -> int:
        """Job-cores displaced by server failures over the run."""
        if self.displaced_jobs is None or len(self.displaced_jobs) == 0:
            return 0
        return int(self.displaced_jobs.sum())

    @property
    def mean_recovery_time_s(self) -> float:
        """Mean failure-to-replacement delay (NaN when nothing failed)."""
        if self.recovery_times_s is None or len(self.recovery_times_s) == 0:
            return float("nan")
        return float(self.recovery_times_s.mean())

    @property
    def min_cooling_capacity_factor(self) -> float:
        """Deepest cooling derate seen during the run (1.0 = none)."""
        if (self.cooling_capacity_factor is None
                or len(self.cooling_capacity_factor) == 0):
            return 1.0
        return float(self.cooling_capacity_factor.min())

    def peak_cpu_temp_c(self) -> float:
        """Hottest CPU junction seen anywhere during the run.

        NaN when the run predates CPU-temperature tracking.
        """
        if self.max_cpu_temp_c is None or len(self.max_cpu_temp_c) == 0:
            return float("nan")
        return float(np.nanmax(self.max_cpu_temp_c))

    def throttling_occurred(self, throttle_temp_c: float = 85.0) -> bool:
        """Whether any CPU crossed the throttle point during the run."""
        peak = self.peak_cpu_temp_c()
        return bool(np.isfinite(peak) and peak > throttle_temp_c)

    def peak_reduction_vs(self, baseline: "SimulationResult") -> float:
        """Fractional peak cooling load reduction against a baseline run."""
        base = baseline.peak_cooling_load_w
        if base <= 0:
            raise SimulationError("baseline peak must be positive")
        return 1.0 - self.peak_cooling_load_w / base

    def cooling_load_kw(self) -> np.ndarray:
        """Cooling load series in kW (Figs. 13/16 plot kW)."""
        return self.cooling_load_w / 1e3

    def summary(self) -> Dict[str, float]:
        """Headline scalars for quick inspection."""
        return {
            "scheduler": self.scheduler_name,
            "num_servers": self.config.num_servers,
            "peak_cooling_kw": self.peak_cooling_load_w / 1e3,
            "mean_cooling_kw": float(self.cooling_load_w.mean()) / 1e3,
            "peak_it_kw": self.peak_it_power_w / 1e3,
            "max_mean_melt": self.max_melt_fraction,
            "peak_mean_temp_c": float(self.mean_temp_c.max()),
            "min_availability": self.min_availability,
            "displaced_jobs": self.total_displaced_jobs,
        }

    #: Array fields serialized by :meth:`to_json`, in schema order (the
    #: required series first, the optional ones after).
    JSON_ARRAY_FIELDS = (
        "times_s", "cooling_load_w", "it_power_w", "wax_absorption_w",
        "mean_temp_c", "hot_group_mean_temp_c", "cold_group_mean_temp_c",
        "mean_melt_fraction", "hot_group_size", "jobs", "max_cpu_temp_c",
        "availability", "displaced_jobs", "cooling_capacity_factor",
        "recovery_times_s", "temp_heatmap", "melt_heatmap")

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict that round-trips bit-identically.

        ``from_json(result.to_json())`` reproduces every series (and
        therefore :meth:`fingerprint`) exactly: dtypes are recorded next
        to the values, and Python's float repr round-trips IEEE doubles.
        This is the wire schema the serving layer returns for full
        results; :mod:`repro.io` remains the compact binary format.
        """
        series: Dict[str, Any] = {}
        for name in self.JSON_ARRAY_FIELDS:
            arr = getattr(self, name)
            if arr is None:
                continue
            series[name] = {"dtype": str(arr.dtype),
                            "values": np.asarray(arr).tolist()}
        return {
            "schema": "repro.result/1",
            "scheduler_name": self.scheduler_name,
            "config": self.config.to_dict(),
            "fingerprint": self.fingerprint(),
            "summary": self.summary(),
            "series": series,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json` output."""
        if payload.get("schema") != "repro.result/1":
            raise SimulationError(
                f"not a repro.result/1 payload "
                f"(schema={payload.get('schema')!r})")
        series = payload["series"]
        kwargs: Dict[str, Any] = {}
        for name in cls.JSON_ARRAY_FIELDS:
            entry = series.get(name)
            kwargs[name] = (None if entry is None else
                            np.asarray(entry["values"],
                                       dtype=np.dtype(entry["dtype"])))
        result = cls(config=SimulationConfig.from_dict(payload["config"]),
                     scheduler_name=payload["scheduler_name"], **kwargs)
        recorded = payload.get("fingerprint")
        if recorded is not None and recorded != result.fingerprint():
            raise SimulationError(
                f"result payload fingerprint mismatch: recorded "
                f"{recorded}, rebuilt {result.fingerprint()}")
        return result

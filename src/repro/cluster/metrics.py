"""Metrics collection and simulation results.

The evaluation's figures all derive from a handful of series recorded per
scheduling tick: the cluster cooling load (Figs. 13/16), per-server air
temperature and wax-melt heatmaps (Figs. 9-11, 14), and group-mean
temperatures (Figs. 12/15).  :class:`MetricsCollector` accumulates them;
:class:`SimulationResult` is the immutable analysis-friendly product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import SimulationError


class MetricsCollector:
    """Accumulates per-tick series during a simulation run.

    ``record_heatmaps=False`` skips the (steps x servers) arrays to keep
    1,000-server parameter sweeps light.
    """

    def __init__(self, record_heatmaps: bool = True) -> None:
        self._record_heatmaps = record_heatmaps
        self._times_s: List[float] = []
        self._cooling_w: List[float] = []
        self._power_w: List[float] = []
        self._absorbed_w: List[float] = []
        self._mean_temp: List[float] = []
        self._hot_mean_temp: List[float] = []
        self._cold_mean_temp: List[float] = []
        self._mean_melt: List[float] = []
        self._hot_group_size: List[int] = []
        self._jobs: List[int] = []
        self._max_cpu_temp: List[float] = []
        self._availability: List[float] = []
        self._displaced: List[int] = []
        self._cooling_factor: List[float] = []
        self._temp_rows: List[np.ndarray] = []
        self._melt_rows: List[np.ndarray] = []

    def record(self, time_s: float, *, air_temp_c: np.ndarray,
               melt_fraction: np.ndarray, power_w: np.ndarray,
               wax_absorption_w: np.ndarray, jobs: int,
               hot_mask: Optional[np.ndarray] = None,
               max_cpu_temp_c: float = float("nan"),
               availability: float = 1.0, displaced_jobs: int = 0,
               cooling_capacity_factor: float = 1.0) -> None:
        """Record one tick's state."""
        self._times_s.append(float(time_s))
        self._max_cpu_temp.append(float(max_cpu_temp_c))
        self._availability.append(float(availability))
        self._displaced.append(int(displaced_jobs))
        self._cooling_factor.append(float(cooling_capacity_factor))
        total_power = float(power_w.sum())
        total_absorbed = float(wax_absorption_w.sum())
        self._power_w.append(total_power)
        self._absorbed_w.append(total_absorbed)
        self._cooling_w.append(total_power - total_absorbed)
        self._mean_temp.append(float(air_temp_c.mean()))
        self._mean_melt.append(float(melt_fraction.mean()))
        self._jobs.append(int(jobs))
        if hot_mask is not None and hot_mask.any():
            self._hot_mean_temp.append(float(air_temp_c[hot_mask].mean()))
            cold = ~hot_mask
            self._cold_mean_temp.append(
                float(air_temp_c[cold].mean()) if cold.any()
                else float("nan"))
            self._hot_group_size.append(int(hot_mask.sum()))
        else:
            self._hot_mean_temp.append(float("nan"))
            self._cold_mean_temp.append(float("nan"))
            self._hot_group_size.append(0)
        if self._record_heatmaps:
            self._temp_rows.append(np.asarray(air_temp_c, dtype=np.float32)
                                   .copy())
            self._melt_rows.append(np.asarray(melt_fraction,
                                              dtype=np.float32).copy())

    def finish(self, config: SimulationConfig, scheduler_name: str,
               recovery_times_s: Optional[List[float]] = None
               ) -> "SimulationResult":
        """Freeze the collected series into a result object."""
        if not self._times_s:
            raise SimulationError("no ticks were recorded")
        heat = (np.vstack(self._temp_rows) if self._temp_rows else None)
        melt = (np.vstack(self._melt_rows) if self._melt_rows else None)
        recovery = (np.asarray(recovery_times_s, dtype=np.float64)
                    if recovery_times_s is not None
                    else np.zeros(0))
        return SimulationResult(
            config=config,
            scheduler_name=scheduler_name,
            times_s=np.asarray(self._times_s),
            cooling_load_w=np.asarray(self._cooling_w),
            it_power_w=np.asarray(self._power_w),
            wax_absorption_w=np.asarray(self._absorbed_w),
            mean_temp_c=np.asarray(self._mean_temp),
            hot_group_mean_temp_c=np.asarray(self._hot_mean_temp),
            cold_group_mean_temp_c=np.asarray(self._cold_mean_temp),
            mean_melt_fraction=np.asarray(self._mean_melt),
            hot_group_size=np.asarray(self._hot_group_size),
            jobs=np.asarray(self._jobs),
            max_cpu_temp_c=np.asarray(self._max_cpu_temp),
            availability=np.asarray(self._availability),
            displaced_jobs=np.asarray(self._displaced),
            cooling_capacity_factor=np.asarray(self._cooling_factor),
            recovery_times_s=recovery,
            temp_heatmap=heat,
            melt_heatmap=melt,
        )


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced, ready for analysis and plotting."""

    config: SimulationConfig
    scheduler_name: str
    times_s: np.ndarray
    cooling_load_w: np.ndarray
    it_power_w: np.ndarray
    wax_absorption_w: np.ndarray
    mean_temp_c: np.ndarray
    hot_group_mean_temp_c: np.ndarray
    cold_group_mean_temp_c: np.ndarray
    mean_melt_fraction: np.ndarray
    hot_group_size: np.ndarray
    jobs: np.ndarray
    max_cpu_temp_c: Optional[np.ndarray] = None
    availability: Optional[np.ndarray] = None
    displaced_jobs: Optional[np.ndarray] = None
    cooling_capacity_factor: Optional[np.ndarray] = None
    recovery_times_s: Optional[np.ndarray] = None
    temp_heatmap: Optional[np.ndarray] = None
    melt_heatmap: Optional[np.ndarray] = None

    @property
    def times_hours(self) -> np.ndarray:
        """Tick times in hours."""
        return self.times_s / 3600.0

    @property
    def peak_cooling_load_w(self) -> float:
        """Peak cluster cooling load over the run (W)."""
        return float(self.cooling_load_w.max())

    @property
    def peak_it_power_w(self) -> float:
        """Peak cluster IT power over the run (W)."""
        return float(self.it_power_w.max())

    @property
    def total_energy_stored_j(self) -> float:
        """Gross latent+sensible energy absorbed by wax while melting (J)."""
        dt = float(np.median(np.diff(self.times_s))) if len(self.times_s) > 1 \
            else 0.0
        positive = np.clip(self.wax_absorption_w, 0.0, None)
        return float(positive.sum() * dt)

    @property
    def max_melt_fraction(self) -> float:
        """Highest cluster-mean melt fraction reached."""
        return float(self.mean_melt_fraction.max())

    @property
    def min_availability(self) -> float:
        """Lowest fraction of the fleet alive at any tick (1.0 = no
        failures, or a run that predates availability tracking)."""
        if self.availability is None or len(self.availability) == 0:
            return 1.0
        return float(self.availability.min())

    @property
    def total_displaced_jobs(self) -> int:
        """Job-cores displaced by server failures over the run."""
        if self.displaced_jobs is None or len(self.displaced_jobs) == 0:
            return 0
        return int(self.displaced_jobs.sum())

    @property
    def mean_recovery_time_s(self) -> float:
        """Mean failure-to-replacement delay (NaN when nothing failed)."""
        if self.recovery_times_s is None or len(self.recovery_times_s) == 0:
            return float("nan")
        return float(self.recovery_times_s.mean())

    @property
    def min_cooling_capacity_factor(self) -> float:
        """Deepest cooling derate seen during the run (1.0 = none)."""
        if (self.cooling_capacity_factor is None
                or len(self.cooling_capacity_factor) == 0):
            return 1.0
        return float(self.cooling_capacity_factor.min())

    def peak_cpu_temp_c(self) -> float:
        """Hottest CPU junction seen anywhere during the run.

        NaN when the run predates CPU-temperature tracking.
        """
        if self.max_cpu_temp_c is None or len(self.max_cpu_temp_c) == 0:
            return float("nan")
        return float(np.nanmax(self.max_cpu_temp_c))

    def throttling_occurred(self, throttle_temp_c: float = 85.0) -> bool:
        """Whether any CPU crossed the throttle point during the run."""
        peak = self.peak_cpu_temp_c()
        return bool(np.isfinite(peak) and peak > throttle_temp_c)

    def peak_reduction_vs(self, baseline: "SimulationResult") -> float:
        """Fractional peak cooling load reduction against a baseline run."""
        base = baseline.peak_cooling_load_w
        if base <= 0:
            raise SimulationError("baseline peak must be positive")
        return 1.0 - self.peak_cooling_load_w / base

    def cooling_load_kw(self) -> np.ndarray:
        """Cooling load series in kW (Figs. 13/16 plot kW)."""
        return self.cooling_load_w / 1e3

    def summary(self) -> Dict[str, float]:
        """Headline scalars for quick inspection."""
        return {
            "scheduler": self.scheduler_name,
            "num_servers": self.config.num_servers,
            "peak_cooling_kw": self.peak_cooling_load_w / 1e3,
            "mean_cooling_kw": float(self.cooling_load_w.mean()) / 1e3,
            "peak_it_kw": self.peak_it_power_w / 1e3,
            "max_mean_melt": self.max_melt_fraction,
            "peak_mean_temp_c": float(self.mean_temp_c.max()),
            "min_availability": self.min_availability,
            "displaced_jobs": self.total_displaced_jobs,
        }

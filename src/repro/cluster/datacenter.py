"""Datacenter-level scale-out of cluster results.

"The cluster results from DCsim are then multiplied linearly to calculate
the effects of VMT workload placement policies on the datacenter level."
(Section IV-E.)  The paper's datacenter sums many 1,000-server clusters
to 25 MW of critical power (just under the 27.25 MW median for large
datacenters), i.e. 50,000 servers at 500 W peak each.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ServerConfig
from ..errors import ConfigurationError
from ..units import MW


@dataclass(frozen=True)
class Datacenter:
    """A datacenter described by its critical power and server type."""

    critical_power_w: float = 25.0 * MW
    server: ServerConfig = ServerConfig()
    servers_per_cluster: int = 1000

    def __post_init__(self) -> None:
        if self.critical_power_w <= 0:
            raise ConfigurationError("critical power must be positive")
        if self.servers_per_cluster <= 0:
            raise ConfigurationError("cluster size must be positive")
        self.server.validate()

    @property
    def num_servers(self) -> int:
        """Servers supportable at full critical power (50,000 here)."""
        return int(self.critical_power_w // self.server.peak_power_w)

    @property
    def num_clusters(self) -> int:
        """Whole clusters in the datacenter."""
        return self.num_servers // self.servers_per_cluster

    def impact_of(self, peak_reduction_fraction: float
                  ) -> "DatacenterImpact":
        """Scale a cluster-level peak cooling reduction to the datacenter."""
        if not 0.0 <= peak_reduction_fraction < 1.0:
            raise ConfigurationError("reduction must be in [0, 1)")
        return DatacenterImpact(datacenter=self,
                                peak_reduction=peak_reduction_fraction)


@dataclass(frozen=True)
class DatacenterImpact:
    """What a given peak cooling load reduction buys at datacenter scale."""

    datacenter: Datacenter
    peak_reduction: float

    @property
    def baseline_peak_cooling_w(self) -> float:
        """Peak heat the cooling system must remove without VMT.

        A fully subscribed plant removes the full critical power at peak.
        """
        return self.datacenter.critical_power_w

    @property
    def reduced_peak_cooling_w(self) -> float:
        """Peak cooling load with VMT in place."""
        return self.baseline_peak_cooling_w * (1.0 - self.peak_reduction)

    @property
    def cooling_reduction_w(self) -> float:
        """Absolute peak cooling load reduction (the paper's 'up to 3.2 MW')."""
        return self.baseline_peak_cooling_w - self.reduced_peak_cooling_w

    @property
    def additional_server_fraction(self) -> float:
        """Extra servers addable under the same cooling budget.

        A reduction ``r`` lets ``1 / (1 - r)`` times the original fleet
        dissipate the original peak: 12.8% -> 14.6% more servers.
        """
        return 1.0 / (1.0 - self.peak_reduction) - 1.0

    @property
    def additional_servers(self) -> int:
        """Datacenter-wide extra server count (7,339 at 12.8%)."""
        return int(self.datacenter.num_servers
                   * self.additional_server_fraction)

    @property
    def additional_servers_per_cluster(self) -> int:
        """Per-cluster extra server count (146 at 12.8%)."""
        return int(self.datacenter.servers_per_cluster
                   * self.additional_server_fraction)

"""Rack layout and power balance.

The paper's datacenter packs "approximately 20 servers per rack and 50
racks per cluster" (Section IV-A) and notes -- twice -- that hot-group
servers "do not need to be physically clustered: they can be distributed
throughout the datacenter to maintain the same cluster or DC-level
temperature distributions" and "to balance load across multiple cooling
systems".  Server *ids* in this library are logical; this module maps
them onto racks and quantifies what that remark is about: a hot group
occupying contiguous racks concentrates power (and heat) into a few
circuits, while an interleaved mapping keeps every rack near the fleet
mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RackLayout:
    """Assignment of logical server ids to physical racks."""

    num_servers: int
    servers_per_rack: int = 20

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ConfigurationError("need at least one server")
        if self.servers_per_rack <= 0:
            raise ConfigurationError("rack size must be positive")

    @property
    def num_racks(self) -> int:
        """Rack count (last rack may be partial)."""
        return -(-self.num_servers // self.servers_per_rack)

    def contiguous_rack_of(self) -> np.ndarray:
        """Naive mapping: server ``i`` sits in rack ``i // rack_size``.

        Under this mapping VMT's hot group (low ids) fills whole racks.
        """
        return np.arange(self.num_servers) // self.servers_per_rack

    def interleaved_rack_of(self) -> np.ndarray:
        """Round-robin mapping: consecutive ids land in different racks.

        This realizes the paper's "distributed throughout the datacenter"
        deployment: each rack holds a proportional slice of the hot
        group.
        """
        return np.arange(self.num_servers) % self.num_racks

    def per_rack_power_w(self, server_power_w: np.ndarray,
                         rack_of: np.ndarray) -> np.ndarray:
        """Sum per-server power into racks under a mapping."""
        power = np.asarray(server_power_w, dtype=np.float64)
        if power.shape != (self.num_servers,):
            raise ConfigurationError(
                f"power vector must have {self.num_servers} entries")
        return np.bincount(np.asarray(rack_of), weights=power,
                           minlength=self.num_racks)

    def rack_imbalance(self, server_power_w: np.ndarray,
                       rack_of: np.ndarray) -> float:
        """Peak-to-mean ratio of rack power (1.0 = perfectly balanced).

        Rack circuits and row-level cooling are provisioned per rack, so
        this ratio is the overprovisioning a mapping forces.
        """
        per_rack = self.per_rack_power_w(server_power_w, rack_of)
        # Ignore a trailing partial rack when judging balance.
        full = per_rack[:self.num_servers // self.servers_per_rack] \
            if self.num_servers % self.servers_per_rack else per_rack
        mean = float(full.mean())
        if mean <= 0:
            return 1.0
        return float(full.max()) / mean


def compare_hot_group_placements(layout: RackLayout,
                                 server_power_w: np.ndarray
                                 ) -> Sequence[float]:
    """(contiguous, interleaved) rack imbalance for a power snapshot."""
    return (layout.rack_imbalance(server_power_w,
                                  layout.contiguous_rack_of()),
            layout.rack_imbalance(server_power_w,
                                  layout.interleaved_rack_of()))

"""Vectorized cluster state: N servers as numpy rows.

This is the performance-critical core of the scale-out study.  All
per-server state -- core allocations, IT power, air temperature at the
wax, wax enthalpy -- lives in numpy arrays so a 1,000-server, two-day,
one-minute-resolution run (2,880 ticks) completes in well under a second
of numpy work per subsystem.

The physical pipeline per tick mirrors the paper's DCsim model:

1. the scheduler's allocation matrix determines per-server dynamic power;
2. the linear power model adds the idle floor and caps at peak;
3. the air node relaxes toward ``inlet + R_air * P`` (first-order lag);
4. the wax exchanges ``hA * (T_air - T_wax)`` with the air (enthalpy
   method, temperature pinned through the melt);
5. the cooling load for the tick is ``sum(P) - sum(q_wax)``;
6. the on-server estimator integrates its lookup table from *sensed*
   temperatures, once per minute, and reports to the scheduler.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import CapacityError, SimulationError
from ..sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.state import FaultState
    from ..perf.profiler import TickProfiler


def _readonly(arr: np.ndarray) -> np.ndarray:
    """A zero-copy read-only view of ``arr``."""
    view = arr.view()
    view.flags.writeable = False
    return view
from ..server.power import LinearPowerModel
from ..server.sensors import TemperatureSensor
from ..thermal.inlet import draw_inlet_temperatures
from ..thermal.pcm import PCMBank
from ..thermal.server_thermal import ServerAirModel
from ..thermal.throttling import CPUThermalModel
from ..thermal.wax_estimator import WaxStateEstimator
from ..workloads.workload import WORKLOAD_LIST
from .state import ClusterView


class Cluster:
    """The vectorized physical cluster (no scheduling policy inside).

    ``fault_state`` (a :class:`~repro.faults.state.FaultState`) plugs the
    fault-injection subsystem into the physics: failed servers draw no
    power and accept no jobs, sensor faults corrupt the readings handed
    to the scheduler and the wax estimator, and a cooling derate warms
    every inlet.  Without one, every code path is identical to the
    fault-free build.
    """

    def __init__(self, config: SimulationConfig,
                 rng_streams: Optional[RngStreams] = None, *,
                 fault_state: Optional["FaultState"] = None,
                 profiler: Optional["TickProfiler"] = None) -> None:
        config.validate()
        self._config = config
        self._n = config.num_servers
        self._faults = fault_state
        self._profiler = profiler
        streams = rng_streams if rng_streams is not None \
            else RngStreams(config.seed)

        self._per_core_power = np.array(
            [w.per_core_power_w(config.server.cores_per_socket)
             for w in WORKLOAD_LIST])
        self._power_model = LinearPowerModel(config.server)

        inlet = draw_inlet_temperatures(config.thermal, self._n,
                                        streams.stream("inlet"))
        self._air = ServerAirModel(config.thermal, self._n, inlet)
        self._air.reset(config.server.idle_power_w)
        self._pcm = PCMBank(config.wax, self._n,
                            initial_temp_c=float(np.mean(inlet)))
        self._estimator = WaxStateEstimator(
            config.wax, config.thermal, self._n,
            sensor_noise_c=config.thermal.wax_sensor_noise_c,
            rng=streams.stream("wax-estimator"))
        self._sensor = TemperatureSensor(
            noise_stdev_c=config.thermal.air_sensor_noise_c,
            rng=streams.stream("temp-sensor"))

        self._cpu_model = CPUThermalModel()
        self._ambient = config.ambient if config.ambient.is_active else None
        self._power_w = np.full(self._n, config.server.idle_power_w)
        self._dynamic_w = np.zeros(self._n)
        self._last_q_wax = np.zeros(self._n)
        self._last_melt_fraction = self._pcm.melt_fraction
        self._time_s = 0.0
        # The stepped kernel driver clears this to skip re-validating
        # allocations that Scheduler.place already checked; it only
        # changes which error is raised on a bad allocation, never the
        # physics of a successful step.
        self._validate = True

    # -- static facts -----------------------------------------------------

    @property
    def config(self) -> SimulationConfig:
        """The configuration this cluster was built from."""
        return self._config

    @property
    def num_servers(self) -> int:
        """Server count."""
        return self._n

    @property
    def cores_per_server(self) -> int:
        """Cores per server."""
        return self._config.server.cores

    @property
    def per_core_power_w(self) -> np.ndarray:
        """Per-core dynamic power of each workload (WORKLOAD_LIST order)."""
        return self._per_core_power.copy()

    # -- ground-truth state ------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulation time of the last completed step."""
        return self._time_s

    @property
    def power_w(self) -> np.ndarray:
        """Per-server IT power from the last step."""
        return self._power_w.copy()

    @property
    def air_temp_c(self) -> np.ndarray:
        """True per-server air temperature at the wax."""
        return self._air.temperature_c.copy()

    @property
    def wax_melt_fraction(self) -> np.ndarray:
        """True per-server wax melt fraction."""
        return self._pcm.melt_fraction

    @property
    def wax_absorption_w(self) -> np.ndarray:
        """Per-server heat flow into the wax from the last step."""
        return self._last_q_wax.copy()

    @property
    def inlet_temp_c(self) -> np.ndarray:
        """Per-server inlet temperatures (fixed for a run)."""
        return self._air.inlet_temp_c.copy()

    # -- zero-copy state views ----------------------------------------------
    #
    # The public properties above defensively copy so external callers
    # can never corrupt the physics.  The per-tick metrics path reads
    # four of those arrays every minute of simulated time; these views
    # expose the same values without allocation.  They are read-only and
    # only valid until the next :meth:`step`.

    @property
    def air_temp_c_view(self) -> np.ndarray:
        """Read-only view of the per-server air temperatures."""
        return _readonly(self._air.temperature_c)

    @property
    def power_w_view(self) -> np.ndarray:
        """Read-only view of the per-server IT power from the last step."""
        return _readonly(self._power_w)

    @property
    def wax_absorption_w_view(self) -> np.ndarray:
        """Read-only view of the last step's heat flow into the wax."""
        return _readonly(self._last_q_wax)

    @property
    def wax_melt_fraction_view(self) -> np.ndarray:
        """Read-only view of the melt fractions after the last step.

        Unlike :attr:`wax_melt_fraction` this does not recompute the
        enthalpy-to-fraction mapping: :meth:`step` already needs the
        fractions for estimator anchoring and caches them.
        """
        return _readonly(self._last_melt_fraction)

    @property
    def wax_enthalpy_j(self) -> np.ndarray:
        """Per-server total wax enthalpy (J) after the last step.

        The conserved quantity the :mod:`repro.checks` energy-balance
        invariant audits against :attr:`wax_absorption_w`.
        """
        return self._pcm.enthalpy_j

    @property
    def wax_latent_capacity_j(self) -> float:
        """Latent storage capacity per server (J)."""
        return self._pcm.latent_capacity_j

    @property
    def wax_estimate_view(self) -> np.ndarray:
        """Read-only view of the estimator's melt-fraction estimate."""
        return _readonly(self._estimator.estimate)

    @property
    def cpu_junction_temp_c(self) -> np.ndarray:
        """Hottest CPU junction per server, from the last step."""
        return self._cpu_model.junction_temp_c(
            self._air.inlet_temp_c, self._dynamic_w, self._config.server)

    @property
    def throttled_servers(self) -> np.ndarray:
        """Mask of servers whose CPUs would thermally throttle."""
        return self._cpu_model.throttled(
            self._air.inlet_temp_c, self._dynamic_w, self._config.server)

    # -- fault interface ----------------------------------------------------

    @property
    def fault_state(self) -> Optional["FaultState"]:
        """The attached fault state, or ``None`` on a fault-free build."""
        return self._faults

    @property
    def active_mask(self) -> np.ndarray:
        """Mask of servers currently alive (all-true without faults)."""
        if self._faults is None:
            return np.ones(self._n, dtype=bool)
        return self._faults.active.copy()

    # -- observability -----------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Publish cluster gauges and delegate to the thermal subsystems.

        Everything registered here is a callback-backed read of ground
        truth -- never the sensed path -- so sampling cannot consume RNG
        or perturb the physics.
        """
        registry.gauge("cluster.total_power_w",
                       lambda: float(self._power_w.sum()))
        registry.gauge("cluster.mean_air_temp_c",
                       lambda: float(self._air.temperature_c.mean()))
        registry.gauge("cluster.max_air_temp_c",
                       lambda: float(self._air.temperature_c.max()))
        registry.gauge("cluster.wax_absorption_w",
                       lambda: float(self._last_q_wax.sum()))
        self._pcm.register_metrics(registry)
        self._estimator.register_metrics(registry)

    # -- scheduler interface ----------------------------------------------

    def view(self) -> ClusterView:
        """Snapshot the *scheduler-visible* state (sensed, estimated)."""
        sensed = self._sensor.read(self._air.temperature_c)
        active = None
        if self._faults is not None:
            sensed = self._faults.corrupt_air(sensed, self._time_s)
            active = self._faults.active.copy()
        return ClusterView(
            time_s=self._time_s,
            num_servers=self._n,
            cores_per_server=self.cores_per_server,
            air_temp_c=sensed,
            wax_melt_estimate=self._estimator.estimate.copy(),
            melt_temp_c=self._pcm.melt_temp_c,
            active_mask=active,
        )

    # -- snapshot protocol ---------------------------------------------------

    def state_dict(self) -> Dict:
        """All mutable physical state, delegating to the thermal models.

        RNG positions are *not* here: the sensor and estimator draw from
        the shared :class:`RngStreams` registry, which the simulation
        snapshots in one place.  Fault state belongs to the injector.
        """
        return {
            "time_s": self._time_s,
            "power_w": self._power_w.copy(),
            "dynamic_w": self._dynamic_w.copy(),
            "last_q_wax": self._last_q_wax.copy(),
            "last_melt_fraction":
                np.asarray(self._last_melt_fraction).copy(),
            "air": self._air.state_dict(),
            "pcm": self._pcm.state_dict(),
            "estimator": self._estimator.state_dict(),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._time_s = float(state["time_s"])
        self._power_w = np.asarray(state["power_w"],
                                   dtype=np.float64).copy()
        self._dynamic_w = np.asarray(state["dynamic_w"],
                                     dtype=np.float64).copy()
        self._last_q_wax = np.asarray(state["last_q_wax"],
                                      dtype=np.float64).copy()
        self._last_melt_fraction = np.asarray(
            state["last_melt_fraction"], dtype=np.float64).copy()
        self._air.load_state_dict(state["air"])
        self._pcm.load_state_dict(state["pcm"])
        self._estimator.load_state_dict(state["estimator"])

    # -- dynamics -----------------------------------------------------------

    def _check_allocation(self, allocation: np.ndarray) -> np.ndarray:
        allocation = np.asarray(allocation)
        expected = (self._n, len(WORKLOAD_LIST))
        if allocation.shape != expected:
            raise SimulationError(
                f"allocation must be {expected}, got {allocation.shape}")
        if np.any(allocation < 0):
            raise SimulationError("allocation counts must be >= 0")
        per_server = allocation.sum(axis=1)
        if np.any(per_server > self.cores_per_server):
            worst = int(np.argmax(per_server))
            raise CapacityError(
                f"server {worst} allocated {int(per_server[worst])} cores "
                f"(capacity {self.cores_per_server})")
        return allocation

    def step(self, allocation: np.ndarray, dt_s: float) -> Dict[str, float]:
        """Advance the cluster one tick under a core allocation.

        Returns a summary dict with the tick's cluster totals:
        ``power_w`` (IT power), ``wax_absorption_w`` (heat into wax) and
        ``cooling_load_w`` (their difference).
        """
        if dt_s <= 0:
            raise SimulationError("dt must be positive")
        if self._validate:
            allocation = self._check_allocation(allocation)
        else:
            allocation = np.asarray(allocation)
        faults = self._faults
        if faults is not None:
            dead_load = ~faults.active & (allocation.sum(axis=1) > 0)
            if np.any(dead_load):
                raise SimulationError(
                    "allocation places jobs on failed server "
                    f"{int(np.flatnonzero(dead_load)[0])}")
        if faults is not None or self._ambient is not None:
            # One uniform offset feeds the air model: scripted weather
            # (ambient profile) plus any cooling-derate rise.  Both are
            # deterministic functions of clock/config, so this needs no
            # snapshot state beyond the air model's own offset field.
            offset = faults.inlet_offset_c if faults is not None else 0.0
            if self._ambient is not None:
                offset += self._ambient.offset_c_at(self._time_s)
            self._air.set_inlet_offset(offset)

        dynamic = allocation.astype(np.float64) @ self._per_core_power
        self._dynamic_w = dynamic
        self._power_w = self._power_model.server_power(dynamic)
        if faults is not None:
            # Dead servers draw nothing -- not even the idle floor.
            self._power_w = np.where(faults.active, self._power_w, 0.0)
            self._dynamic_w = np.where(faults.active, dynamic, 0.0)

        prof = self._profiler
        mark = time.perf_counter() if prof is not None else 0.0
        t_air = self._air.step(self._power_w, dt_s)
        if prof is not None:
            now = time.perf_counter()
            prof.add("air_model", now - mark)
            mark = now
        self._last_q_wax = self._pcm.step(
            t_air, self._config.thermal.ha_w_per_k, dt_s)
        if prof is not None:
            now = time.perf_counter()
            prof.add("pcm", now - mark)
            mark = now
        estimator_input = t_air
        if faults is not None:
            # The container-exterior sensor is what the estimator reads;
            # its faults corrupt the estimate, not the physics.
            estimator_input = faults.corrupt_wax(t_air, self._time_s)
        self._estimator.update(estimator_input, dt_s)
        # Re-anchor the estimate at the unambiguous sensor events: the
        # container-exterior sensor pins full-solid / full-liquid states.
        # A faulted wax sensor cannot signal those events, so its servers
        # are excluded from anchoring.
        truth = self._pcm.melt_fraction
        anchored = (truth <= 0.0) | (truth >= 1.0)
        if faults is not None:
            anchored = anchored & ~faults.wax_sensor_faulty
        if np.any(anchored):
            self._estimator.correct(truth, mask=anchored)
        if prof is not None:
            prof.add("estimator", time.perf_counter() - mark)
        self._last_melt_fraction = truth
        self._time_s += dt_s

        total_power = float(self._power_w.sum())
        total_absorbed = float(self._last_q_wax.sum())
        return {
            "power_w": total_power,
            "wax_absorption_w": total_absorbed,
            "cooling_load_w": total_power - total_absorbed,
        }

"""Cluster-level simulation: vectorized state, metrics, scale-out.

* :mod:`~repro.cluster.cluster` -- the vectorized thermal/power state of
  N servers (one numpy row per server);
* :mod:`~repro.cluster.state` -- the read-only view schedulers receive;
* :mod:`~repro.cluster.simulation` -- wires the event engine, trace,
  scheduler, and cluster into a runnable experiment;
* :mod:`~repro.cluster.metrics` -- time-series and heatmap collection;
* :mod:`~repro.cluster.datacenter` -- linear scale-out to the 25 MW
  datacenter used for the TCO analysis.
"""

from .cluster import Cluster
from .state import ClusterView
from .metrics import MetricsCollector, SimulationResult
from .simulation import ClusterSimulation, Observer, run_simulation
from .datacenter import Datacenter, DatacenterImpact
from .multi import (DatacenterResult, MultiClusterSimulation,
                    run_datacenter)

__all__ = [
    "Cluster", "ClusterView", "MetricsCollector", "Observer",
    "SimulationResult", "ClusterSimulation", "run_simulation",
    "Datacenter", "DatacenterImpact", "DatacenterResult",
    "MultiClusterSimulation", "run_datacenter",
]

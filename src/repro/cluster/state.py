"""The read-only cluster view handed to schedulers.

Schedulers must not reach into the simulator's ground truth: a deployed
cluster scheduler sees sensor readings and the wax *estimate*, not the
wax itself.  :class:`ClusterView` packages exactly what Section III says
the scheduler can observe -- air temperatures (from the container-exterior
sensors) and the estimated melt state -- plus static cluster facts and,
when fault injection is live, the availability mask a cluster manager's
health checks would provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ClusterView:
    """Scheduler-visible snapshot of the cluster at one scheduling tick."""

    time_s: float
    num_servers: int
    cores_per_server: int
    air_temp_c: np.ndarray       # sensed air temperature at the wax
    wax_melt_estimate: np.ndarray  # estimated melt fraction in [0, 1]
    melt_temp_c: float           # PMT of the deployed wax
    active_mask: Optional[np.ndarray] = None  # bool; None = all healthy

    @property
    def total_cores(self) -> int:
        """Cluster-wide core capacity (ignoring failures)."""
        return self.num_servers * self.cores_per_server

    @property
    def active(self) -> np.ndarray:
        """Mask of servers alive this tick (all-true without faults)."""
        if self.active_mask is None:
            return np.ones(self.num_servers, dtype=bool)
        return self.active_mask

    @property
    def num_active(self) -> int:
        """Servers currently alive."""
        if self.active_mask is None:
            return self.num_servers
        return int(np.count_nonzero(self.active_mask))

    @property
    def available_cores(self) -> int:
        """Core capacity on surviving servers."""
        return self.num_active * self.cores_per_server

    @property
    def availability(self) -> float:
        """Fraction of the fleet alive this tick."""
        return self.num_active / self.num_servers

    def capacity_vector(self) -> np.ndarray:
        """Per-server core capacity; failed servers contribute zero."""
        caps = np.full(self.num_servers, self.cores_per_server,
                       dtype=np.int64)
        if self.active_mask is not None:
            caps[~self.active_mask] = 0
        return caps

    def servers_below_melt(self) -> np.ndarray:
        """Mask of servers whose air is below the melting temperature."""
        return self.air_temp_c < self.melt_temp_c

    def servers_melted(self, wax_threshold: float) -> np.ndarray:
        """Mask of servers whose wax estimate meets the melted threshold."""
        return self.wax_melt_estimate >= wax_threshold

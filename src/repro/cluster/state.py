"""The read-only cluster view handed to schedulers.

Schedulers must not reach into the simulator's ground truth: a deployed
cluster scheduler sees sensor readings and the wax *estimate*, not the
wax itself.  :class:`ClusterView` packages exactly what Section III says
the scheduler can observe -- air temperatures (from the container-exterior
sensors) and the estimated melt state -- plus static cluster facts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClusterView:
    """Scheduler-visible snapshot of the cluster at one scheduling tick."""

    time_s: float
    num_servers: int
    cores_per_server: int
    air_temp_c: np.ndarray       # sensed air temperature at the wax
    wax_melt_estimate: np.ndarray  # estimated melt fraction in [0, 1]
    melt_temp_c: float           # PMT of the deployed wax

    @property
    def total_cores(self) -> int:
        """Cluster-wide core capacity."""
        return self.num_servers * self.cores_per_server

    def servers_below_melt(self) -> np.ndarray:
        """Mask of servers whose air is below the melting temperature."""
        return self.air_temp_c < self.melt_temp_c

    def servers_melted(self, wax_threshold: float) -> np.ndarray:
        """Mask of servers whose wax estimate meets the melted threshold."""
        return self.wax_melt_estimate >= wax_threshold

"""Workload mixes.

Figure 1 studies two-workload mixtures swept by *work ratio* -- the share
of total load belonging to the first workload -- and asks whether TTS
alone, TTS+VMT, or neither can melt wax for that mixture.  This module
provides the mix abstraction those analyses (and the trace generator's
defaults) build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .workload import WORKLOADS, WORKLOAD_LIST, Workload


@dataclass(frozen=True)
class WorkloadMix:
    """A normalized blend of workloads (shares sum to 1)."""

    shares: Tuple[Tuple[Workload, float], ...]

    @classmethod
    def of(cls, shares: Mapping[Workload, float]) -> "WorkloadMix":
        """Build a mix, normalizing shares; rejects empty/negative input."""
        total = float(sum(shares.values()))
        if total <= 0:
            raise ConfigurationError("mix must have positive total share")
        if any(v < 0 for v in shares.values()):
            raise ConfigurationError("mix shares must be non-negative")
        normalized = tuple((w, v / total) for w, v in shares.items() if v > 0)
        return cls(shares=normalized)

    @classmethod
    def pair(cls, first: Workload, second: Workload,
             work_ratio: float) -> "WorkloadMix":
        """Two-workload mix: ``work_ratio`` is the share of ``first``."""
        if not 0.0 <= work_ratio <= 1.0:
            raise ConfigurationError("work ratio must be in [0, 1]")
        if work_ratio == 0.0:
            return cls.of({second: 1.0})
        if work_ratio == 1.0:
            return cls.of({first: 1.0})
        return cls.of({first: work_ratio, second: 1.0 - work_ratio})

    @property
    def workloads(self) -> List[Workload]:
        """Workloads with non-zero share."""
        return [w for w, __ in self.shares]

    def share_of(self, workload: Workload) -> float:
        """Share of one workload (0 when absent)."""
        for w, v in self.shares:
            if w == workload:
                return v
        return 0.0

    @property
    def hot_share(self) -> float:
        """Total share held by hot workloads."""
        return sum(v for w, v in self.shares if w.is_hot)

    def mean_per_core_power_w(self, cores_per_cpu: int = 8) -> float:
        """Share-weighted mean per-core dynamic power of the mix."""
        return sum(v * w.per_core_power_w(cores_per_cpu)
                   for w, v in self.shares)

    def hot_mean_per_core_power_w(self, cores_per_cpu: int = 8) -> float:
        """Mean per-core power over the hot portion only (0 if none)."""
        hot = [(w, v) for w, v in self.shares if w.is_hot]
        total = sum(v for __, v in hot)
        if total == 0:
            return 0.0
        return sum(v * w.per_core_power_w(cores_per_cpu)
                   for w, v in hot) / total

    def as_share_vector(self) -> np.ndarray:
        """Shares in :data:`WORKLOAD_LIST` column order."""
        vector = np.zeros(len(WORKLOAD_LIST))
        for w, v in self.shares:
            vector[WORKLOAD_LIST.index(w)] = v
        return vector


def paper_mix() -> WorkloadMix:
    """The evaluation's five-workload blend (~60/40 hot/cold)."""
    return WorkloadMix.of({
        WORKLOADS["WebSearch"]: 0.30,
        WORKLOADS["DataCaching"]: 0.25,
        WORKLOADS["VideoEncoding"]: 0.15,
        WORKLOADS["VirusScan"]: 0.15,
        WORKLOADS["Clustering"]: 0.15,
    })


#: The six mixture panels of Fig. 1, as (first, second) workload names;
#: the x-axis work ratio is the share of the *first* workload.
FIGURE1_PAIRS: Sequence[Tuple[str, str]] = (
    ("DataCaching", "WebSearch"),     # Caching-Search Mix
    ("VirusScan", "Clustering"),      # Scanning-Clustering Mix
    ("Clustering", "VideoEncoding"),  # Clustering-Video Mix
    ("VirusScan", "VideoEncoding"),   # Scanning-Video Mix
    ("VirusScan", "WebSearch"),       # Scanning-Search Mix
    ("WebSearch", "Clustering"),      # Search-Clustering Mix
)

"""Colocation QoS models (paper Fig. 6).

The paper measures latency scaling for Web Search and Data Caching
colocated on a 6-core Xeon E5-2420 (no contention-reduction techniques)
and draws two conclusions:

* Data Caching tolerates colocation: 6 cores of pure caching is best at
  very low and very high load, but in the middle band a mixture is
  similar or better because memory bandwidth is split between the
  memory-bound caching and the compute-bound search;
* Web Search degrades across the whole client range when colocated,
  consistent with last-level-cache interference (mitigable by Bubble-Up /
  Protean Code).

The measured curves are unavailable, so we model them with standard
open/closed queueing forms plus explicit interference terms (DESIGN.md
substitution #4): latency blows up as load approaches an effective
capacity, colocation shifts the capacity (up for caching, which gains
memory bandwidth; down for search, which loses cache) and adds a latency
floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]

#: Tail amplification of the 90th percentile over the queueing component,
#: from the M/M/1 sojourn-time quantile ln(10) ~ 2.303.
_P90_QUEUE_FACTOR = float(np.log(10.0))


@dataclass(frozen=True)
class ColocationScenario:
    """How many cores the subject workload has, and who shares the CPU."""

    name: str
    subject_cores: int
    colocated: bool

    def __post_init__(self) -> None:
        if not 1 <= self.subject_cores <= 6:
            raise ConfigurationError("scenario uses a 6-core CPU")


#: The three configurations of each Fig. 6 panel.
CACHING_SCENARIOS: Sequence[ColocationScenario] = (
    ColocationScenario("2C+Search", 2, True),
    ColocationScenario("4C+Search", 4, True),
    ColocationScenario("6C", 6, False),
)
SEARCH_SCENARIOS: Sequence[ColocationScenario] = (
    ColocationScenario("2C+Caching", 2, True),
    ColocationScenario("4C+Caching", 4, True),
    ColocationScenario("6C", 6, False),
)


class CachingLatencyModel:
    """Data Caching latency vs requests-per-second per core.

    Memcached is memory-bound: giving the remaining cores to compute-bound
    search *raises* the per-core RPS capacity (more memory bandwidth per
    caching core) while adding a small interference floor from shared LLC.
    """

    def __init__(self, base_service_ms: float = 0.30,
                 solo_capacity_rps: float = 60_000.0,
                 bandwidth_relief: float = 0.08,
                 solo_floor_ms: float = 0.45,
                 interference_floor_ms: float = 0.35,
                 rho_cap: float = 0.98) -> None:
        if solo_capacity_rps <= 0 or base_service_ms <= 0:
            raise ConfigurationError("capacity and service must be positive")
        self._service = base_service_ms
        self._solo_cap = solo_capacity_rps
        self._relief = bandwidth_relief
        self._solo_floor = solo_floor_ms
        self._int_floor = interference_floor_ms
        self._rho_cap = rho_cap

    def capacity_rps(self, scenario: ColocationScenario) -> float:
        """Effective per-core RPS capacity under a scenario.

        Colocated caching gains bandwidth in proportion to how many cores
        the compute-bound neighbor holds.
        """
        if not scenario.colocated:
            return self._solo_cap
        neighbor_cores = 6 - scenario.subject_cores
        return self._solo_cap * (1.0 + self._relief * neighbor_cores / 4.0)

    def _floor_ms(self, scenario: ColocationScenario) -> float:
        if not scenario.colocated:
            return self._solo_floor
        neighbor_cores = 6 - scenario.subject_cores
        return (self._solo_floor
                + self._int_floor * neighbor_cores / 4.0)

    def _rho(self, rps_per_core: ArrayLike,
             scenario: ColocationScenario) -> np.ndarray:
        rps = np.asarray(rps_per_core, dtype=np.float64)
        if np.any(rps < 0):
            raise ConfigurationError("RPS must be non-negative")
        return np.minimum(rps / self.capacity_rps(scenario), self._rho_cap)

    def mean_latency_ms(self, rps_per_core: ArrayLike,
                        scenario: ColocationScenario) -> np.ndarray:
        """Mean request latency in milliseconds."""
        rho = self._rho(rps_per_core, scenario)
        return self._floor_ms(scenario) + self._service / (1.0 - rho)

    def p90_latency_ms(self, rps_per_core: ArrayLike,
                       scenario: ColocationScenario) -> np.ndarray:
        """90th-percentile request latency in milliseconds."""
        rho = self._rho(rps_per_core, scenario)
        return (self._floor_ms(scenario)
                + _P90_QUEUE_FACTOR * self._service / (1.0 - rho))


class SearchLatencyModel:
    """Web Search latency vs clients per core.

    Search is compute- and cache-heavy: colocation with caching inflates
    its per-request service time (LLC interference) across the whole
    range, more so when search holds fewer cores.
    """

    def __init__(self, base_service_s: float = 0.050,
                 capacity_clients_per_core: float = 58.0,
                 interference_per_neighbor: float = 0.09,
                 rho_cap: float = 0.95) -> None:
        if base_service_s <= 0 or capacity_clients_per_core <= 0:
            raise ConfigurationError("capacity and service must be positive")
        self._service = base_service_s
        self._capacity = capacity_clients_per_core
        self._interference = interference_per_neighbor
        self._rho_cap = rho_cap

    def service_time_s(self, scenario: ColocationScenario) -> float:
        """Effective per-request service time under a scenario."""
        if not scenario.colocated:
            return self._service
        neighbor_cores = 6 - scenario.subject_cores
        return self._service * (1.0 + self._interference * neighbor_cores)

    def _rho(self, clients_per_core: ArrayLike) -> np.ndarray:
        cpc = np.asarray(clients_per_core, dtype=np.float64)
        if np.any(cpc < 0):
            raise ConfigurationError("client count must be non-negative")
        return np.minimum(cpc / self._capacity, self._rho_cap)

    def mean_latency_s(self, clients_per_core: ArrayLike,
                       scenario: ColocationScenario) -> np.ndarray:
        """Mean query latency in seconds."""
        rho = self._rho(clients_per_core)
        return self.service_time_s(scenario) / (1.0 - rho)

    def p90_latency_s(self, clients_per_core: ArrayLike,
                      scenario: ColocationScenario) -> np.ndarray:
        """90th-percentile query latency in seconds.

        Closed-loop search tails are tighter than open-loop memcached
        tails; a 1.35x amplification over the mean matches the paper's
        mean-to-90th gap.
        """
        return 1.35 * self.mean_latency_s(clients_per_core, scenario)

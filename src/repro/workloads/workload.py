"""The paper's five-workload suite (Table I).

All five are user-facing to some degree: Web Search and Data Caching are
latency-critical (millisecond/microsecond QoS); Video Encoding, Virus
Scanning, and Clustering tolerate seconds of slack but cannot be deferred
to off-hours batch windows.  Power numbers are normalized to a single
8-core Xeon E7-4809 v4; each server carries four such CPUs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError


class ThermalClass(enum.Enum):
    """VMT's job classification: can a server full of this melt wax?"""

    HOT = "hot"
    COLD = "cold"


class QoSClass(enum.Enum):
    """How strict the workload's latency requirement is."""

    LATENCY_CRITICAL = "latency-critical"   # ms/us budgets (search, caching)
    LATENCY_SENSITIVE = "latency-sensitive"  # seconds of slack, not batchable


@dataclass(frozen=True)
class Workload:
    """One workload type: its power profile and scheduling metadata."""

    name: str
    per_cpu_power_w: float
    thermal_class: ThermalClass
    qos_class: QoSClass
    migratable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if self.per_cpu_power_w < 0:
            raise ConfigurationError("workload power must be non-negative")

    def per_core_power_w(self, cores_per_cpu: int = 8) -> float:
        """Dynamic power of one job occupying one core."""
        if cores_per_cpu <= 0:
            raise ConfigurationError("cores per CPU must be positive")
        return self.per_cpu_power_w / cores_per_cpu

    @property
    def is_hot(self) -> bool:
        """True for VMT 'hot' jobs."""
        return self.thermal_class is ThermalClass.HOT

    def __str__(self) -> str:
        return self.name


#: Table I, verbatim.
WORKLOADS: Dict[str, Workload] = {
    "WebSearch": Workload(
        name="WebSearch", per_cpu_power_w=37.2,
        thermal_class=ThermalClass.HOT,
        qos_class=QoSClass.LATENCY_CRITICAL,
        description=("CloudSuite 2.0 Web Search: sharded index serving "
                     "with strict millisecond QoS.")),
    "DataCaching": Workload(
        name="DataCaching", per_cpu_power_w=13.5,
        thermal_class=ThermalClass.COLD,
        qos_class=QoSClass.LATENCY_CRITICAL,
        description=("CloudSuite 2.0 Memcached data caching: "
                     "memory-bound, low CPU power.")),
    "VideoEncoding": Workload(
        name="VideoEncoding", per_cpu_power_w=60.9,
        thermal_class=ThermalClass.HOT,
        qos_class=QoSClass.LATENCY_SENSITIVE,
        description=("SPEC 2006 h264: re-encoding uploaded video; "
                     "seconds-to-minutes of acceptable delay.")),
    "VirusScan": Workload(
        name="VirusScan", per_cpu_power_w=3.4,
        thermal_class=ThermalClass.COLD,
        qos_class=QoSClass.LATENCY_SENSITIVE,
        description=("Scanning freshly uploaded files; very low CPU "
                     "power, not batchable.")),
    "Clustering": Workload(
        name="Clustering", per_cpu_power_w=59.5,
        thermal_class=ThermalClass.HOT,
        qos_class=QoSClass.LATENCY_SENSITIVE,
        description=("Ad-targeting clustering: compute-intensive with "
                     "some scheduling leeway.")),
}

#: Deterministic iteration order used throughout the cluster simulator:
#: column ``k`` of every demand/allocation matrix is ``WORKLOAD_LIST[k]``.
WORKLOAD_LIST: List[Workload] = [
    WORKLOADS["WebSearch"], WORKLOADS["DataCaching"],
    WORKLOADS["VideoEncoding"], WORKLOADS["VirusScan"],
    WORKLOADS["Clustering"],
]

#: Column indices of hot / cold workloads in ``WORKLOAD_LIST`` order.
HOT_INDICES: Tuple[int, ...] = tuple(
    i for i, w in enumerate(WORKLOAD_LIST) if w.is_hot)
COLD_INDICES: Tuple[int, ...] = tuple(
    i for i, w in enumerate(WORKLOAD_LIST) if not w.is_hot)


def get_workload(name: str) -> Workload:
    """Look up a workload by name; raises ``ConfigurationError`` if unknown."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {known}") from None

"""Cluster-level QoS monitoring for the latency-critical workloads.

The paper argues (Section IV-C, Fig. 6) that VMT's colocations keep
Web Search and Data Caching within acceptable QoS, relying on
contention-mitigation techniques for corner cases.  This monitor lets a
reproduction *check* that instead of assuming it: attached to a
:class:`~repro.cluster.simulation.ClusterSimulation` as an observer, it
estimates per-server latencies for the latency-critical workloads each
tick from the same queueing-plus-interference structure as the Fig. 6
models, generalized to arbitrary co-runner mixes:

* each latency-critical core runs at its nominal per-core load (that is
  what one job-core of trace demand *is*);
* interference scales with the co-resident jobs' power density -- the
  compute-heavy hot workloads pressure the shared cache and memory
  bandwidth far more than VirusScan does.

The outputs are time series of fleet mean latency and the fraction of
latency-critical cores violating their QoS target, comparable across
scheduling policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from .workload import WORKLOAD_LIST, WORKLOADS

_SEARCH_COL = WORKLOAD_LIST.index(WORKLOADS["WebSearch"])
_CACHING_COL = WORKLOAD_LIST.index(WORKLOADS["DataCaching"])


@dataclass(frozen=True)
class QoSTargets:
    """Latency targets for the latency-critical workloads."""

    caching_mean_ms: float = 10.0
    search_mean_s: float = 0.30


@dataclass
class QoSMonitor:
    """Per-tick QoS estimation over a running simulation.

    Attach with ``simulation.add_observer(monitor.observe)``.
    """

    config: SimulationConfig
    targets: QoSTargets = field(default_factory=QoSTargets)
    caching_base_ms: float = 1.0
    caching_utilization: float = 0.75   # nominal rho of one caching core
    search_base_s: float = 0.05
    search_utilization: float = 0.65    # nominal rho of one search core
    interference_per_w: float = 0.012   # latency inflation per co-runner W

    times_s: List[float] = field(default_factory=list)
    caching_mean_ms_series: List[float] = field(default_factory=list)
    search_mean_s_series: List[float] = field(default_factory=list)
    violation_fraction_series: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.config.validate()
        if not 0.0 <= self.caching_utilization < 1.0:
            raise ConfigurationError("caching utilization must be in [0,1)")
        if not 0.0 <= self.search_utilization < 1.0:
            raise ConfigurationError("search utilization must be in [0,1)")
        self._per_core_power = np.array(
            [w.per_core_power_w(self.config.server.cores_per_socket)
             for w in WORKLOAD_LIST])

    # -- per-tick estimation ------------------------------------------------

    def _latencies(self, allocation: np.ndarray, column: int,
                   base: float, rho: float) -> np.ndarray:
        """Per-server latency for one latency-critical workload.

        Queueing blow-up at the nominal per-core utilization, inflated by
        the co-residents' power density (an LLC/bandwidth-pressure proxy).
        """
        cores = allocation[:, column]
        with_jobs = cores > 0
        if not with_jobs.any():
            return np.zeros(0)
        total_power = allocation.astype(np.float64) @ self._per_core_power
        own_power = cores * self._per_core_power[column]
        co_power = total_power[with_jobs] - own_power[with_jobs]
        other_cores = (allocation[with_jobs].sum(axis=1)
                       - cores[with_jobs])
        # Normalize co-runner power per co-resident core; empty servers
        # see no interference.
        density = np.divide(co_power, np.maximum(other_cores, 1))
        inflation = 1.0 + self.interference_per_w * density * \
            np.minimum(other_cores, self.config.server.cores)
        return base * inflation / (1.0 - rho)

    def observe(self, time_s: float, demand: np.ndarray, placement,
                cluster) -> None:
        """Observer callback: record this tick's QoS estimates."""
        allocation = placement.allocation
        caching = self._latencies(allocation, _CACHING_COL,
                                  self.caching_base_ms,
                                  self.caching_utilization)
        search = self._latencies(allocation, _SEARCH_COL,
                                 self.search_base_s,
                                 self.search_utilization)
        self.times_s.append(float(time_s))
        self.caching_mean_ms_series.append(
            float(caching.mean()) if len(caching) else 0.0)
        self.search_mean_s_series.append(
            float(search.mean()) if len(search) else 0.0)

        violating = 0
        total = 0
        if len(caching):
            weights = allocation[:, _CACHING_COL]
            weights = weights[weights > 0]
            violating += int(weights[caching
                                     > self.targets.caching_mean_ms].sum())
            total += int(weights.sum())
        if len(search):
            weights = allocation[:, _SEARCH_COL]
            weights = weights[weights > 0]
            violating += int(weights[search
                                     > self.targets.search_mean_s].sum())
            total += int(weights.sum())
        self.violation_fraction_series.append(
            violating / total if total else 0.0)

    # -- aggregates -----------------------------------------------------------

    @property
    def mean_caching_latency_ms(self) -> float:
        """Run-average caching latency."""
        return float(np.mean(self.caching_mean_ms_series)) \
            if self.caching_mean_ms_series else 0.0

    @property
    def mean_search_latency_s(self) -> float:
        """Run-average search latency."""
        return float(np.mean(self.search_mean_s_series)) \
            if self.search_mean_s_series else 0.0

    @property
    def violation_fraction(self) -> float:
        """Run-average fraction of latency-critical cores over target."""
        return float(np.mean(self.violation_fraction_series)) \
            if self.violation_fraction_series else 0.0

    def summary(self) -> dict:
        """Headline QoS scalars."""
        return {
            "mean_caching_ms": self.mean_caching_latency_ms,
            "mean_search_s": self.mean_search_latency_s,
            "violation_fraction": self.violation_fraction,
        }

"""Workload substrate: the five-workload suite, traces, jobs, and QoS.

* :mod:`~repro.workloads.workload` -- Table I's workload registry
  (per-CPU power, VMT hot/cold class, QoS class);
* :mod:`~repro.workloads.classification` -- derives hot/cold classes from
  the thermal model instead of trusting labels;
* :mod:`~repro.workloads.jobs` -- job and demand-vector types;
* :mod:`~repro.workloads.trace` -- the two-day diurnal trace generator
  (Fig. 8);
* :mod:`~repro.workloads.mix` -- workload mixes and hot/cold splits;
* :mod:`~repro.workloads.qos` -- colocation latency models (Fig. 6).
"""

from .workload import (QoSClass, ThermalClass, Workload, WORKLOADS,
                       WORKLOAD_LIST, get_workload)
from .classification import classify_workload, classify_suite
from .jobs import DemandVector, Job
from .trace import TwoDayTrace, TraceMatrix
from .mix import WorkloadMix, paper_mix
from .qos import (CachingLatencyModel, SearchLatencyModel,
                  ColocationScenario)
from .qos_monitor import QoSMonitor, QoSTargets

__all__ = [
    "QoSClass", "ThermalClass", "Workload", "WORKLOADS", "WORKLOAD_LIST",
    "get_workload", "classify_workload", "classify_suite", "DemandVector",
    "Job", "TwoDayTrace", "TraceMatrix", "WorkloadMix", "paper_mix",
    "CachingLatencyModel", "SearchLatencyModel", "ColocationScenario",
    "QoSMonitor", "QoSTargets",
]

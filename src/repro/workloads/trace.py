"""Synthetic two-day diurnal load trace (paper Fig. 8).

The paper drives its evaluation with a two-day Google datacenter trace,
normalized following Kontorinis et al., divided across the five workloads
in a roughly 60/40 hot/cold split, peaking at 95% server utilization
around hours 20 and 46 with troughs near hours 5 and 29.  The production
trace itself is unavailable, so this module generates a synthetic trace
with exactly those published properties (see DESIGN.md substitution #1):

* a piecewise-linear diurnal skeleton through published peak/trough hours,
* per-workload share modulation with distinct diurnal phases,
* seeded low-amplitude noise,
* integer job-core counts that respect cluster capacity step by step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..config import DemandEventSpec, TraceConfig, _ramp_weight
from ..errors import TraceError
from .workload import WORKLOAD_LIST, Workload

#: Baseline share of total load per workload, in WORKLOAD_LIST order
#: (WebSearch, DataCaching, VideoEncoding, VirusScan, Clustering).
#: Hot workloads sum to 0.60, matching the paper's "roughly 60-40 split
#: between hot jobs and cold jobs".
DEFAULT_SHARES: np.ndarray = np.array([0.30, 0.25, 0.15, 0.15, 0.15])

#: Diurnal phase offset (hours) of each workload's share modulation:
#: search and video peak with the evening load, virus scanning skews
#: toward the upload-heavy daytime, caching lags slightly into the night.
DEFAULT_PHASES_H: np.ndarray = np.array([0.0, 2.0, 1.0, -6.0, -2.0])

#: Relative amplitude of the share modulation.
DEFAULT_SHARE_AMPLITUDE = 0.08

#: Two-day skeleton: (hour, utilization shape in [0, 1]) control points.
#: Shape value 1.0 maps to the configured peak utilization and 0.0 to the
#: trough.  Landmarks follow the paper's trace: load peaks near hours 20
#: and 46, troughs near hours 5 and 29, with the skewed user-facing
#: pattern (slow daytime ramp, faster post-midnight fall).
_SHAPE_POINTS_48H = (
    (0.0, 0.33),
    (3.0, 0.10),
    (5.0, 0.00),
    (8.0, 0.20),
    (11.0, 0.46),
    (14.0, 0.66),
    (17.0, 0.85),
    (20.0, 1.00),
    (21.0, 0.68),
    (22.0, 0.48),
    (24.0, 0.26),
    (27.0, 0.06),
    (29.0, 0.00),
    (32.0, 0.15),
    (35.0, 0.40),
    (38.0, 0.57),
    (41.0, 0.73),
    (44.0, 0.90),
    (46.0, 1.00),
    (46.5, 0.80),
    (47.0, 0.58),
    (48.0, 0.45),
)


class TraceMatrix:
    """A (steps x workloads) integer matrix of job-core demand.

    Column ``k`` corresponds to ``WORKLOAD_LIST[k]``.  Counts are for the
    whole cluster at each scheduling interval.
    """

    def __init__(self, counts: np.ndarray, step_seconds: float,
                 total_cores: int) -> None:
        counts = np.asarray(counts)
        if counts.ndim != 2 or counts.shape[1] != len(WORKLOAD_LIST):
            raise TraceError(
                f"trace must be (steps, {len(WORKLOAD_LIST)}); "
                f"got {counts.shape}")
        if not np.issubdtype(counts.dtype, np.number):
            raise TraceError(
                f"trace counts must be numeric, got dtype {counts.dtype}")
        # NaN compares false against everything, so it would sail through
        # the sign and capacity checks and then be cast to a garbage
        # integer; reject non-finite values explicitly first.
        if not np.all(np.isfinite(counts)):
            raise TraceError("trace counts must be finite (no NaN/inf)")
        if np.any(counts < 0):
            raise TraceError("trace counts must be non-negative")
        if step_seconds <= 0:
            raise TraceError("step_seconds must be positive")
        if total_cores <= 0:
            raise TraceError("total_cores must be positive")
        totals = counts.sum(axis=1)
        if np.any(totals > total_cores):
            raise TraceError("trace demand exceeds cluster capacity")
        # One contiguous block so every demand_at row is a zero-copy
        # view; read-only so nothing downstream can mutate the shared
        # trace (thread-mode sweeps hand the same matrix to all runs).
        self._counts = np.ascontiguousarray(counts.astype(np.int64))
        self._counts.flags.writeable = False
        self._step_s = float(step_seconds)
        self._total_cores = int(total_cores)

    @property
    def counts(self) -> np.ndarray:
        """The demand matrix (copy)."""
        return self._counts.copy()

    @property
    def num_steps(self) -> int:
        """Number of scheduling intervals."""
        return self._counts.shape[0]

    @property
    def step_seconds(self) -> float:
        """Interval length in seconds."""
        return self._step_s

    @property
    def total_cores(self) -> int:
        """Cluster core capacity the trace was generated for."""
        return self._total_cores

    @property
    def times_hours(self) -> np.ndarray:
        """Start time of each interval, in hours."""
        return np.arange(self.num_steps) * self._step_s / 3600.0

    def demand_at(self, step: int) -> np.ndarray:
        """Per-workload job-core counts at an interval.

        Returns a read-only zero-copy view into the trace's contiguous
        demand matrix -- called every tick, so it must not allocate.
        """
        return self._counts[step]

    def utilization(self) -> np.ndarray:
        """Fraction of cluster cores demanded at each interval."""
        return self._counts.sum(axis=1) / self._total_cores

    def workload_series(self, workload: Workload) -> np.ndarray:
        """Demand over time for one workload."""
        return self._counts[:, WORKLOAD_LIST.index(workload)].copy()

    def hot_fraction(self) -> np.ndarray:
        """Fraction of demanded job-cores that are hot, per interval.

        Intervals with zero demand report 0.
        """
        hot_cols = [i for i, w in enumerate(WORKLOAD_LIST) if w.is_hot]
        hot = self._counts[:, hot_cols].sum(axis=1)
        total = self._counts.sum(axis=1)
        return np.divide(hot, total, out=np.zeros_like(hot, dtype=float),
                         where=total > 0)

    def scaled_to(self, num_servers: int, cores_per_server: int
                  ) -> "TraceMatrix":
        """Rescale the trace to a different cluster size.

        Utilization fractions are preserved; counts are re-rounded.
        """
        new_total = num_servers * cores_per_server
        fractions = self._counts / self._total_cores
        return TraceMatrix(np.rint(fractions * new_total),
                           self._step_s, new_total)

    def shifted(self, hours: float) -> "TraceMatrix":
        """Roll the trace in time by ``hours`` (wrapping around).

        Used to stagger clusters that serve different regions/timezones
        in the multi-cluster datacenter study.
        """
        steps = int(round(hours * 3600.0 / self._step_s))
        return TraceMatrix(np.roll(self._counts, steps, axis=0),
                           self._step_s, self._total_cores)

    def fingerprint(self) -> str:
        """SHA-256 over the demand matrix and its framing parameters.

        Recorded in run manifests so two runs can be proven to have
        replayed the same workload byte for byte.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._counts).tobytes())
        digest.update(repr((self._counts.shape, self._step_s,
                            self._total_cores)).encode("ascii"))
        return digest.hexdigest()


def _diurnal_shape(hours: np.ndarray,
                   points: Sequence[Tuple[float, float]] = _SHAPE_POINTS_48H
                   ) -> np.ndarray:
    """Interpolate a 48-hour skeleton; hours beyond 48 wrap around."""
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    return np.interp(np.mod(hours, 48.0), xs, ys)


def apply_demand_overlay(util: np.ndarray, times_h: np.ndarray,
                         overlay: Sequence[DemandEventSpec]) -> np.ndarray:
    """Layer scripted demand events onto a utilization series.

    Surges multiply, curtailments cap; both blend linearly over their
    ramps (a partially ramped curtailment caps at the interpolation
    between the live utilization and the cap).  An empty overlay returns
    ``util`` unchanged -- the same array object, so the no-overlay path
    stays bit-identical to builds that predate overlays.
    """
    if not overlay:
        return util
    out = util.copy()
    for event in overlay:
        event.validate()
        weight = np.array([_ramp_weight(h, event.start_hour,
                                        event.end_hour, event.ramp_hours)
                           for h in times_h])
        if event.kind == "surge":
            out = out * (1.0 + weight * (event.magnitude - 1.0))
        else:  # curtail: cap blends from no-op (cap=out) to magnitude
            cap = out + weight * (event.magnitude - out)
            out = np.minimum(out, np.maximum(cap, 0.0))
    return np.clip(out, 0.0, 1.0)


def _largest_remainder_round(targets: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative ``targets`` to integers summing to ``total``."""
    floors = np.floor(targets).astype(np.int64)
    deficit = total - int(floors.sum())
    if deficit > 0:
        remainders = targets - floors
        order = np.argsort(-remainders)
        floors[order[:deficit]] += 1
    elif deficit < 0:
        order = np.argsort(targets - floors)
        take = -deficit
        for idx in order:
            if take == 0:
                break
            if floors[idx] > 0:
                floors[idx] -= 1
                take -= 1
    return floors


@dataclass(frozen=True)
class TwoDayTrace:
    """Generator for the paper's two-day evaluation trace.

    The 48-hour skeleton puts the load peaks near hours 20 and 46 and the
    troughs near hours 5 and 29, as in Fig. 8.
    """

    config: TraceConfig = TraceConfig()
    shares: Sequence[float] = tuple(DEFAULT_SHARES)
    share_phases_h: Sequence[float] = tuple(DEFAULT_PHASES_H)
    share_amplitude: float = DEFAULT_SHARE_AMPLITUDE
    day_scales: Sequence[float] = (1.0, 1.0)
    shape_points: Optional[Sequence[Tuple[float, float]]] = None

    def __post_init__(self) -> None:
        self.config.validate()
        shares = np.asarray(self.shares, dtype=np.float64)
        if shares.shape != (len(WORKLOAD_LIST),):
            raise TraceError("need one share per workload")
        if np.any(shares < 0) or not np.isclose(shares.sum(), 1.0):
            raise TraceError("shares must be non-negative and sum to 1")
        if not 0.0 <= self.share_amplitude < 1.0:
            raise TraceError("share amplitude must be in [0, 1)")
        scales = np.asarray(self.day_scales, dtype=np.float64)
        if scales.shape != (2,) or np.any(scales < 0) or np.any(scales > 1):
            raise TraceError("day_scales must be two values in [0, 1]")

    def utilization_series(self, rng: Optional[np.random.Generator] = None
                           ) -> np.ndarray:
        """Total cluster utilization per interval (before integer rounding)."""
        cfg = self.config
        times_h = np.arange(cfg.num_steps) * cfg.step_seconds / 3600.0
        points = (self.shape_points if self.shape_points is not None
                  else _SHAPE_POINTS_48H)
        shape = _diurnal_shape(times_h, points)
        # Per-day peak scaling supports "mild day then hot day" scenarios
        # (e.g. the wax-preserving extension study).
        scales = np.where(np.mod(times_h, 48.0) < 24.0,
                          self.day_scales[0], self.day_scales[1])
        shape = shape * scales
        util = (cfg.trough_utilization
                + (cfg.peak_utilization - cfg.trough_utilization) * shape)
        if cfg.noise_stdev > 0:
            if rng is None:
                rng = np.random.default_rng(cfg.seed)
            noise = rng.normal(0.0, cfg.noise_stdev, size=util.shape)
            # Smooth the noise over ~15 minutes so demand wiggles but does
            # not jitter discontinuously between scheduler ticks.
            kernel = np.ones(15) / 15.0
            noise = np.convolve(noise, kernel, mode="same")
            util = util * (1.0 + noise)
        util = np.clip(util, 0.0, 1.0)
        return apply_demand_overlay(util, times_h, cfg.overlay)

    def share_matrix(self) -> np.ndarray:
        """Per-interval workload shares (steps x workloads), rows sum to 1."""
        cfg = self.config
        times_h = np.arange(cfg.num_steps) * cfg.step_seconds / 3600.0
        base = np.asarray(self.shares, dtype=np.float64)
        phases = np.asarray(self.share_phases_h, dtype=np.float64)
        angle = 2.0 * np.pi * (times_h[:, None] - cfg.peak_hour
                               - phases[None, :]) / 24.0
        modulated = base[None, :] * (1.0
                                     + self.share_amplitude * np.cos(angle))
        return modulated / modulated.sum(axis=1, keepdims=True)

    def generate(self, num_servers: int, cores_per_server: int = 32,
                 rng: Optional[np.random.Generator] = None) -> TraceMatrix:
        """Produce the integer demand matrix for a cluster."""
        if num_servers <= 0 or cores_per_server <= 0:
            raise TraceError("cluster dimensions must be positive")
        total_cores = num_servers * cores_per_server
        util = self.utilization_series(rng)
        shares = self.share_matrix()
        counts = np.zeros((self.config.num_steps, len(WORKLOAD_LIST)),
                          dtype=np.int64)
        for step in range(self.config.num_steps):
            total = int(round(util[step] * total_cores))
            total = min(total, total_cores)
            counts[step] = _largest_remainder_round(
                shares[step] * total, total)
        return TraceMatrix(counts, self.config.step_seconds, total_cores)

"""Thermal classification of workloads from first principles.

Table I's hot/cold labels are not arbitrary: "jobs are classified as
either 'hot' or 'cold' based upon whether their power and temperature
profile would enable them to melt significant wax if run in isolation"
(Section IV-B).  This module derives the label by asking the thermal
model the same question: *if a server were filled with only this
workload, would its steady-state air temperature at the wax exceed the
physical melting temperature?*

With the default calibration this reproduces Table I's labels exactly
(a regression test pins that), and it stays correct if a user changes
the wax grade, airflow, or workload powers.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..config import ServerConfig, ThermalConfig, WaxConfig
from .workload import ThermalClass, Workload


def isolated_server_power_w(workload: Workload,
                            server: ServerConfig) -> float:
    """IT power of a server fully packed with one workload."""
    per_core = workload.per_core_power_w(server.cores_per_socket)
    dynamic = per_core * server.cores
    return min(server.idle_power_w + dynamic, server.peak_power_w)


def isolated_steady_temp_c(workload: Workload, server: ServerConfig,
                           thermal: ThermalConfig) -> float:
    """Steady-state air temperature at the wax for an isolated full server."""
    power = isolated_server_power_w(workload, server)
    return thermal.inlet_temp_c + thermal.r_air_c_per_w * power


def classify_workload(workload: Workload, server: ServerConfig,
                      thermal: ThermalConfig,
                      wax: WaxConfig) -> ThermalClass:
    """Derive the VMT hot/cold class for one workload."""
    temp = isolated_steady_temp_c(workload, server, thermal)
    if temp > wax.melt_temp_c:
        return ThermalClass.HOT
    return ThermalClass.COLD


def classify_suite(workloads: Iterable[Workload], server: ServerConfig,
                   thermal: ThermalConfig,
                   wax: WaxConfig) -> Dict[str, ThermalClass]:
    """Classify a whole suite; returns ``{workload name: class}``."""
    return {w.name: classify_workload(w, server, thermal, wax)
            for w in workloads}

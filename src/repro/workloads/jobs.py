"""Jobs and demand vectors.

At the cluster scheduler's 1-minute granularity a "job" is one core's
worth of a workload for one interval; the trace reduces each minute to a
*demand vector*: how many job-cores of each workload must be placed.
:class:`Job` is the object-level representation used by examples and the
object-level :class:`~repro.server.server.Server`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import ConfigurationError, TraceError
from .workload import WORKLOAD_LIST, Workload

_job_ids = itertools.count()


@dataclass(frozen=True)
class Job:
    """One core's worth of work belonging to a workload."""

    workload: Workload
    job_id: int = field(default_factory=lambda: next(_job_ids))

    @property
    def is_hot(self) -> bool:
        """True when the owning workload is VMT-hot."""
        return self.workload.is_hot


class DemandVector:
    """Per-workload job-core counts for one scheduling interval.

    Internally an integer numpy vector in :data:`WORKLOAD_LIST` column
    order, which is what the vectorized schedulers consume.
    """

    def __init__(self, counts: Mapping[Workload, int]) -> None:
        vector = np.zeros(len(WORKLOAD_LIST), dtype=np.int64)
        for workload, count in counts.items():
            if count < 0:
                raise ConfigurationError("job counts must be >= 0")
            try:
                index = WORKLOAD_LIST.index(workload)
            except ValueError:
                raise ConfigurationError(
                    f"workload {workload.name!r} is not in the suite"
                ) from None
            vector[index] = count
        self._vector = vector

    @classmethod
    def from_array(cls, vector: np.ndarray) -> "DemandVector":
        """Wrap a raw per-workload count vector (column order)."""
        arr = np.asarray(vector)
        if arr.shape != (len(WORKLOAD_LIST),):
            raise TraceError(
                f"demand vector must have {len(WORKLOAD_LIST)} entries")
        if np.any(arr < 0):
            raise TraceError("demand vector entries must be >= 0")
        instance = cls({})
        instance._vector = arr.astype(np.int64)
        return instance

    @property
    def as_array(self) -> np.ndarray:
        """The underlying per-workload counts (copy)."""
        return self._vector.copy()

    @property
    def total_jobs(self) -> int:
        """Total job-cores demanded this interval."""
        return int(self._vector.sum())

    @property
    def hot_jobs(self) -> int:
        """Job-cores belonging to hot workloads."""
        return int(sum(self._vector[i]
                       for i, w in enumerate(WORKLOAD_LIST) if w.is_hot))

    @property
    def cold_jobs(self) -> int:
        """Job-cores belonging to cold workloads."""
        return self.total_jobs - self.hot_jobs

    def count(self, workload: Workload) -> int:
        """Demand for a single workload."""
        return int(self._vector[WORKLOAD_LIST.index(workload)])

    def jobs(self) -> Iterator[Job]:
        """Materialize individual :class:`Job` objects (object-level API)."""
        for index, workload in enumerate(WORKLOAD_LIST):
            for __ in range(int(self._vector[index])):
                yield Job(workload=workload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DemandVector):
            return NotImplemented
        return bool(np.array_equal(self._vector, other._vector))

    def __repr__(self) -> str:
        parts = ", ".join(f"{w.name}={int(c)}" for w, c in
                          zip(WORKLOAD_LIST, self._vector) if c)
        return f"DemandVector({parts or 'empty'})"

"""Linear server power model.

"Each server has a peak power consumption of 500 W, and an idle power
consumption of 100 W.  Per core power consumption is approximated using a
linear model." (Section IV-A, following Kontorinis et al.)

Power therefore decomposes as::

    P = P_idle + sum_over_busy_cores(per_core_dynamic_power)

where each busy core's dynamic power comes from the workload it runs
(Table I, normalized per 8-core CPU).  The 500 W peak acts as a cap: the
model clamps and reports if a pathological assignment would exceed it.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..config import ServerConfig
from ..errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


class LinearPowerModel:
    """Maps per-server core assignments to IT power draw."""

    def __init__(self, server: ServerConfig) -> None:
        server.validate()
        self._server = server

    @property
    def idle_power_w(self) -> float:
        """Power drawn with zero busy cores."""
        return self._server.idle_power_w

    @property
    def peak_power_w(self) -> float:
        """Hard cap on server power."""
        return self._server.peak_power_w

    @property
    def dynamic_range_w(self) -> float:
        """Headroom between idle and peak."""
        return self._server.peak_power_w - self._server.idle_power_w

    def server_power(self, dynamic_power_w: ArrayLike) -> np.ndarray:
        """Total IT power for given per-server dynamic (core) power.

        ``dynamic_power_w`` is the sum over busy cores of their workload's
        per-core power; the result is clamped to the server's peak.
        """
        dynamic = np.asarray(dynamic_power_w, dtype=np.float64)
        if np.any(dynamic < 0):
            raise ConfigurationError("dynamic power must be non-negative")
        return np.minimum(self._server.idle_power_w + dynamic,
                          self._server.peak_power_w)

    def utilization_power(self, utilization: ArrayLike) -> np.ndarray:
        """Power for a utilization fraction assuming peak-power workloads.

        This is the classic linear utilization model
        ``P = P_idle + u * (P_peak - P_idle)``; used for datacenter-level
        critical-power accounting where workload detail is unavailable.
        """
        u = np.asarray(utilization, dtype=np.float64)
        if np.any((u < 0) | (u > 1)):
            raise ConfigurationError("utilization must be within [0, 1]")
        return self._server.idle_power_w + u * self.dynamic_range_w

    def would_exceed_peak(self, dynamic_power_w: ArrayLike) -> np.ndarray:
        """Boolean mask of servers whose assignment hits the power cap."""
        dynamic = np.asarray(dynamic_power_w, dtype=np.float64)
        return (self._server.idle_power_w + dynamic
                > self._server.peak_power_w)

"""Temperature-dependent server reliability and wear-leveling rotation.

Section IV-D models server failures with:

* a 70,000-hour MTBF at 30 deg C (Intel white-paper number);
* the rule of thumb that every +10 deg C doubles component failure rate;
* a rotation policy moving 20% of servers between groups each month, so a
  server spends three months in the hot group and two in the cold group
  (matching the ~60/40 hot/cold workload split).

With those inputs the paper finds VMT-WA's 3-year cumulative failure rate
is only ~0.4-0.6% above round robin (Fig. 7).  The temperatures used here
are *component-average* temperatures over the diurnal cycle -- the hot and
cold groups differ by only a degree or two on average because the groups
converge during off-peak hours -- not the instantaneous air-at-wax peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import HOURS_PER_MONTH


@dataclass(frozen=True)
class ReliabilityModel:
    """Exponential failure model with Arrhenius-style temperature scaling."""

    mtbf_hours_at_ref: float = 70_000.0
    reference_temp_c: float = 30.0
    doubling_delta_c: float = 10.0

    def __post_init__(self) -> None:
        if self.mtbf_hours_at_ref <= 0:
            raise ConfigurationError("MTBF must be positive")
        if self.doubling_delta_c <= 0:
            raise ConfigurationError("doubling delta must be positive")

    def failure_rate_per_hour(self, temp_c: float) -> float:
        """Instantaneous failure rate at a component temperature."""
        scale = 2.0 ** ((temp_c - self.reference_temp_c)
                        / self.doubling_delta_c)
        return scale / self.mtbf_hours_at_ref

    def cumulative_failure(self, exposures: Sequence[Tuple[float, float]]
                           ) -> float:
        """Cumulative failure probability after a temperature history.

        ``exposures`` is a sequence of ``(temp_c, hours)`` segments; the
        survival function multiplies across segments:
        ``F = 1 - exp(-sum(rate(T_i) * t_i))``.
        """
        hazard = 0.0
        for temp_c, hours in exposures:
            if hours < 0:
                raise ConfigurationError("exposure hours must be >= 0")
            hazard += self.failure_rate_per_hour(temp_c) * hours
        return 1.0 - float(np.exp(-hazard))


def cumulative_failure_probability(model: ReliabilityModel, temp_c: float,
                                   months: float) -> float:
    """Failure probability at a constant temperature for ``months``."""
    return model.cumulative_failure([(temp_c, months * HOURS_PER_MONTH)])


@dataclass(frozen=True)
class RotationPolicy:
    """Wear-leveling rotation between the hot and cold groups.

    With ``months_hot=3`` and ``months_cold=2`` the cycle length is five
    months and 20% of servers rotate each month, as in the paper.
    """

    months_hot: int = 3
    months_cold: int = 2

    def __post_init__(self) -> None:
        if self.months_hot < 0 or self.months_cold < 0:
            raise ConfigurationError("rotation months must be >= 0")
        if self.months_hot + self.months_cold == 0:
            raise ConfigurationError("rotation cycle cannot be empty")

    @property
    def cycle_months(self) -> int:
        """Length of a full hot+cold rotation cycle."""
        return self.months_hot + self.months_cold

    @property
    def rotation_fraction_per_month(self) -> float:
        """Fraction of the fleet that rotates each month (0.2 by default)."""
        return 1.0 / self.cycle_months

    def in_hot_group(self, server_index: int, month: int) -> bool:
        """Whether a server sits in the hot group during a given month.

        Cohorts are staggered by ``server_index % cycle`` so exactly
        ``months_hot / cycle`` of the fleet is hot in any month.
        """
        phase = (month + server_index) % self.cycle_months
        return phase < self.months_hot

    def exposure_months(self, months: float) -> Tuple[float, float]:
        """(hot, cold) months accumulated by a server over ``months``.

        For horizons that are whole multiples of the cycle this is exact;
        otherwise the remainder is split pro-rata, which is accurate on
        fleet average.
        """
        if months < 0:
            raise ConfigurationError("months must be >= 0")
        hot_share = self.months_hot / self.cycle_months
        return months * hot_share, months * (1.0 - hot_share)


def failure_curves(model: ReliabilityModel, policy: RotationPolicy, *,
                   rr_temp_c: float = 30.0, hot_temp_c: float = 31.2,
                   cold_temp_c: float = 28.8, months: int = 36
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative failure curves for round robin vs rotated VMT.

    Returns ``(months_axis, rr_curve, vmt_curve)`` where the curves hold
    cumulative failure probabilities (0..1) at the end of each month.
    Default temperatures are the component-average temperatures observed
    in the reproduction's cluster runs: round robin holds every server at
    the fleet mean, while VMT's hot/cold groups sit slightly above/below
    it.
    """
    if months <= 0:
        raise ConfigurationError("months must be positive")
    axis = np.arange(0, months + 1, dtype=np.float64)
    rr_rate = model.failure_rate_per_hour(rr_temp_c)
    rr_curve = 1.0 - np.exp(-rr_rate * axis * HOURS_PER_MONTH)

    hot_rate = model.failure_rate_per_hour(hot_temp_c)
    cold_rate = model.failure_rate_per_hour(cold_temp_c)
    hot_share = policy.months_hot / policy.cycle_months
    blended = hot_share * hot_rate + (1.0 - hot_share) * cold_rate
    vmt_curve = 1.0 - np.exp(-blended * axis * HOURS_PER_MONTH)
    return axis, rr_curve, vmt_curve

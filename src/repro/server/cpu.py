"""CPU specifications.

The paper's test server carries four Intel Xeon E7-4809 v4 processors
(8 cores each).  Table I's workload powers are normalized to one such CPU,
so per-core job power is the table value divided by the core count here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CPUSpec:
    """A processor model as the power model sees it."""

    name: str
    cores: int
    tdp_w: float
    base_clock_ghz: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("CPU must have at least one core")
        if self.tdp_w <= 0:
            raise ConfigurationError("CPU TDP must be positive")

    def per_core_power(self, per_cpu_power_w: float) -> float:
        """Convert a per-CPU workload power (Table I) to per-core watts."""
        if per_cpu_power_w < 0:
            raise ConfigurationError("workload power must be non-negative")
        return per_cpu_power_w / self.cores


#: The paper's CPU: 8 cores, 115 W TDP, 2.1 GHz base.
XEON_E7_4809_V4 = CPUSpec(name="Xeon E7-4809 v4", cores=8, tdp_w=115.0,
                          base_clock_ghz=2.1)

"""Noisy on-server sensors and their failure modes.

VMT classifies jobs "using on-package thermal sensors and/or power sensors
or models (e.g. Intel RAPL)" (Section III-A), and VMT-WA's wax estimator
reads a container-exterior temperature sensor.  These classes model such
sensors: a true value passes through additive Gaussian noise and optional
quantization, vectorized over a cluster.

Real sensors also *fail*: they stick at the last value, drop out
entirely, or drift with age.  :class:`SensorFaultBank` layers those modes
onto any sensor bank so the fault injector can corrupt exactly the
readings a deployed controller would see, while healthy channels pass
through bit-identical.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError, SensorError

ArrayLike = Union[float, np.ndarray]

#: Fault-mode codes used by :class:`SensorFaultBank`.
MODE_HEALTHY = 0
MODE_STUCK = 1
MODE_DROPOUT = 2
MODE_DRIFT = 3

_MODE_CODES = {"stuck": MODE_STUCK, "dropout": MODE_DROPOUT,
               "drift": MODE_DRIFT}


class _NoisySensor:
    """Shared implementation: Gaussian noise plus quantization."""

    def __init__(self, noise_stdev: float, quantization: float,
                 rng: Optional[np.random.Generator]) -> None:
        if noise_stdev < 0:
            raise ConfigurationError("sensor noise must be non-negative")
        if quantization < 0:
            raise ConfigurationError("quantization step must be >= 0")
        self._noise = float(noise_stdev)
        self._quant = float(quantization)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def read(self, true_value: ArrayLike) -> np.ndarray:
        """Return a noisy, quantized reading of ``true_value``."""
        value = np.asarray(true_value, dtype=np.float64)
        if self._noise > 0:
            value = value + self._rng.normal(0.0, self._noise,
                                             size=value.shape)
        if self._quant > 0:
            value = np.round(value / self._quant) * self._quant
        return value


class TemperatureSensor(_NoisySensor):
    """A thermal sensor: ~0.5 deg C accuracy, 0.25 deg C steps by default."""

    def __init__(self, noise_stdev_c: float = 0.5,
                 quantization_c: float = 0.25,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(noise_stdev_c, quantization_c, rng)


class PowerSensor(_NoisySensor):
    """A RAPL-style power meter: ~1 W noise, 0.1 W steps by default.

    Power cannot be negative, so readings are clamped at zero.
    """

    def __init__(self, noise_stdev_w: float = 1.0,
                 quantization_w: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(noise_stdev_w, quantization_w, rng)

    def read(self, true_value: ArrayLike) -> np.ndarray:
        return np.maximum(super().read(true_value), 0.0)


class SensorFaultBank:
    """Per-channel stuck-at / dropout / drift faults for a sensor bank.

    Sits between a sensor's raw readings and their consumer.  Healthy
    channels pass through untouched; faulted ones are corrupted:

    * ``stuck``   -- the channel repeats the first reading taken after
      the fault engaged (a latched ADC or a wedged polling loop);
    * ``dropout`` -- the channel reports ``fallback_value`` (a dead
      sensor typically reads the controller's substitute constant, e.g.
      the nominal inlet temperature);
    * ``drift``   -- the reading gains ``drift_per_hour`` per elapsed
      hour since the fault engaged (aging or a detached probe).
    """

    def __init__(self, n: int, fallback_value: float = 0.0) -> None:
        if n <= 0:
            raise ConfigurationError("fault bank needs at least one channel")
        self._n = int(n)
        self._fallback = float(fallback_value)
        self._mode = np.zeros(self._n, dtype=np.int8)
        self._stuck_value = np.full(self._n, np.nan)
        self._start_s = np.zeros(self._n)
        self._drift_per_s = np.zeros(self._n)

    @property
    def n(self) -> int:
        """Number of channels."""
        return self._n

    @property
    def faulty(self) -> np.ndarray:
        """Mask of channels currently carrying a fault."""
        return self._mode != MODE_HEALTHY

    @property
    def any_faulty(self) -> bool:
        """Whether any channel carries a fault."""
        return bool(np.any(self._mode != MODE_HEALTHY))

    def _check_channel(self, channel: int) -> int:
        channel = int(channel)
        if not 0 <= channel < self._n:
            raise SensorError(
                f"channel {channel} outside bank of {self._n}")
        return channel

    def set_fault(self, channel: int, mode: str, *, time_s: float = 0.0,
                  drift_per_hour: float = 0.0,
                  stuck_value: Optional[float] = None) -> None:
        """Engage a fault mode on one channel (replacing any existing).

        ``stuck_value`` pins a stuck channel at an explicit reading;
        without it the channel latches the first reading taken after the
        fault engages.
        """
        channel = self._check_channel(channel)
        try:
            code = _MODE_CODES[mode]
        except KeyError:
            known = ", ".join(sorted(_MODE_CODES))
            raise SensorError(
                f"unknown sensor fault mode {mode!r}; known: {known}"
            ) from None
        self._mode[channel] = code
        self._stuck_value[channel] = (np.nan if stuck_value is None
                                      else float(stuck_value))
        self._start_s[channel] = float(time_s)
        self._drift_per_s[channel] = drift_per_hour / 3600.0

    def clear_fault(self, channel: int) -> None:
        """Return a channel to healthy pass-through."""
        channel = self._check_channel(channel)
        self._mode[channel] = MODE_HEALTHY
        self._stuck_value[channel] = np.nan
        self._drift_per_s[channel] = 0.0

    def state_dict(self) -> dict:
        """Per-channel fault modes and latches, for snapshots.

        The stuck-value latch matters: a stuck channel latches its first
        post-fault reading, and a restore that forgot it would re-latch
        a *different* value on the next :meth:`apply`.
        """
        return {
            "mode": self._mode.copy(),
            "stuck_value": self._stuck_value.copy(),
            "start_s": self._start_s.copy(),
            "drift_per_s": self._drift_per_s.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._mode = np.asarray(state["mode"], dtype=np.int8).copy()
        self._stuck_value = np.asarray(
            state["stuck_value"], dtype=np.float64).copy()
        self._start_s = np.asarray(
            state["start_s"], dtype=np.float64).copy()
        self._drift_per_s = np.asarray(
            state["drift_per_s"], dtype=np.float64).copy()

    def apply(self, readings: np.ndarray, time_s: float = 0.0) -> np.ndarray:
        """Corrupt a reading vector according to the per-channel faults.

        Returns the input object itself when no channel is faulted, so
        the fault-free path stays bit-identical and allocation-free.
        """
        if not self.any_faulty:
            return readings
        readings = np.asarray(readings, dtype=np.float64)
        if readings.shape != (self._n,):
            raise SensorError(
                f"expected {self._n} readings, got {readings.shape}")
        out = readings.copy()

        stuck = self._mode == MODE_STUCK
        if np.any(stuck):
            # Latch the first post-fault reading, then repeat it forever.
            fresh = stuck & np.isnan(self._stuck_value)
            self._stuck_value[fresh] = readings[fresh]
            out[stuck] = self._stuck_value[stuck]

        dropped = self._mode == MODE_DROPOUT
        out[dropped] = self._fallback

        drifting = self._mode == MODE_DRIFT
        if np.any(drifting):
            elapsed = np.maximum(0.0, time_s - self._start_s[drifting])
            out[drifting] += self._drift_per_s[drifting] * elapsed
        return out

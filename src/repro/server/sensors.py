"""Noisy on-server sensors.

VMT classifies jobs "using on-package thermal sensors and/or power sensors
or models (e.g. Intel RAPL)" (Section III-A), and VMT-WA's wax estimator
reads a container-exterior temperature sensor.  These classes model such
sensors: a true value passes through additive Gaussian noise and optional
quantization, vectorized over a cluster.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


class _NoisySensor:
    """Shared implementation: Gaussian noise plus quantization."""

    def __init__(self, noise_stdev: float, quantization: float,
                 rng: Optional[np.random.Generator]) -> None:
        if noise_stdev < 0:
            raise ConfigurationError("sensor noise must be non-negative")
        if quantization < 0:
            raise ConfigurationError("quantization step must be >= 0")
        self._noise = float(noise_stdev)
        self._quant = float(quantization)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def read(self, true_value: ArrayLike) -> np.ndarray:
        """Return a noisy, quantized reading of ``true_value``."""
        value = np.asarray(true_value, dtype=np.float64)
        if self._noise > 0:
            value = value + self._rng.normal(0.0, self._noise,
                                             size=value.shape)
        if self._quant > 0:
            value = np.round(value / self._quant) * self._quant
        return value


class TemperatureSensor(_NoisySensor):
    """A thermal sensor: ~0.5 deg C accuracy, 0.25 deg C steps by default."""

    def __init__(self, noise_stdev_c: float = 0.5,
                 quantization_c: float = 0.25,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(noise_stdev_c, quantization_c, rng)


class PowerSensor(_NoisySensor):
    """A RAPL-style power meter: ~1 W noise, 0.1 W steps by default.

    Power cannot be negative, so readings are clamped at zero.
    """

    def __init__(self, noise_stdev_w: float = 1.0,
                 quantization_w: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(noise_stdev_w, quantization_w, rng)

    def read(self, true_value: ArrayLike) -> np.ndarray:
        return np.maximum(super().read(true_value), 0.0)

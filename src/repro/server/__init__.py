"""Server substrate: CPUs, power modeling, sensors, and reliability.

* :mod:`~repro.server.cpu` -- CPU specs (the paper's Xeon E7-4809 v4);
* :mod:`~repro.server.power` -- the linear idle..peak power model;
* :mod:`~repro.server.server` -- a single server's core inventory and
  job slots (object-level twin of the vectorized cluster state);
* :mod:`~repro.server.sensors` -- noisy temperature/power sensors;
* :mod:`~repro.server.reliability` -- temperature-dependent failure rates
  and the hot/cold rotation policy (Fig. 7).
"""

from .cpu import CPUSpec, XEON_E7_4809_V4
from .power import LinearPowerModel
from .server import Server
from .sensors import PowerSensor, SensorFaultBank, TemperatureSensor
from .reliability import (ReliabilityModel, RotationPolicy,
                          cumulative_failure_probability)

__all__ = [
    "CPUSpec", "XEON_E7_4809_V4", "LinearPowerModel", "Server",
    "PowerSensor",
    "SensorFaultBank", "TemperatureSensor", "ReliabilityModel",
    "RotationPolicy", "cumulative_failure_probability",
]

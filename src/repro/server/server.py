"""Object-level server model.

The scale-out cluster keeps its state in numpy arrays for speed
(:mod:`repro.cluster.cluster`); this class is the readable, object-level
twin used by examples, small tests, and anyone extending the library who
wants to reason about one machine at a time.  Both share the same power
model, so a :class:`Server` and one row of the vectorized cluster agree.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..config import ServerConfig
from ..errors import CapacityError, ConfigurationError
from ..workloads.workload import Workload
from .power import LinearPowerModel


class Server:
    """One server: a core inventory with per-workload job assignments."""

    def __init__(self, server_id: int, spec: ServerConfig) -> None:
        spec.validate()
        self.server_id = int(server_id)
        self._spec = spec
        self._power_model = LinearPowerModel(spec)
        self._assignments: Dict[Workload, int] = {}

    @property
    def spec(self) -> ServerConfig:
        """Physical server description."""
        return self._spec

    @property
    def total_cores(self) -> int:
        """Core inventory size."""
        return self._spec.cores

    @property
    def busy_cores(self) -> int:
        """Cores currently running a job."""
        return sum(self._assignments.values())

    @property
    def free_cores(self) -> int:
        """Cores available for new jobs."""
        return self.total_cores - self.busy_cores

    @property
    def assignments(self) -> Mapping[Workload, int]:
        """Read-only view of per-workload core counts."""
        return dict(self._assignments)

    def assign(self, workload: Workload, cores: int = 1) -> None:
        """Place ``cores`` jobs of ``workload`` on this server.

        Raises :class:`CapacityError` when the server lacks free cores --
        schedulers are expected to check first, so this is a hard error.
        """
        if cores < 0:
            raise ConfigurationError("cannot assign a negative core count")
        if cores > self.free_cores:
            raise CapacityError(
                f"server {self.server_id}: requested {cores} cores, "
                f"only {self.free_cores} free")
        if cores:
            self._assignments[workload] = (
                self._assignments.get(workload, 0) + cores)

    def release(self, workload: Workload, cores: int = 1) -> None:
        """Remove ``cores`` jobs of ``workload`` from this server."""
        held = self._assignments.get(workload, 0)
        if cores < 0 or cores > held:
            raise ConfigurationError(
                f"server {self.server_id}: cannot release {cores} of "
                f"{held} {workload.name} cores")
        remaining = held - cores
        if remaining:
            self._assignments[workload] = remaining
        else:
            self._assignments.pop(workload, None)

    def clear(self) -> None:
        """Release every job."""
        self._assignments.clear()

    @property
    def dynamic_power_w(self) -> float:
        """Sum of per-core dynamic power over all assigned jobs."""
        return sum(w.per_core_power_w(self._spec.cores_per_socket) * n
                   for w, n in self._assignments.items())

    @property
    def power_w(self) -> float:
        """Total IT power including idle floor, clamped at peak."""
        return float(self._power_model.server_power(self.dynamic_power_w))

    @property
    def utilization(self) -> float:
        """Fraction of cores busy."""
        return self.busy_cores / self.total_cores

    def __repr__(self) -> str:
        return (f"Server(id={self.server_id}, busy={self.busy_cores}/"
                f"{self.total_cores}, power={self.power_w:.1f} W)")

"""Shared mutable fault state threaded through one simulation run.

:class:`FaultState` is the single source of truth for "what is broken
right now": which servers are dark, which sensor channels are corrupted,
and how much cooling capacity survives.  The :class:`~repro.faults.injector.FaultInjector`
mutates it from engine events; the :class:`~repro.cluster.cluster.Cluster`
and :class:`~repro.cluster.simulation.ClusterSimulation` read it every
tick.  A cluster built without one behaves exactly as before -- the
fault-free path never consults this module.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..config import SimulationConfig
from ..errors import FaultInjectionError
from ..server.sensors import SensorFaultBank


class FaultState:
    """Live fault status of one simulated cluster."""

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        n = config.num_servers
        self._n = n
        self.active = np.ones(n, dtype=bool)
        fallback = config.thermal.inlet_temp_c
        self.air_faults = SensorFaultBank(n, fallback_value=fallback)
        self.wax_faults = SensorFaultBank(n, fallback_value=fallback)
        self.cooling_factor = 1.0
        self._derate_inlet_rise_c = config.faults.derate_inlet_rise_c

        self.failures = 0
        self.repairs = 0
        self.sensor_fault_count = 0
        self.derate_count = 0
        #: Failure times of servers whose jobs have not been re-placed yet.
        self._awaiting_recovery: List[float] = []
        #: Measured failure -> re-placement delays (seconds).
        self.recovery_times_s: List[float] = []
        #: Servers failed since the scheduler last saw the cluster.
        self._newly_failed: List[int] = []

    @property
    def num_servers(self) -> int:
        """Cluster size this state tracks."""
        return self._n

    @property
    def num_active(self) -> int:
        """Servers currently alive."""
        return int(np.count_nonzero(self.active))

    @property
    def availability(self) -> float:
        """Fraction of the fleet currently alive."""
        return self.num_active / self._n

    def _check_server(self, server_id: int) -> int:
        server_id = int(server_id)
        if not 0 <= server_id < self._n:
            raise FaultInjectionError(
                f"server {server_id} outside cluster of {self._n}")
        return server_id

    # -- server failures ----------------------------------------------------

    def fail_server(self, server_id: int, time_s: float) -> None:
        """Take a server dark; its jobs are displaced at the next tick."""
        server_id = self._check_server(server_id)
        if not self.active[server_id]:
            raise FaultInjectionError(
                f"server {server_id} is already failed")
        self.active[server_id] = False
        self.failures += 1
        self._awaiting_recovery.append(float(time_s))
        self._newly_failed.append(server_id)

    def repair_server(self, server_id: int) -> None:
        """Bring a failed server back; repairing a live server is a no-op.

        (Lenient on purpose: a scripted repair may race an auto-repair
        for the same hazard failure.)
        """
        server_id = self._check_server(server_id)
        if self.active[server_id]:
            return
        self.active[server_id] = True
        self.repairs += 1

    def drain_newly_failed(self) -> List[int]:
        """Servers failed since the last call (for displacement counts)."""
        failed, self._newly_failed = self._newly_failed, []
        return failed

    def note_recovered(self, time_s: float) -> None:
        """Record that a placement succeeded after pending failures.

        Called by the simulation right after the scheduler re-placed the
        full demand; every failure still awaiting recovery is credited
        with ``time_s - failure_time``.
        """
        if not self._awaiting_recovery:
            return
        for failed_at in self._awaiting_recovery:
            self.recovery_times_s.append(max(0.0, float(time_s) - failed_at))
        self._awaiting_recovery = []

    # -- snapshot protocol --------------------------------------------------

    def state_dict(self) -> dict:
        """Everything mutable, including the bookkeeping lists.

        ``_awaiting_recovery`` and ``_newly_failed`` are mid-flight
        bookkeeping (failures not yet credited / not yet seen by the
        scheduler); dropping them would silently skew recovery times and
        displaced-job counts on a resumed run.
        """
        return {
            "active": self.active.copy(),
            "cooling_factor": self.cooling_factor,
            "failures": self.failures,
            "repairs": self.repairs,
            "sensor_fault_count": self.sensor_fault_count,
            "derate_count": self.derate_count,
            "awaiting_recovery": list(self._awaiting_recovery),
            "recovery_times_s": list(self.recovery_times_s),
            "newly_failed": list(self._newly_failed),
            "air_faults": self.air_faults.state_dict(),
            "wax_faults": self.wax_faults.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.active = np.asarray(state["active"], dtype=bool).copy()
        self.cooling_factor = float(state["cooling_factor"])
        self.failures = int(state["failures"])
        self.repairs = int(state["repairs"])
        self.sensor_fault_count = int(state["sensor_fault_count"])
        self.derate_count = int(state["derate_count"])
        self._awaiting_recovery = [float(t)
                                   for t in state["awaiting_recovery"]]
        self.recovery_times_s = [float(t)
                                 for t in state["recovery_times_s"]]
        self._newly_failed = [int(s) for s in state["newly_failed"]]
        self.air_faults.load_state_dict(state["air_faults"])
        self.wax_faults.load_state_dict(state["wax_faults"])

    # -- cooling derating ---------------------------------------------------

    def set_cooling_factor(self, factor: float) -> None:
        """Derate (or restore) the cooling plant to ``factor`` of nominal."""
        if not 0.0 <= factor <= 1.0:
            raise FaultInjectionError(
                f"cooling factor must be in [0, 1], got {factor}")
        if factor < self.cooling_factor:
            self.derate_count += 1
        self.cooling_factor = float(factor)

    @property
    def inlet_offset_c(self) -> float:
        """Supply-air temperature rise caused by the current derating."""
        return (1.0 - self.cooling_factor) * self._derate_inlet_rise_c

    # -- sensor corruption --------------------------------------------------

    def corrupt_air(self, readings: np.ndarray,
                    time_s: float) -> np.ndarray:
        """Apply air-sensor faults to a sensed temperature vector."""
        return self.air_faults.apply(readings, time_s)

    def corrupt_wax(self, readings: np.ndarray,
                    time_s: float) -> np.ndarray:
        """Apply wax-sensor faults to the estimator's input vector."""
        return self.wax_faults.apply(readings, time_s)

    @property
    def wax_sensor_faulty(self) -> np.ndarray:
        """Mask of servers whose wax-state sensor is unreliable.

        The full-solid/full-liquid re-anchoring of the estimator comes
        from this same sensor, so anchoring must be suppressed for these
        servers.
        """
        return self.wax_faults.faulty

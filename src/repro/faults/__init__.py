"""Fault injection and graceful degradation.

The paper's Section IV-D treats reliability analytically; this package
makes failures *happen* inside the event-driven simulation: servers die
mid-trace (scripted, or sampled from the temperature-dependent hazard so
hot-group servers fail more often), sensors stick/drop/drift so the
VMT-WA estimator sees corrupted readings, and the cooling plant derates
mid-run.  The cluster and schedulers degrade gracefully: failed servers
are masked out, displaced jobs re-place via the existing spillover
machinery, and VMT-WA falls back to thermal-aware placement when its
wax estimate diverges from physical plausibility.
"""

from .injector import FAULT_EVENT_PRIORITY, FaultInjector
from .scenarios import (cooling_derate, kill_hot_group_fraction,
                        kill_servers, merge_scenarios, stuck_wax_sensors,
                        temperature_hazard)
from .state import FaultState

__all__ = [
    "FAULT_EVENT_PRIORITY",
    "FaultInjector",
    "FaultState",
    "cooling_derate",
    "kill_hot_group_fraction",
    "kill_servers",
    "merge_scenarios",
    "stuck_wax_sensors",
    "temperature_hazard",
]

"""Schedules failure, sensor, and cooling events on the event engine.

The injector turns a :class:`~repro.config.FaultConfig` scenario into
engine events that mutate a shared :class:`~repro.faults.state.FaultState`:

* **scripted faults** fire deterministically at their configured times;
* **hazard failures** are sampled every tick from the Section IV-D
  reliability model evaluated at each server's *current* air temperature,
  so hot-group servers really do fail more often -- the closed loop the
  paper only estimates analytically.

Fault events use a negative priority so that at a shared timestamp they
fire before the scheduler tick: a scheduler never places work on a
server that died "this minute".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import FaultInjectionError
from ..obs.tracer import NULL_TRACER
from ..server.reliability import ReliabilityModel
from ..sim.engine import Engine
from ..sim.process import PeriodicProcess
from ..sim.rng import RngStreams

#: Priority of fault events; ticks run at 0, so faults at the same
#: timestamp land first.
FAULT_EVENT_PRIORITY = -10

#: Seconds per hour (hazard rates are per hour).
_SECONDS_PER_HOUR = 3600.0


class FaultInjector:
    """Drives a fault scenario against one cluster simulation."""

    def __init__(self, config: SimulationConfig, *,
                 rng_streams: Optional[RngStreams] = None,
                 reliability: Optional[ReliabilityModel] = None) -> None:
        config.validate()
        self._config = config
        self._fault_cfg = config.faults
        streams = rng_streams if rng_streams is not None \
            else RngStreams(config.seed)
        self._rng = streams.stream("fault-injector")
        self._reliability = reliability if reliability is not None \
            else ReliabilityModel(
                mtbf_hours_at_ref=config.faults.mtbf_hours)
        # Imported here to avoid a cycle: faults.state imports config only.
        from .state import FaultState
        self._state = FaultState(config)
        self._cluster = None
        self._hazard_process: Optional[PeriodicProcess] = None
        self._tracer = NULL_TRACER

    @property
    def state(self):
        """The live :class:`~repro.faults.state.FaultState`."""
        return self._state

    @property
    def reliability(self) -> ReliabilityModel:
        """The hazard model sampled for random failures."""
        return self._reliability

    # -- wiring -------------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Emit fault onset/recovery events on ``tracer`` from now on."""
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def register_metrics(self, registry) -> None:
        """Publish fault-state gauges on a :class:`~repro.obs.registry.MetricRegistry`."""
        registry.gauge("faults.active_servers",
                       lambda: float(self._state.num_active))
        registry.gauge("faults.availability",
                       lambda: float(self._state.availability))
        registry.gauge("faults.cooling_factor",
                       lambda: float(self._state.cooling_factor))
        registry.gauge("faults.sensor_faults",
                       lambda: float(self._state.sensor_fault_count))

    def attach(self, engine: Engine, cluster) -> None:
        """Register the scenario's events on a simulation's engine."""
        if self._cluster is not None:
            raise FaultInjectionError(
                "fault injector is already attached to a simulation")
        self._cluster = cluster

        for spec in self._fault_cfg.server_faults:
            engine.schedule_at(
                spec.time_s, self._fire_server_fault,
                priority=FAULT_EVENT_PRIORITY,
                name=f"fail-server-{spec.server_id}", payload=spec)
            if spec.repair_after_s is not None:
                engine.schedule_at(
                    spec.time_s + spec.repair_after_s,
                    self._fire_server_repair,
                    priority=FAULT_EVENT_PRIORITY,
                    name=f"repair-server-{spec.server_id}",
                    payload=spec.server_id)

        for spec in self._fault_cfg.sensor_faults:
            engine.schedule_at(
                spec.time_s, self._fire_sensor_fault,
                priority=FAULT_EVENT_PRIORITY,
                name=f"{spec.sensor}-sensor-{spec.mode}-{spec.server_id}",
                payload=spec)
            if spec.clear_after_s is not None:
                engine.schedule_at(
                    spec.time_s + spec.clear_after_s,
                    self._fire_sensor_clear,
                    priority=FAULT_EVENT_PRIORITY,
                    name=f"{spec.sensor}-sensor-clear-{spec.server_id}",
                    payload=spec)

        for spec in self._fault_cfg.cooling_faults:
            engine.schedule_at(
                spec.time_s, self._fire_cooling_derate,
                priority=FAULT_EVENT_PRIORITY,
                name=f"cooling-derate-{spec.capacity_factor:g}",
                payload=spec.capacity_factor)
            if spec.restore_after_s is not None:
                engine.schedule_at(
                    spec.time_s + spec.restore_after_s,
                    self._fire_cooling_derate,
                    priority=FAULT_EVENT_PRIORITY,
                    name="cooling-restore", payload=1.0)

        if (self._fault_cfg.hazard_failures
                and self._fault_cfg.hazard_acceleration > 0):
            self._hazard_process = PeriodicProcess(
                engine, self._config.trace.step_seconds,
                self._hazard_tick, priority=FAULT_EVENT_PRIORITY,
                name="fault-hazard")
        self._engine = engine

    def detach(self) -> None:
        """Stop the hazard process (scripted events stay scheduled)."""
        if self._hazard_process is not None:
            self._hazard_process.stop()
            self._hazard_process = None

    # -- event callbacks ----------------------------------------------------

    def _fire_server_fault(self, event) -> None:
        spec = event.payload
        self._state.fail_server(spec.server_id, event.time)
        if self._tracer.enabled:
            self._tracer.event("fault-onset", event.time,
                               server=spec.server_id, cause="scripted")

    def _fire_server_repair(self, event) -> None:
        self._state.repair_server(event.payload)
        if self._tracer.enabled:
            self._tracer.event("fault-recovery", event.time,
                               server=int(event.payload))

    def _fire_sensor_fault(self, event) -> None:
        spec = event.payload
        bank = (self._state.air_faults if spec.sensor == "air"
                else self._state.wax_faults)
        bank.set_fault(spec.server_id, spec.mode, time_s=event.time,
                       drift_per_hour=spec.drift_c_per_hour,
                       stuck_value=spec.stuck_value_c)
        self._state.sensor_fault_count += 1
        if self._tracer.enabled:
            self._tracer.event("sensor-fault", event.time,
                               server=spec.server_id, sensor=spec.sensor,
                               mode=spec.mode)

    def _fire_sensor_clear(self, event) -> None:
        spec = event.payload
        bank = (self._state.air_faults if spec.sensor == "air"
                else self._state.wax_faults)
        bank.clear_fault(spec.server_id)
        if self._tracer.enabled:
            self._tracer.event("sensor-fault-cleared", event.time,
                               server=spec.server_id, sensor=spec.sensor)

    def _fire_cooling_derate(self, event) -> None:
        self._state.set_cooling_factor(event.payload)
        if self._tracer.enabled:
            self._tracer.event("cooling-derate", event.time,
                               factor=float(event.payload))

    # -- temperature-dependent random failures ------------------------------

    def _hazard_tick(self, now_s: float) -> None:
        """Sample per-server failures from the temperature hazard.

        The per-tick failure probability is
        ``rate(T_i) * acceleration * dt`` -- the exact thinning of the
        inhomogeneous failure process at the tick resolution.  One
        uniform is drawn per server every tick regardless of who is
        alive, so the stream stays aligned across scenarios.
        """
        cluster = self._cluster
        temps = cluster.air_temp_c
        rates = self._reliability.failure_rate_per_hour(temps)
        dt_h = self._config.trace.step_seconds / _SECONDS_PER_HOUR
        prob = rates * self._fault_cfg.hazard_acceleration * dt_h
        draws = self._rng.uniform(size=self._state.num_servers)
        doomed = np.flatnonzero(self._state.active & (draws < prob))
        for server_id in doomed:
            self._state.fail_server(int(server_id), now_s)
            if self._tracer.enabled:
                self._tracer.event("fault-onset", now_s,
                                   server=int(server_id), cause="hazard")
            if self._fault_cfg.auto_repair:
                self._engine.schedule_after(
                    self._fault_cfg.repair_time_s,
                    self._fire_server_repair,
                    priority=FAULT_EVENT_PRIORITY,
                    name=f"repair-server-{server_id}",
                    payload=int(server_id))

"""Schedules failure, sensor, and cooling events on the event engine.

The injector turns a :class:`~repro.config.FaultConfig` scenario into
engine events that mutate a shared :class:`~repro.faults.state.FaultState`:

* **scripted faults** fire deterministically at their configured times;
* **hazard failures** are sampled every tick from the Section IV-D
  reliability model evaluated at each server's *current* air temperature,
  so hot-group servers really do fail more often -- the closed loop the
  paper only estimates analytically.

Fault events use a negative priority so that at a shared timestamp they
fire before the scheduler tick: a scheduler never places work on a
server that died "this minute".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import FaultInjectionError
from ..obs.tracer import NULL_TRACER
from ..server.reliability import ReliabilityModel
from ..sim.engine import Engine
from ..sim.process import PeriodicProcess
from ..sim.rng import RngStreams

#: Priority of fault events; ticks run at 0, so faults at the same
#: timestamp land first.
FAULT_EVENT_PRIORITY = -10

#: Seconds per hour (hazard rates are per hour).
_SECONDS_PER_HOUR = 3600.0


class FaultInjector:
    """Drives a fault scenario against one cluster simulation."""

    def __init__(self, config: SimulationConfig, *,
                 rng_streams: Optional[RngStreams] = None,
                 reliability: Optional[ReliabilityModel] = None) -> None:
        config.validate()
        self._config = config
        self._fault_cfg = config.faults
        streams = rng_streams if rng_streams is not None \
            else RngStreams(config.seed)
        self._rng = streams.stream("fault-injector")
        self._reliability = reliability if reliability is not None \
            else ReliabilityModel(
                mtbf_hours_at_ref=config.faults.mtbf_hours)
        # Imported here to avoid a cycle: faults.state imports config only.
        from .state import FaultState
        self._state = FaultState(config)
        self._cluster = None
        self._hazard_process: Optional[PeriodicProcess] = None
        self._tracer = NULL_TRACER
        # Hazard auto-repairs are scheduled dynamically (unlike scripted
        # events they cannot be re-derived from the config), so their
        # (absolute time, server) pairs are tracked for snapshots.
        self._pending_auto_repairs: list = []

    @property
    def state(self):
        """The live :class:`~repro.faults.state.FaultState`."""
        return self._state

    @property
    def reliability(self) -> ReliabilityModel:
        """The hazard model sampled for random failures."""
        return self._reliability

    # -- wiring -------------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Emit fault onset/recovery events on ``tracer`` from now on."""
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def register_metrics(self, registry) -> None:
        """Publish fault-state gauges on a :class:`~repro.obs.registry.MetricRegistry`."""
        registry.gauge("faults.active_servers",
                       lambda: float(self._state.num_active))
        registry.gauge("faults.availability",
                       lambda: float(self._state.availability))
        registry.gauge("faults.cooling_factor",
                       lambda: float(self._state.cooling_factor))
        registry.gauge("faults.sensor_faults",
                       lambda: float(self._state.sensor_fault_count))

    def attach(self, engine: Engine, cluster) -> None:
        """Register the scenario's events on a simulation's engine."""
        if self._cluster is not None:
            raise FaultInjectionError(
                "fault injector is already attached to a simulation")
        self._cluster = cluster
        self._schedule_scripted(engine, after_s=None)
        if (self._fault_cfg.hazard_failures
                and self._fault_cfg.hazard_acceleration > 0):
            self._hazard_process = PeriodicProcess(
                engine, self._config.trace.step_seconds,
                self._hazard_tick, priority=FAULT_EVENT_PRIORITY,
                name="fault-hazard")
        self._engine = engine

    def reattach(self, engine: Engine, cluster, *,
                 next_tick_s: float) -> None:
        """Re-register events on a restored simulation's engine.

        The snapshot does not serialize event callbacks, so the injector
        rebuilds its queue entries: scripted events strictly after the
        engine clock (earlier ones already fired and live on in the
        restored :class:`FaultState`), the snapshot's pending hazard
        auto-repairs, and the hazard process aligned to the next
        scheduler tick at ``next_tick_s``.
        """
        if self._cluster is not None:
            raise FaultInjectionError(
                "fault injector is already attached to a simulation")
        self._cluster = cluster
        # Events at or before the restored clock already fired -- their
        # effects live in the restored FaultState.  The one exception is
        # a tick-0 snapshot (nothing dispatched yet): there, even t=0
        # events are still pending.
        after_s = engine.now if engine.events_dispatched > 0 else None
        self._schedule_scripted(engine, after_s=after_s)
        for time_s, server_id in self._pending_auto_repairs:
            engine.schedule_at(
                float(time_s), self._fire_server_repair,
                priority=FAULT_EVENT_PRIORITY,
                name=f"repair-server-{server_id}",
                payload=int(server_id))
        if (self._fault_cfg.hazard_failures
                and self._fault_cfg.hazard_acceleration > 0):
            self._hazard_process = PeriodicProcess(
                engine, self._config.trace.step_seconds,
                self._hazard_tick, start_at=next_tick_s,
                priority=FAULT_EVENT_PRIORITY, name="fault-hazard")
        self._engine = engine

    def _schedule_scripted(self, engine: Engine,
                           after_s: Optional[float]) -> None:
        """Schedule the config's deterministic events on ``engine``.

        With ``after_s`` set, events at or before that time are skipped
        -- they already fired before the snapshot was taken.
        """
        def schedule(time_s, callback, name, payload):
            if after_s is not None and time_s <= after_s:
                return
            engine.schedule_at(time_s, callback,
                               priority=FAULT_EVENT_PRIORITY,
                               name=name, payload=payload)

        for spec in self._fault_cfg.server_faults:
            schedule(spec.time_s, self._fire_server_fault,
                     f"fail-server-{spec.server_id}", spec)
            if spec.repair_after_s is not None:
                schedule(spec.time_s + spec.repair_after_s,
                         self._fire_server_repair,
                         f"repair-server-{spec.server_id}",
                         spec.server_id)

        for spec in self._fault_cfg.sensor_faults:
            schedule(spec.time_s, self._fire_sensor_fault,
                     f"{spec.sensor}-sensor-{spec.mode}-{spec.server_id}",
                     spec)
            if spec.clear_after_s is not None:
                schedule(spec.time_s + spec.clear_after_s,
                         self._fire_sensor_clear,
                         f"{spec.sensor}-sensor-clear-{spec.server_id}",
                         spec)

        for spec in self._fault_cfg.cooling_faults:
            schedule(spec.time_s, self._fire_cooling_derate,
                     f"cooling-derate-{spec.capacity_factor:g}",
                     spec.capacity_factor)
            if spec.restore_after_s is not None:
                schedule(spec.time_s + spec.restore_after_s,
                         self._fire_cooling_derate,
                         "cooling-restore", 1.0)

    def detach(self) -> None:
        """Stop the hazard process (scripted events stay scheduled)."""
        if self._hazard_process is not None:
            self._hazard_process.stop()
            self._hazard_process = None

    # -- snapshot protocol ---------------------------------------------------

    def state_dict(self) -> dict:
        """Hazard RNG position, pending auto-repairs, and fault state.

        The injector's RNG is captured here (not only via the shared
        stream registry) because an injector passed in explicitly owns a
        private :class:`RngStreams` the simulation cannot see.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "pending_auto_repairs": [[float(t), int(s)]
                                     for t, s in
                                     self._pending_auto_repairs],
            "state": self._state.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._pending_auto_repairs = [
            (float(t), int(s))
            for t, s in state["pending_auto_repairs"]]
        self._state.load_state_dict(state["state"])

    # -- event callbacks ----------------------------------------------------

    def _fire_server_fault(self, event) -> None:
        spec = event.payload
        self._state.fail_server(spec.server_id, event.time)
        if self._tracer.enabled:
            self._tracer.event("fault-onset", event.time,
                               server=spec.server_id, cause="scripted")

    def _fire_server_repair(self, event) -> None:
        self._state.repair_server(event.payload)
        entry = (float(event.time), int(event.payload))
        if entry in self._pending_auto_repairs:
            self._pending_auto_repairs.remove(entry)
        if self._tracer.enabled:
            self._tracer.event("fault-recovery", event.time,
                               server=int(event.payload))

    def _fire_sensor_fault(self, event) -> None:
        spec = event.payload
        bank = (self._state.air_faults if spec.sensor == "air"
                else self._state.wax_faults)
        bank.set_fault(spec.server_id, spec.mode, time_s=event.time,
                       drift_per_hour=spec.drift_c_per_hour,
                       stuck_value=spec.stuck_value_c)
        self._state.sensor_fault_count += 1
        if self._tracer.enabled:
            self._tracer.event("sensor-fault", event.time,
                               server=spec.server_id, sensor=spec.sensor,
                               mode=spec.mode)

    def _fire_sensor_clear(self, event) -> None:
        spec = event.payload
        bank = (self._state.air_faults if spec.sensor == "air"
                else self._state.wax_faults)
        bank.clear_fault(spec.server_id)
        if self._tracer.enabled:
            self._tracer.event("sensor-fault-cleared", event.time,
                               server=spec.server_id, sensor=spec.sensor)

    def _fire_cooling_derate(self, event) -> None:
        self._state.set_cooling_factor(event.payload)
        if self._tracer.enabled:
            self._tracer.event("cooling-derate", event.time,
                               factor=float(event.payload))

    # -- temperature-dependent random failures ------------------------------

    def _hazard_tick(self, now_s: float) -> None:
        """Sample per-server failures from the temperature hazard.

        The per-tick failure probability is
        ``rate(T_i) * acceleration * dt`` -- the exact thinning of the
        inhomogeneous failure process at the tick resolution.  One
        uniform is drawn per server every tick regardless of who is
        alive, so the stream stays aligned across scenarios.
        """
        cluster = self._cluster
        temps = cluster.air_temp_c
        rates = self._reliability.failure_rate_per_hour(temps)
        dt_h = self._config.trace.step_seconds / _SECONDS_PER_HOUR
        prob = rates * self._fault_cfg.hazard_acceleration * dt_h
        draws = self._rng.uniform(size=self._state.num_servers)
        doomed = np.flatnonzero(self._state.active & (draws < prob))
        for server_id in doomed:
            self._state.fail_server(int(server_id), now_s)
            if self._tracer.enabled:
                self._tracer.event("fault-onset", now_s,
                                   server=int(server_id), cause="hazard")
            if self._fault_cfg.auto_repair:
                repair_at = now_s + self._fault_cfg.repair_time_s
                self._pending_auto_repairs.append(
                    (float(repair_at), int(server_id)))
                self._engine.schedule_at(
                    repair_at,
                    self._fire_server_repair,
                    priority=FAULT_EVENT_PRIORITY,
                    name=f"repair-server-{server_id}",
                    payload=int(server_id))

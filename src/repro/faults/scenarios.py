"""Ready-made fault scenarios for benchmarks, the CLI, and tests.

Each builder returns a :class:`~repro.config.FaultConfig`; scenarios
compose with :func:`merge_scenarios`, which concatenates the scripted
event lists and keeps the most pessimistic scalar settings.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..config import (CoolingFaultSpec, FaultConfig, SensorFaultSpec,
                      ServerFaultSpec, SimulationConfig)
from ..core.grouping import hot_group_size
from ..errors import FaultInjectionError

_SECONDS_PER_HOUR = 3600.0


def kill_servers(server_ids: Sequence[int], at_hour: float, *,
                 repair_after_hours: Optional[float] = None) -> FaultConfig:
    """Fail an explicit list of servers at a given trace hour."""
    repair_s = (None if repair_after_hours is None
                else repair_after_hours * _SECONDS_PER_HOUR)
    faults = tuple(
        ServerFaultSpec(time_s=at_hour * _SECONDS_PER_HOUR,
                        server_id=int(sid), repair_after_s=repair_s)
        for sid in server_ids)
    return FaultConfig(enabled=True, server_faults=faults)


def kill_hot_group_fraction(config: SimulationConfig, fraction: float,
                            at_hour: float, *,
                            repair_after_hours: Optional[float] = None
                            ) -> FaultConfig:
    """Fail a fraction of the hot group (lowest server ids) mid-run.

    The VMT schedulers place the hot group at the low ids, so killing
    the head of the fleet hits exactly the servers carrying hot load --
    the paper's worst case for a mid-peak outage.  At least one server
    is killed for any positive fraction.
    """
    if not 0.0 < fraction <= 1.0:
        raise FaultInjectionError("fraction must be in (0, 1]")
    hot = hot_group_size(config.scheduler.grouping_value,
                         config.wax.melt_temp_c, config.num_servers)
    count = max(1, int(round(fraction * max(hot, 1))))
    count = min(count, config.num_servers - 1)  # never kill the whole fleet
    return kill_servers(range(count), at_hour,
                        repair_after_hours=repair_after_hours)


def stuck_wax_sensors(server_ids: Sequence[int], at_hour: float, *,
                      stuck_value_c: Optional[float] = None,
                      clear_after_hours: Optional[float] = None
                      ) -> FaultConfig:
    """Stick the wax-state sensor of the given servers.

    With ``stuck_value_c`` above the melt point the estimator saturates
    toward fully-melted; below it the estimator freezes near zero -- the
    two divergences VMT-WA must detect and survive.
    """
    clear_s = (None if clear_after_hours is None
               else clear_after_hours * _SECONDS_PER_HOUR)
    faults = tuple(
        SensorFaultSpec(time_s=at_hour * _SECONDS_PER_HOUR,
                        server_id=int(sid), sensor="wax", mode="stuck",
                        stuck_value_c=stuck_value_c, clear_after_s=clear_s)
        for sid in server_ids)
    return FaultConfig(enabled=True, sensor_faults=faults)


def cooling_derate(capacity_factor: float, at_hour: float, *,
                   restore_after_hours: Optional[float] = None,
                   inlet_rise_c: float = 8.0) -> FaultConfig:
    """Derate the cooling plant to ``capacity_factor`` of nominal."""
    restore_s = (None if restore_after_hours is None
                 else restore_after_hours * _SECONDS_PER_HOUR)
    spec = CoolingFaultSpec(time_s=at_hour * _SECONDS_PER_HOUR,
                            capacity_factor=capacity_factor,
                            restore_after_s=restore_s)
    return FaultConfig(enabled=True, cooling_faults=(spec,),
                       derate_inlet_rise_c=inlet_rise_c)


def temperature_hazard(acceleration: float, *,
                       repair_time_hours: float = 4.0,
                       auto_repair: bool = True) -> FaultConfig:
    """Random failures sampled from the temperature-dependent hazard.

    ``acceleration`` scales the Section IV-D failure rate so that a
    70,000-hour MTBF produces visible failures inside a two-day trace
    (an acceleration around 1,000 yields a handful of failures per day
    on 100 servers).
    """
    if acceleration < 0:
        raise FaultInjectionError("acceleration must be >= 0")
    return FaultConfig(enabled=True, hazard_failures=True,
                       hazard_acceleration=acceleration,
                       repair_time_s=repair_time_hours * _SECONDS_PER_HOUR,
                       auto_repair=auto_repair)


def merge_scenarios(*scenarios: FaultConfig) -> FaultConfig:
    """Combine scenarios: events concatenate, scalars take the worst case.

    "Worst case" per scalar: shorter MTBF (failures more frequent),
    longer repairs, higher hazard acceleration, larger derate inlet
    rise, and ``auto_repair`` only if *every* scenario repairs
    automatically -- one scenario that leaves servers down wins.
    """
    if not scenarios:
        return FaultConfig()
    merged = scenarios[0]
    for other in scenarios[1:]:
        merged = dataclasses.replace(
            merged,
            enabled=merged.enabled or other.enabled,
            hazard_failures=merged.hazard_failures or other.hazard_failures,
            hazard_acceleration=max(merged.hazard_acceleration,
                                    other.hazard_acceleration),
            mtbf_hours=min(merged.mtbf_hours, other.mtbf_hours),
            repair_time_s=max(merged.repair_time_s, other.repair_time_s),
            auto_repair=merged.auto_repair and other.auto_repair,
            derate_inlet_rise_c=max(merged.derate_inlet_rise_c,
                                    other.derate_inlet_rise_c),
            server_faults=merged.server_faults + other.server_faults,
            sensor_faults=merged.sensor_faults + other.sensor_faults,
            cooling_faults=merged.cooling_faults + other.cooling_faults,
        )
    return merged

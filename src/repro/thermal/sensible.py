"""Sensible (non-phase-change) thermal storage, for comparison.

Related work (Section VI) proposes water tanks for datacenter thermal
storage.  Water stores heat *sensibly* -- by changing temperature -- so
the energy available in a server's narrow usable band (roughly the few
degrees between the exhaust air and the refreeze temperature) is
``m * cp * dT``, typically several times less than a PCM's latent heat
over the same band (Section II).  This module implements a sensible
storage bank with the same interface as :class:`~repro.thermal.pcm.PCMBank`
so the two can be compared head-to-head.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..errors import ThermalModelError
from .materials import MaterialProperties, WATER

ArrayLike = Union[float, np.ndarray]


class SensibleStorageBank:
    """Per-server sensible heat storage (e.g. a small water tank)."""

    def __init__(self, material: MaterialProperties, mass_kg: float,
                 n: int, initial_temp_c: float = 20.0) -> None:
        if n <= 0:
            raise ThermalModelError("bank needs at least one server")
        if mass_kg < 0:
            raise ThermalModelError("mass must be non-negative")
        self._material = material
        self._mass = float(mass_kg)
        self._cp = material.specific_heat_liquid_j_per_kg_k
        self._n = int(n)
        self._temp = np.full(self._n, float(initial_temp_c))

    @property
    def n(self) -> int:
        """Number of servers."""
        return self._n

    @property
    def temperature_c(self) -> np.ndarray:
        """Current storage temperatures."""
        return self._temp.copy()

    @property
    def heat_capacity_j_per_k(self) -> float:
        """Per-server heat capacity (J/K)."""
        return self._mass * self._cp

    def stored_energy_j(self, reference_temp_c: float) -> np.ndarray:
        """Energy stored above a reference temperature, per server."""
        return self.heat_capacity_j_per_k * (self._temp - reference_temp_c)

    def usable_capacity_j(self, band_low_c: float,
                          band_high_c: float) -> float:
        """Max energy storable across a usable temperature band.

        This is the number to compare with a PCM's latent capacity: for
        4 L of water across the ~6-degree band between a server's normal
        exhaust and the wax melt point it is several times smaller than
        the paraffin's heat of fusion -- the paper's Section II point.
        """
        if band_high_c <= band_low_c:
            raise ThermalModelError("band must have positive width")
        return self.heat_capacity_j_per_k * (band_high_c - band_low_c)

    def step(self, t_air_c: ArrayLike, ha_w_per_k: float,
             dt_s: float) -> np.ndarray:
        """Advance the tank against air at ``t_air_c``.

        Returns the per-server heat absorbed (W), mirroring
        :meth:`PCMBank.step`.  The update is the exact exponential
        relaxation, so any timestep is stable.
        """
        if dt_s <= 0:
            raise ThermalModelError("dt must be positive")
        if ha_w_per_k < 0:
            raise ThermalModelError("hA must be non-negative")
        t_air = np.broadcast_to(
            np.asarray(t_air_c, dtype=np.float64), (self._n,))
        if self._mass == 0 or ha_w_per_k == 0:
            return np.zeros(self._n)
        tau = self.heat_capacity_j_per_k / ha_w_per_k
        alpha = 1.0 - math.exp(-dt_s / tau)
        before = self._temp.copy()
        self._temp = before + (t_air - before) * alpha
        return (self._temp - before) * self.heat_capacity_j_per_k / dt_s

    def reset(self, temp_c: float) -> None:
        """Re-initialize every server's storage to ``temp_c``."""
        self._temp[:] = float(temp_c)


def water_tank_equivalent(volume_liters: float, n: int,
                          initial_temp_c: float = 20.0
                          ) -> SensibleStorageBank:
    """A water tank of the same volume as the paper's wax deployment."""
    mass = volume_liters / 1000.0 * WATER.density_kg_per_m3
    return SensibleStorageBank(WATER, mass, n, initial_temp_c)

"""Thermal substrate: materials, PCM physics, server air path, cooling.

The paper's thermal stack (Section IV) is a CFD-validated lumped model of
(a) the air path from the CPU heat sinks to the wax containers, (b) the
wax's phase change, and (c) the cooling load left over after the wax has
absorbed or released heat.  This subpackage implements each layer:

* :mod:`~repro.thermal.materials` -- PCM property database (paraffin
  grades, molecular n-paraffin, water for sensible-storage comparisons);
* :mod:`~repro.thermal.pcm` -- enthalpy-method phase change model,
  vectorized over a cluster of servers;
* :mod:`~repro.thermal.server_thermal` -- first-order RC model of the air
  temperature at the wax;
* :mod:`~repro.thermal.cooling` -- cooling load accounting and peak
  tracking;
* :mod:`~repro.thermal.inlet` -- per-server inlet temperature variation
  (Figs. 19-20);
* :mod:`~repro.thermal.wax_estimator` -- the sensor-driven lookup-table
  wax state estimator the schedulers actually read (ref. [24]).
"""

from .materials import (MaterialProperties, PARAFFIN_COMMERCIAL_GRADES,
                        N_PARAFFIN, WATER, commercial_grade_for,
                        material_cost_usd)
from .pcm import PCMBank, PCMState
from .server_thermal import ServerAirModel
from .cooling import CoolingLoadTracker, CoolingSystem
from .inlet import draw_inlet_temperatures
from .plant import ChillerPlant
from .sensible import SensibleStorageBank, water_tank_equivalent
from .throttling import CPUThermalModel, worst_case_junction_temp_c
from .wax_estimator import WaxStateEstimator

__all__ = [
    "MaterialProperties", "PARAFFIN_COMMERCIAL_GRADES", "N_PARAFFIN",
    "WATER", "commercial_grade_for", "material_cost_usd",
    "PCMBank", "PCMState", "ServerAirModel", "CoolingLoadTracker",
    "CoolingSystem", "ChillerPlant", "CPUThermalModel",
    "SensibleStorageBank", "water_tank_equivalent",
    "worst_case_junction_temp_c", "draw_inlet_temperatures",
    "WaxStateEstimator",
]

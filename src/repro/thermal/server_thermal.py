"""First-order RC model of the air temperature at the wax containers.

The paper's CFD study reduces, inside DCsim, to a lumped model of the air
arriving at the wax: a steady-state rise proportional to IT power on top
of the server's inlet temperature, with a first-order lag from the thermal
mass of heat sinks and chassis air::

    T_ss(t)  = T_inlet + R_air * P_it(t)
    dT/dt    = (T_ss - T) / tau_air

The exact discrete update ``T += (T_ss - T) * (1 - exp(-dt/tau))`` is used
so the model is unconditionally stable for any timestep.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..config import ThermalConfig
from ..errors import ThermalModelError

ArrayLike = Union[float, np.ndarray]


class ServerAirModel:
    """Air temperature at the wax for a bank of ``n`` servers."""

    def __init__(self, thermal: ThermalConfig, n: int,
                 inlet_temp_c: ArrayLike = None) -> None:
        if n <= 0:
            raise ThermalModelError("air model needs at least one server")
        thermal.validate()
        self._cfg = thermal
        self._n = int(n)
        if inlet_temp_c is None:
            inlet = np.full(self._n, thermal.inlet_temp_c)
        else:
            inlet = np.broadcast_to(
                np.asarray(inlet_temp_c, dtype=np.float64),
                (self._n,)).copy()
        self._base_inlet = inlet
        self._inlet = inlet
        self._inlet_offset = 0.0
        # Servers start idle and thermally relaxed at the idle steady state.
        self._temp = self._inlet.copy()

    @property
    def n(self) -> int:
        """Number of servers."""
        return self._n

    @property
    def inlet_temp_c(self) -> np.ndarray:
        """Per-server inlet temperatures (deg C), including any offset."""
        return self._inlet

    @property
    def inlet_offset_c(self) -> float:
        """Current uniform inlet offset (cooling derate)."""
        return self._inlet_offset

    def set_inlet_offset(self, offset_c: float) -> None:
        """Shift every inlet by ``offset_c``.

        A derated cooling plant delivers warmer supply air; the offset
        applies from the next :meth:`step` on.  Setting the same offset
        twice is free, so callers may set it every tick.
        """
        if offset_c == self._inlet_offset:
            return
        if not np.isfinite(offset_c):
            raise ThermalModelError("inlet offset must be finite")
        self._inlet_offset = float(offset_c)
        self._inlet = self._base_inlet + self._inlet_offset

    @property
    def temperature_c(self) -> np.ndarray:
        """Current air temperatures at the wax (deg C)."""
        return self._temp

    def steady_state(self, power_w: ArrayLike) -> np.ndarray:
        """Steady-state air temperature for a given IT power draw."""
        power = np.broadcast_to(np.asarray(power_w, dtype=np.float64),
                                (self._n,))
        return self._inlet + self._cfg.r_air_c_per_w * power

    def step(self, power_w: ArrayLike, dt_s: float) -> np.ndarray:
        """Advance the air node by ``dt_s`` seconds and return temperatures."""
        if dt_s <= 0:
            raise ThermalModelError("dt must be positive")
        target = self.steady_state(power_w)
        alpha = 1.0 - math.exp(-dt_s / self._cfg.tau_air_s)
        self._temp = self._temp + (target - self._temp) * alpha
        return self._temp

    def reset(self, power_w: ArrayLike = 0.0) -> None:
        """Snap the air node to the steady state for ``power_w``."""
        self._temp = self.steady_state(power_w).copy()

    def state_dict(self) -> dict:
        """Base inlets, offset, and node temperatures, for snapshots."""
        return {
            "base_inlet_c": self._base_inlet.copy(),
            "inlet_offset_c": self._inlet_offset,
            "temp_c": self._temp.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._base_inlet = np.asarray(
            state["base_inlet_c"], dtype=np.float64).copy()
        self._inlet_offset = float(state["inlet_offset_c"])
        self._inlet = self._base_inlet + self._inlet_offset
        self._temp = np.asarray(state["temp_c"], dtype=np.float64).copy()

"""Chiller plant model: from heat removed to electricity consumed.

The evaluation's figure of merit is the peak *thermal* cooling load (it
sizes the plant), but the paper's TCO discussion also points at energy:
TTS/VMT shift cooling work into the off-peak hours, "leveraging less
expensive off-peak power" (Section V-E).  Pricing that requires a model
of the chiller's electrical draw.

We use the standard DOE-2-style part-load curve: a chiller rated at
``capacity_w`` thermal with nominal COP ``cop_nominal`` draws

    P_el(PLR) = (capacity_w / cop_effective) * (c0 + c1*PLR + c2*PLR^2)

where ``PLR`` is the part-load ratio (thermal load / capacity).  With
the default coefficients the machine is most efficient near ~70% load
and pays a constant-term penalty for idling -- which is exactly why a
smaller, better-utilized plant (what VMT enables) also saves energy,
not just capital.

``cop_effective`` is the nominal COP derated with condenser ambient:
every degree above ``reference_ambient_c`` costs
``cop_derate_per_c`` (fractional) of the nominal COP, the standard
linearized condenser-approach model.  The default derate is zero, so
plants built without an ambient model behave exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError

#: Floor on the ambient-derated COP as a fraction of nominal: a plant
#: never degrades below this, keeping the electrical model finite under
#: absurd heat-wave inputs.
MIN_COP_FRACTION = 0.2

AmbientLike = Union[None, float, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class ChillerPlant:
    """An electrically driven cooling plant with part-load behaviour."""

    capacity_w: float
    cop_nominal: float = 4.5
    part_load_coefficients: Tuple[float, float, float] = (0.20, 0.50, 0.30)
    #: Fraction of nominal COP lost per degree of condenser ambient
    #: above :attr:`reference_ambient_c` (and regained below it).  Zero
    #: disables ambient coupling entirely.
    cop_derate_per_c: float = 0.0
    #: Ambient at which the plant delivers its nominal COP.
    reference_ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ConfigurationError("plant capacity must be positive")
        if self.cop_nominal <= 0:
            raise ConfigurationError("COP must be positive")
        c0, c1, c2 = self.part_load_coefficients
        if abs(c0 + c1 + c2 - 1.0) > 1e-9:
            raise ConfigurationError(
                "part-load coefficients must sum to 1 (full-load anchor)")
        if self.cop_derate_per_c < 0:
            raise ConfigurationError("COP derate must be >= 0")

    @property
    def rated_electrical_w(self) -> float:
        """Electrical draw at full thermal load and reference ambient."""
        return self.capacity_w / self.cop_nominal

    def cop_at_ambient(self, ambient_c: AmbientLike) -> np.ndarray:
        """Nominal COP derated with condenser ambient (series ok).

        ``None`` means reference conditions.  The derate is linear and
        floored at ``MIN_COP_FRACTION`` of nominal so the model stays
        finite under extreme inputs.
        """
        if ambient_c is None:
            ambient_c = self.reference_ambient_c
        ambient = np.asarray(ambient_c, dtype=np.float64)
        factor = 1.0 - self.cop_derate_per_c * (
            ambient - self.reference_ambient_c)
        return self.cop_nominal * np.clip(factor, MIN_COP_FRACTION, None)

    def part_load_ratio(self, thermal_load_w: np.ndarray) -> np.ndarray:
        """Thermal load as a fraction of capacity, clipped to [0, 1].

        Loads above capacity mean the plant is undersized; callers should
        check :meth:`overloaded` / :meth:`overloaded_tick_fraction` --
        the energy model saturates.
        """
        load = np.asarray(thermal_load_w, dtype=np.float64)
        if np.any(load < 0):
            raise ConfigurationError("thermal load must be non-negative")
        return np.clip(load / self.capacity_w, 0.0, 1.0)

    def electrical_power_w(self, thermal_load_w: np.ndarray,
                           ambient_c: AmbientLike = None) -> np.ndarray:
        """Instantaneous electrical draw for a thermal load (series ok).

        ``ambient_c`` (scalar or per-sample series) applies the
        condenser derate; ``None`` prices at reference ambient, which is
        bit-identical to the pre-ambient model.
        """
        plr = self.part_load_ratio(thermal_load_w)
        c0, c1, c2 = self.part_load_coefficients
        curve = c0 + c1 * plr + c2 * plr ** 2
        return self.capacity_w / self.cop_at_ambient(ambient_c) * curve

    def effective_cop(self, thermal_load_w: np.ndarray,
                      ambient_c: AmbientLike = None) -> np.ndarray:
        """Delivered COP at a given load (degrades at low part load)."""
        load = np.asarray(thermal_load_w, dtype=np.float64)
        power = self.electrical_power_w(load, ambient_c)
        return np.divide(load, power, out=np.zeros_like(power),
                         where=power > 0)

    def overloaded(self, thermal_load_w: Sequence[float]) -> bool:
        """True when any sample exceeds the plant's thermal capacity."""
        return bool(np.any(np.asarray(thermal_load_w) > self.capacity_w))

    def overloaded_tick_fraction(self,
                                 thermal_load_w: Sequence[float]) -> float:
        """Fraction of samples above capacity (0.0 for a sized plant).

        Above capacity the part-load model clips PLR to 1.0, so every
        overloaded tick is billed as if the plant kept up -- the bill
        under-counts and, physically, the room heats up.  Cost paths
        must surface this fraction instead of silently clipping.
        """
        load = np.asarray(thermal_load_w, dtype=np.float64)
        if load.size == 0:
            return 0.0
        return float((load > self.capacity_w).mean())

    def energy_kwh(self, thermal_load_w: Sequence[float],
                   dt_s: float, ambient_c: AmbientLike = None) -> float:
        """Total electrical energy (kWh) to serve a load series."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        power = self.electrical_power_w(np.asarray(thermal_load_w),
                                        ambient_c)
        return float(power.sum() * dt_s / 3.6e6)

    def resized(self, reduction_fraction: float) -> "ChillerPlant":
        """A plant shrunk by ``reduction_fraction`` (VMT oversubscription)."""
        if not 0.0 <= reduction_fraction < 1.0:
            raise ConfigurationError("reduction must be in [0, 1)")
        return ChillerPlant(
            capacity_w=self.capacity_w * (1.0 - reduction_fraction),
            cop_nominal=self.cop_nominal,
            part_load_coefficients=self.part_load_coefficients,
            cop_derate_per_c=self.cop_derate_per_c,
            reference_ambient_c=self.reference_ambient_c)

"""Chiller plant model: from heat removed to electricity consumed.

The evaluation's figure of merit is the peak *thermal* cooling load (it
sizes the plant), but the paper's TCO discussion also points at energy:
TTS/VMT shift cooling work into the off-peak hours, "leveraging less
expensive off-peak power" (Section V-E).  Pricing that requires a model
of the chiller's electrical draw.

We use the standard DOE-2-style part-load curve: a chiller rated at
``capacity_w`` thermal with nominal COP ``cop_nominal`` draws

    P_el(PLR) = (capacity_w / cop_nominal) * (c0 + c1*PLR + c2*PLR^2)

where ``PLR`` is the part-load ratio (thermal load / capacity).  With
the default coefficients the machine is most efficient near ~70% load
and pays a constant-term penalty for idling -- which is exactly why a
smaller, better-utilized plant (what VMT enables) also saves energy,
not just capital.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ChillerPlant:
    """An electrically driven cooling plant with part-load behaviour."""

    capacity_w: float
    cop_nominal: float = 4.5
    part_load_coefficients: Tuple[float, float, float] = (0.20, 0.50, 0.30)

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ConfigurationError("plant capacity must be positive")
        if self.cop_nominal <= 0:
            raise ConfigurationError("COP must be positive")
        c0, c1, c2 = self.part_load_coefficients
        if abs(c0 + c1 + c2 - 1.0) > 1e-9:
            raise ConfigurationError(
                "part-load coefficients must sum to 1 (full-load anchor)")

    @property
    def rated_electrical_w(self) -> float:
        """Electrical draw at full thermal load."""
        return self.capacity_w / self.cop_nominal

    def part_load_ratio(self, thermal_load_w: np.ndarray) -> np.ndarray:
        """Thermal load as a fraction of capacity, clipped to [0, 1].

        Loads above capacity mean the plant is undersized; callers should
        check :meth:`overloaded` -- the energy model saturates.
        """
        load = np.asarray(thermal_load_w, dtype=np.float64)
        if np.any(load < 0):
            raise ConfigurationError("thermal load must be non-negative")
        return np.clip(load / self.capacity_w, 0.0, 1.0)

    def electrical_power_w(self, thermal_load_w: np.ndarray) -> np.ndarray:
        """Instantaneous electrical draw for a thermal load (series ok)."""
        plr = self.part_load_ratio(thermal_load_w)
        c0, c1, c2 = self.part_load_coefficients
        return self.rated_electrical_w * (c0 + c1 * plr + c2 * plr ** 2)

    def effective_cop(self, thermal_load_w: np.ndarray) -> np.ndarray:
        """Delivered COP at a given load (degrades at low part load)."""
        load = np.asarray(thermal_load_w, dtype=np.float64)
        power = self.electrical_power_w(load)
        return np.divide(load, power, out=np.zeros_like(power),
                         where=power > 0)

    def overloaded(self, thermal_load_w: Sequence[float]) -> bool:
        """True when any sample exceeds the plant's thermal capacity."""
        return bool(np.any(np.asarray(thermal_load_w) > self.capacity_w))

    def energy_kwh(self, thermal_load_w: Sequence[float],
                   dt_s: float) -> float:
        """Total electrical energy (kWh) to serve a load series."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        power = self.electrical_power_w(np.asarray(thermal_load_w))
        return float(power.sum() * dt_s / 3.6e6)

    def resized(self, reduction_fraction: float) -> "ChillerPlant":
        """A plant shrunk by ``reduction_fraction`` (VMT oversubscription)."""
        if not 0.0 <= reduction_fraction < 1.0:
            raise ConfigurationError("reduction must be in [0, 1)")
        return ChillerPlant(
            capacity_w=self.capacity_w * (1.0 - reduction_fraction),
            cop_nominal=self.cop_nominal,
            part_load_coefficients=self.part_load_coefficients)

"""Enthalpy-method phase change model, vectorized over a bank of servers.

Each server carries ``mass_kg`` of wax.  The model tracks specific
enthalpy ``h`` (J/kg, referenced to solid wax at 0 deg C) and derives
temperature and melt fraction from the piecewise enthalpy curve::

    h < h_sol            solid,   T = h / cp_s
    h_sol <= h <= h_liq  melting, T = T_melt (temperature pinned)
    h > h_liq            liquid,  T = T_melt + (h - h_liq) / cp_l

with ``h_sol = cp_s * T_melt`` and ``h_liq = h_sol + L``.  The enthalpy
method makes the melt-front bookkeeping trivial and conserves energy by
construction: whatever heat flows in across a step is exactly the enthalpy
gained.

Heat exchange with the server's air stream is convective,
``q = hA * (T_air - T_wax)``, the same lumped coupling the paper derives
from its CFD study for use inside DCsim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..config import WaxConfig
from ..errors import ThermalModelError

ArrayLike = Union[float, np.ndarray]

#: Tolerance on melt fraction when deciding a server is "fully melted".
#: The enthalpy integration accumulates float rounding of order 1e-16
#: per step, so an exact ``>= 1.0`` comparison flickers at the boundary;
#: anything within this distance of 1.0 counts as melted.
FULL_MELT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PCMState:
    """Immutable snapshot of a PCM bank (copies of the state arrays)."""

    temperature_c: np.ndarray
    melt_fraction: np.ndarray
    stored_latent_j: np.ndarray


class PCMBank:
    """Wax state for ``n`` servers, advanced with a shared timestep.

    Parameters
    ----------
    wax:
        Material and quantity per server.
    n:
        Number of servers in the bank.
    initial_temp_c:
        Starting wax temperature; must be at or below the melt point for
        the usual "starts solid" initial condition, but any value works.
    """

    def __init__(self, wax: WaxConfig, n: int,
                 initial_temp_c: float = 20.0) -> None:
        if n <= 0:
            raise ThermalModelError("PCM bank needs at least one server")
        wax.validate()
        self._wax = wax
        self._n = int(n)
        self._mass = wax.mass_kg
        self._cp_s = wax.specific_heat_solid_j_per_kg_k
        self._cp_l = wax.specific_heat_liquid_j_per_kg_k
        self._latent = wax.latent_heat_j_per_kg
        self._t_melt = wax.melt_temp_c
        self._h_sol = self._cp_s * self._t_melt
        self._h_liq = self._h_sol + self._latent
        self._h = np.full(self._n, self._enthalpy_at(initial_temp_c),
                          dtype=np.float64)

    # -- enthalpy curve -------------------------------------------------

    def _enthalpy_at(self, temp_c: float) -> float:
        """Specific enthalpy of fully relaxed wax at ``temp_c``.

        Inside the melt band the temperature curve is not invertible: any
        enthalpy in ``[h_sol, h_liq]`` reads as ``T_melt``.  This mapping
        therefore pins a convention for the ambiguous input
        ``temp_c == melt_temp_c``: it returns the **solidus** (all-solid,
        melt fraction 0.0) enthalpy, matching the "starts solid" initial
        condition every experiment in the paper assumes.  A bank
        initialized exactly at the melt point thus reports
        ``melt_fraction == 0.0``, not 1.0 or anything in between.
        """
        if temp_c <= self._t_melt:
            return self._cp_s * temp_c
        return self._h_liq + self._cp_l * (temp_c - self._t_melt)

    def temperature_of_enthalpy(self, h: ArrayLike) -> np.ndarray:
        """Map specific enthalpy (J/kg) to temperature (deg C)."""
        h = np.asarray(h, dtype=np.float64)
        solid = h / self._cp_s
        liquid = self._t_melt + (h - self._h_liq) / self._cp_l
        temp = np.where(h < self._h_sol, solid,
                        np.where(h > self._h_liq, liquid, self._t_melt))
        return temp

    def melt_fraction_of_enthalpy(self, h: ArrayLike) -> np.ndarray:
        """Map specific enthalpy (J/kg) to melt fraction in [0, 1]."""
        h = np.asarray(h, dtype=np.float64)
        if self._latent <= 0:
            # Degenerate material: no latent band; treat anything past the
            # melt point as fully melted.
            return np.where(h >= self._h_sol, 1.0, 0.0)
        return np.clip((h - self._h_sol) / self._latent, 0.0, 1.0)

    # -- read-only state ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of servers in the bank."""
        return self._n

    @property
    def wax(self) -> WaxConfig:
        """Wax configuration this bank was built from."""
        return self._wax

    @property
    def melt_temp_c(self) -> float:
        """Physical melting temperature (PMT)."""
        return self._t_melt

    @property
    def latent_capacity_j(self) -> float:
        """Total latent storage per server (J)."""
        return self._mass * self._latent

    @property
    def temperature_c(self) -> np.ndarray:
        """Current wax temperatures (deg C), one per server."""
        return self.temperature_of_enthalpy(self._h)

    @property
    def melt_fraction(self) -> np.ndarray:
        """Current melt fractions in [0, 1], one per server."""
        return self.melt_fraction_of_enthalpy(self._h)

    @property
    def stored_latent_j(self) -> np.ndarray:
        """Latent energy currently stored per server (J)."""
        return self.melt_fraction * self.latent_capacity_j

    @property
    def enthalpy_j(self) -> np.ndarray:
        """Total enthalpy per server (J, referenced to solid wax at 0 C).

        The quantity the energy-balance invariant audits: across any
        :meth:`step`, the change in this array must equal the returned
        heat flow times the timestep, exactly what the enthalpy method
        guarantees by construction.
        """
        return self._h * self._mass

    def snapshot(self) -> PCMState:
        """Return an immutable copy of the current state."""
        return PCMState(
            temperature_c=self.temperature_c.copy(),
            melt_fraction=self.melt_fraction.copy(),
            stored_latent_j=self.stored_latent_j.copy(),
        )

    def register_metrics(self, registry) -> None:
        """Publish wax-state gauges on a :class:`~repro.obs.registry.MetricRegistry`.

        Callback-backed reads of live state; registering never perturbs
        the enthalpy integration.
        """
        registry.gauge("pcm.mean_melt_fraction",
                       lambda: float(self.melt_fraction.mean()))
        registry.gauge("pcm.fully_melted_servers",
                       lambda: float(np.count_nonzero(
                           self.melt_fraction
                           >= 1.0 - FULL_MELT_TOLERANCE)))
        registry.gauge("pcm.mean_temp_c",
                       lambda: float(self.temperature_c.mean()))
        registry.gauge("pcm.stored_latent_j",
                       lambda: float(self.stored_latent_j.sum()))

    # -- dynamics --------------------------------------------------------

    def step(self, t_air_c: ArrayLike, ha_w_per_k: float,
             dt_s: float) -> np.ndarray:
        """Advance the wax by ``dt_s`` seconds against air at ``t_air_c``.

        Returns the per-server heat absorbed by the wax over the step in
        watts (negative while the wax releases heat back to the air).
        The integrator subdivides the step when the sensible time constant
        ``m*cp / hA`` is short relative to ``dt_s`` so explicit updates
        stay stable for any configuration.
        """
        if dt_s <= 0:
            raise ThermalModelError("dt must be positive")
        if ha_w_per_k < 0:
            raise ThermalModelError("hA must be non-negative")
        t_air = np.broadcast_to(
            np.asarray(t_air_c, dtype=np.float64), (self._n,))
        if self._mass <= 0 or ha_w_per_k == 0:
            return np.zeros(self._n)

        cp_min = min(self._cp_s, self._cp_l)
        tau = self._mass * cp_min / ha_w_per_k
        n_sub = max(1, int(math.ceil(dt_s / (0.25 * tau))))
        sub_dt = dt_s / n_sub

        h_before = self._h.copy()
        for __ in range(n_sub):
            t_wax = self.temperature_of_enthalpy(self._h)
            q = ha_w_per_k * (t_air - t_wax)  # W into the wax
            self._h += q * sub_dt / self._mass
        return (self._h - h_before) * self._mass / dt_s

    def set_melt_fraction(self, fraction: ArrayLike) -> None:
        """Force the melt fraction (temperature pinned at the melt point).

        Useful for constructing test scenarios and for the estimator's
        lookup-table calibration runs.
        """
        fraction = np.clip(
            np.broadcast_to(np.asarray(fraction, dtype=np.float64),
                            (self._n,)), 0.0, 1.0)
        self._h = self._h_sol + fraction * self._latent

    def reset(self, temp_c: float) -> None:
        """Re-initialize every server's wax to relaxed state at ``temp_c``."""
        self._h[:] = self._enthalpy_at(temp_c)

    def state_dict(self) -> dict:
        """The specific enthalpies -- the bank's only mutable state."""
        return {"specific_enthalpy_j_per_kg": self._h.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._h = np.asarray(state["specific_enthalpy_j_per_kg"],
                             dtype=np.float64).copy()

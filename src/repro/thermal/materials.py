"""Phase change material property database.

The paper (Section II, 'PCM Selection') motivates commercial paraffin wax:
non-corrosive, non-conductive, cheap (~$1,000/ton), but only available with
melting temperatures in roughly the 35.7-60 deg C band.  Molecularly pure
n-paraffins reach lower melting points but cost >$75,000/ton, which is what
makes *virtual* melting temperature adjustment valuable.  This module holds
those materials and the helpers the TCO model uses to price them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..units import KG_PER_TON


@dataclass(frozen=True)
class MaterialProperties:
    """Thermophysical and economic properties of a storage material."""

    name: str
    melt_temp_c: float
    latent_heat_j_per_kg: float
    density_kg_per_m3: float
    specific_heat_solid_j_per_kg_k: float
    specific_heat_liquid_j_per_kg_k: float
    cost_usd_per_ton: float
    commercially_available: bool = True

    @property
    def volumetric_latent_j_per_l(self) -> float:
        """Latent storage per liter (J/L)."""
        return self.latent_heat_j_per_kg * self.density_kg_per_m3 / 1000.0

    def energy_for_mass(self, mass_kg: float) -> float:
        """Latent storage (J) for ``mass_kg`` of this material."""
        if mass_kg < 0:
            raise ConfigurationError("mass must be non-negative")
        return mass_kg * self.latent_heat_j_per_kg


def _paraffin(name: str, melt: float, *, cost: float = 1000.0,
              commercial: bool = True) -> MaterialProperties:
    """Build a paraffin grade; thermophysics vary little across grades."""
    return MaterialProperties(
        name=name,
        melt_temp_c=melt,
        latent_heat_j_per_kg=200e3,
        density_kg_per_m3=800.0,
        specific_heat_solid_j_per_kg_k=2100.0,
        specific_heat_liquid_j_per_kg_k=2400.0,
        cost_usd_per_ton=cost,
        commercially_available=commercial,
    )


#: Commercial paraffin grades.  35.7 deg C is "the lowest commercially
#: available temperature" deployed in the paper's test server; grades run
#: up to roughly 60 deg C in ~5 degree steps.
PARAFFIN_COMMERCIAL_GRADES: Sequence[MaterialProperties] = (
    _paraffin("paraffin-35.7", 35.7),
    _paraffin("paraffin-40", 40.0),
    _paraffin("paraffin-45", 45.0),
    _paraffin("paraffin-50", 50.0),
    _paraffin("paraffin-55", 55.0),
    _paraffin("paraffin-60", 60.0),
)

#: Molecularly pure n-paraffin: melting points below the commercial band
#: are possible (the paper prices one near 30 deg C) but cost-prohibitive.
N_PARAFFIN = _paraffin("n-paraffin-30", 30.0, cost=75000.0,
                       commercial=False)

#: Water, for comparisons against sensible-heat storage proposals
#: (Section VI); latent heat listed is fusion at 0 deg C, unusable in a
#: 20-50 deg C datacenter, which is the point of the comparison.
WATER = MaterialProperties(
    name="water",
    melt_temp_c=0.0,
    latent_heat_j_per_kg=334e3,
    density_kg_per_m3=1000.0,
    specific_heat_solid_j_per_kg_k=2100.0,
    specific_heat_liquid_j_per_kg_k=4186.0,
    cost_usd_per_ton=5.0,
)


def commercial_grade_for(required_melt_temp_c: float,
                         tolerance_c: float = 0.5) -> Optional[MaterialProperties]:
    """Return the commercial paraffin grade matching a required melt point.

    Returns ``None`` when no commercial grade lies within ``tolerance_c``
    of the requirement -- the situation that forces either expensive
    n-paraffin (TTS) or VMT.
    """
    best: Optional[MaterialProperties] = None
    best_gap = tolerance_c
    for grade in PARAFFIN_COMMERCIAL_GRADES:
        gap = abs(grade.melt_temp_c - required_melt_temp_c)
        if gap <= best_gap:
            best = grade
            best_gap = gap
    return best


def material_cost_usd(material: MaterialProperties, mass_kg: float) -> float:
    """Purchase cost in USD for ``mass_kg`` of ``material``."""
    if mass_kg < 0:
        raise ConfigurationError("mass must be non-negative")
    return material.cost_usd_per_ton * mass_kg / KG_PER_TON


def cheapest_material_for(required_melt_temp_c: float,
                          tolerance_c: float = 0.5) -> MaterialProperties:
    """Cheapest material meeting a melt-point requirement.

    Falls back to n-paraffin when no commercial grade fits, mirroring the
    paper's cost argument (Section V-E): achieving a ~30 deg C melt point
    with TTS alone would cost on the order of $10M datacenter-wide.
    """
    grade = commercial_grade_for(required_melt_temp_c, tolerance_c)
    if grade is not None:
        return grade
    return N_PARAFFIN

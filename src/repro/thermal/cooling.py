"""Cooling load accounting and cooling system sizing.

TTS/VMT do not remove heat; they time-shift it.  The instantaneous load on
the cooling system is therefore the IT power minus whatever the wax is
absorbing (plus whatever refreezing wax is releasing)::

    q_cooling(t) = sum_i [ P_it_i(t) - q_wax_i(t) ]

The figures of merit in the paper's evaluation all derive from this
series: the peak cooling load (what the cooling plant must be sized for)
and its reduction relative to a baseline scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError, ThermalModelError


class CoolingLoadTracker:
    """Accumulates the cluster cooling load series across a simulation."""

    def __init__(self) -> None:
        self._loads_w: List[float] = []
        self._times_s: List[float] = []

    def record(self, time_s: float, server_power_w: np.ndarray,
               wax_absorption_w: np.ndarray) -> float:
        """Record one step; returns the cluster cooling load in watts.

        ``wax_absorption_w`` is positive while wax stores heat (reducing
        the cooling load) and negative while it releases heat.

        Non-finite inputs are rejected: a single NaN or inf sample would
        silently poison :attr:`peak_w` (``np.max`` propagates NaN) and
        every reduction derived from it.
        """
        if not np.isfinite(time_s):
            raise ThermalModelError(
                f"cooling sample time must be finite, got {time_s!r}")
        power = np.asarray(server_power_w, dtype=np.float64)
        absorbed = np.asarray(wax_absorption_w, dtype=np.float64)
        for name, arr in (("server_power_w", power),
                          ("wax_absorption_w", absorbed)):
            bad = ~np.isfinite(arr)
            if np.any(bad):
                idx = int(np.argmax(bad))
                raise ThermalModelError(
                    f"{name} contains a non-finite value "
                    f"({np.ravel(arr)[idx]!r} at index {idx}); refusing "
                    "to record a sample that would poison peak_w")
        load = float(power.sum() - absorbed.sum())
        self._times_s.append(float(time_s))
        self._loads_w.append(load)
        return load

    @property
    def times_s(self) -> np.ndarray:
        """Timestamps of recorded samples (s)."""
        return np.asarray(self._times_s)

    @property
    def loads_w(self) -> np.ndarray:
        """Cluster cooling load samples (W)."""
        return np.asarray(self._loads_w)

    @property
    def peak_w(self) -> float:
        """Peak cooling load over the run (W)."""
        if not self._loads_w:
            raise ThermalModelError("no cooling samples recorded")
        return float(np.max(self._loads_w))

    @property
    def mean_w(self) -> float:
        """Mean cooling load over the run (W)."""
        if not self._loads_w:
            raise ThermalModelError("no cooling samples recorded")
        return float(np.mean(self._loads_w))

    def peak_reduction_vs(self, baseline_peak_w: float) -> float:
        """Fractional peak reduction relative to a baseline peak.

        Positive when this run's peak is lower than the baseline's, e.g.
        0.128 for the paper's headline 12.8% reduction.
        """
        if baseline_peak_w <= 0:
            raise ThermalModelError("baseline peak must be positive")
        return 1.0 - self.peak_w / baseline_peak_w


@dataclass(frozen=True)
class CoolingSystem:
    """A provisioned cooling plant with a fixed removal capacity.

    The capacity is what the TCO model prices; ``utilization`` and
    ``overloaded`` support what-if analyses for oversubscription
    (Section V-E): shrink the plant by the VMT peak reduction and check
    the load series still fits.
    """

    capacity_w: float

    def __post_init__(self) -> None:
        if self.capacity_w <= 0:
            raise ConfigurationError("cooling capacity must be positive")

    def utilization(self, load_w: Sequence[float]) -> np.ndarray:
        """Fraction of capacity used at each sample."""
        return np.asarray(load_w, dtype=np.float64) / self.capacity_w

    def overloaded(self, load_w: Sequence[float]) -> bool:
        """True when any sample exceeds capacity (servers would overheat)."""
        return bool(np.any(np.asarray(load_w) > self.capacity_w))

    def headroom_w(self, load_w: Sequence[float]) -> float:
        """Capacity minus the observed peak (negative when overloaded)."""
        return self.capacity_w - float(np.max(np.asarray(load_w)))

    def resized(self, reduction_fraction: float) -> "CoolingSystem":
        """A plant shrunk by ``reduction_fraction`` (e.g. 0.128)."""
        if not 0.0 <= reduction_fraction < 1.0:
            raise ConfigurationError("reduction must be in [0, 1)")
        return CoolingSystem(self.capacity_w * (1.0 - reduction_fraction))

"""Sensor-driven lookup-table estimator of the wax melt state.

VMT-WA needs to know how melted each server's wax is, but production
servers cannot see inside the wax containers.  The paper (Section III-B,
'Tracking Wax State', and ref. [24]) runs a lightweight per-server model:
a container-exterior temperature sensor detects when the wax is in
transition, and a lookup table maps the sensed air temperature (and CPU
power) to a melt/freeze rate that is integrated once per minute.

This module reproduces that estimator.  The lookup table is precomputed
from the same physics as the ground-truth model (``hA * dT / E_latent``)
but quantized into coarse temperature bins and fed *noisy* sensor
readings, so the estimate genuinely diverges from the truth the way a
deployed estimator would; tests bound that divergence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ThermalConfig, WaxConfig
from ..errors import ThermalModelError


class WaxStateEstimator:
    """Integrates a quantized melt-rate lookup table from sensor readings."""

    def __init__(self, wax: WaxConfig, thermal: ThermalConfig, n: int, *,
                 bin_width_c: float = 0.5, table_span_c: float = 25.0,
                 sensor_noise_c: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n <= 0:
            raise ThermalModelError("estimator needs at least one server")
        if bin_width_c <= 0 or table_span_c <= 0:
            raise ThermalModelError("lookup table bins must be positive")
        wax.validate()
        self._n = int(n)
        self._t_melt = wax.melt_temp_c
        self._sensor_noise = float(sensor_noise_c)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._estimate = np.zeros(self._n)

        latent_j = wax.latent_capacity_j
        if latent_j <= 0:
            # No latent storage to track; the estimate stays at zero.
            self._rate_table = np.zeros(1)
            self._bin_edges = np.array([-table_span_c, table_span_c])
            return

        # Lookup table: melt-rate (fraction per second) per temperature
        # delta bin, Delta T = T_air - T_melt, spanning +-table_span_c.
        edges = np.arange(-table_span_c, table_span_c + bin_width_c,
                          bin_width_c)
        centers = (edges[:-1] + edges[1:]) / 2.0
        self._bin_edges = edges
        self._rate_table = thermal.ha_w_per_k * centers / latent_j

    @property
    def n(self) -> int:
        """Number of servers being tracked."""
        return self._n

    @property
    def estimate(self) -> np.ndarray:
        """Current estimated melt fractions in [0, 1]."""
        return self._estimate

    @property
    def table_size(self) -> int:
        """Number of lookup-table entries."""
        return len(self._rate_table)

    def register_metrics(self, registry) -> None:
        """Publish estimator gauges on a :class:`~repro.obs.registry.MetricRegistry`."""
        registry.gauge("estimator.mean_estimate",
                       lambda: float(self._estimate.mean()))
        registry.gauge("estimator.max_estimate",
                       lambda: float(self._estimate.max()))

    def _sense(self, t_air_c: np.ndarray) -> np.ndarray:
        """Apply container-exterior sensor noise to the air temperature."""
        if self._sensor_noise == 0.0:
            return t_air_c
        return t_air_c + self._rng.normal(0.0, self._sensor_noise,
                                          size=self._n)

    def update(self, t_air_c: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance the estimate by ``dt_s`` using a sensed air temperature.

        Returns the updated per-server melt fraction estimates.
        """
        if dt_s <= 0:
            raise ThermalModelError("dt must be positive")
        t_air = np.broadcast_to(np.asarray(t_air_c, dtype=np.float64),
                                (self._n,))
        sensed = self._sense(t_air)
        delta = sensed - self._t_melt
        bins = np.clip(
            np.digitize(delta, self._bin_edges) - 1,
            0, len(self._rate_table) - 1)
        rates = self._rate_table[bins]
        self._estimate = np.clip(self._estimate + rates * dt_s, 0.0, 1.0)
        return self._estimate

    def correct(self, true_fraction: np.ndarray,
                mask: Optional[np.ndarray] = None) -> None:
        """Re-anchor the estimate to ground truth.

        The container-exterior sensor unambiguously signals the *end* of a
        transition (temperature leaves the melt plateau), which deployed
        estimators use to resynchronize at 0% and 100%.  Tests and the
        simulator call this at phase boundaries.
        """
        truth = np.broadcast_to(
            np.asarray(true_fraction, dtype=np.float64), (self._n,))
        if mask is None:
            self._estimate = np.clip(truth, 0.0, 1.0).copy()
        else:
            self._estimate = np.where(mask, np.clip(truth, 0.0, 1.0),
                                      self._estimate)

    def error_vs(self, true_fraction: np.ndarray) -> float:
        """Mean absolute estimation error against ground truth."""
        truth = np.broadcast_to(
            np.asarray(true_fraction, dtype=np.float64), (self._n,))
        return float(np.mean(np.abs(self._estimate - truth)))

    def reset(self) -> None:
        """Zero the estimate (fresh, fully frozen wax)."""
        self._estimate = np.zeros(self._n)

    def state_dict(self) -> dict:
        """The integrated estimate (the RNG belongs to its stream owner)."""
        return {"estimate": self._estimate.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._estimate = np.asarray(state["estimate"],
                                    dtype=np.float64).copy()

"""CPU junction temperatures and thermal throttling checks.

The paper's CFD study sizes the wax so the server "can hold 4.0 liters
of wax without exceeding CPU thermal limits", and TTS's premise is that
the right configuration accommodates load "without overheating or
thermal downclocking" (Section II).  VMT deliberately runs a hot group
hotter, so a reproduction should *verify* the CPUs stay inside their
limits rather than assume it.

The junction model is the standard lumped stack: each CPU's die sits at

    T_junction = T_inlet + theta_sa * (P_cpu_idle + P_cpu_dynamic)

where ``theta_sa`` is the sink-to-air thermal resistance of the CPU's
heatsink.  Throttling engages above ``throttle_temp_c`` (Intel's PROCHOT
for this class of Xeon is ~88-98 deg C; we use a conservative 85).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..config import ServerConfig, ThermalConfig
from ..errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CPUThermalModel:
    """Per-CPU junction temperature and throttle detection."""

    theta_sa_c_per_w: float = 0.30
    throttle_temp_c: float = 85.0
    idle_power_per_cpu_w: float = 15.0

    def __post_init__(self) -> None:
        if self.theta_sa_c_per_w <= 0:
            raise ConfigurationError("theta_sa must be positive")
        if self.throttle_temp_c <= 0:
            raise ConfigurationError("throttle temp must be positive")
        if self.idle_power_per_cpu_w < 0:
            raise ConfigurationError("idle power must be non-negative")

    def junction_temp_c(self, inlet_temp_c: ArrayLike,
                        dynamic_power_per_server_w: ArrayLike,
                        server: ServerConfig) -> np.ndarray:
        """Hottest CPU junction temperature per server.

        ``dynamic_power_per_server_w`` is the server's total dynamic
        (core) power; it divides evenly across the sockets, which is an
        upper bound per socket only when placement is balanced -- the
        schedulers here fill cores without socket affinity, so the even
        split is the right model.
        """
        server.validate()
        inlet = np.asarray(inlet_temp_c, dtype=np.float64)
        dynamic = np.asarray(dynamic_power_per_server_w, dtype=np.float64)
        if np.any(dynamic < 0):
            raise ConfigurationError("dynamic power must be non-negative")
        per_cpu = dynamic / server.sockets + self.idle_power_per_cpu_w
        return inlet + self.theta_sa_c_per_w * per_cpu

    def throttled(self, inlet_temp_c: ArrayLike,
                  dynamic_power_per_server_w: ArrayLike,
                  server: ServerConfig) -> np.ndarray:
        """Mask of servers whose hottest CPU would throttle."""
        temps = self.junction_temp_c(inlet_temp_c,
                                     dynamic_power_per_server_w, server)
        return temps > self.throttle_temp_c

    def headroom_c(self, inlet_temp_c: ArrayLike,
                   dynamic_power_per_server_w: ArrayLike,
                   server: ServerConfig) -> np.ndarray:
        """Degrees below the throttle point (negative when throttling)."""
        temps = self.junction_temp_c(inlet_temp_c,
                                     dynamic_power_per_server_w, server)
        return self.throttle_temp_c - temps


def worst_case_junction_temp_c(server: ServerConfig,
                               thermal: ThermalConfig,
                               model: CPUThermalModel = CPUThermalModel(),
                               inlet_margin_c: float = 4.0) -> float:
    """Junction temperature of a fully packed server at a hot inlet.

    The deployment sanity check: even a server packed with the hottest
    workload at an unlucky (+``inlet_margin_c``) inlet must not throttle.
    Used by the calibration validator.
    """
    max_dynamic = server.peak_power_w - server.idle_power_w
    inlet = thermal.inlet_temp_c + inlet_margin_c
    return float(model.junction_temp_c(inlet, max_dynamic, server))

"""Per-server inlet temperature variation.

Real datacenters see inlet temperature spread between servers due to
airflow (Section V-D cites Weatherman).  The paper models it as a normal
distribution around the nominal inlet and evaluates standard deviations of
0, 1 and 2 deg C (so 95% of servers within +-0, 2 and 4 deg C).
"""

from __future__ import annotations

import numpy as np

from ..config import ThermalConfig
from ..errors import ThermalModelError


def draw_inlet_temperatures(thermal: ThermalConfig, n: int,
                            rng: np.random.Generator) -> np.ndarray:
    """Draw per-server inlet temperatures for a cluster of ``n`` servers.

    With ``inlet_stdev_c == 0`` every server gets exactly the nominal
    inlet (and the RNG is not consumed, keeping zero-variance runs
    bit-identical regardless of seed).
    """
    if n <= 0:
        raise ThermalModelError("need at least one server")
    if thermal.inlet_stdev_c == 0.0:
        return np.full(n, thermal.inlet_temp_c)
    return rng.normal(thermal.inlet_temp_c, thermal.inlet_stdev_c, size=n)

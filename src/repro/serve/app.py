"""The v1 HTTP application: routes over the job manager.

Endpoint map (all JSON; one resource per request, ``Connection: close``):

    GET  /                      service banner + endpoint index
    GET  /v1/healthz            liveness probe
    GET  /v1/meta               API version, policies, scenarios, backends
    POST /v1/runs               enqueue one simulation        -> 202 + job
    POST /v1/sweeps             enqueue a GV sweep            -> 202 + job
    POST /v1/suites             enqueue the scenario suite    -> 202 + job
    POST /v1/live               enqueue a streaming live run  -> 202 + job
    GET  /v1/jobs               every job record (no results)
    GET  /v1/runs/{id}          one job's status + provenance
    GET  /v1/runs/{id}/result   the finished payload (409 while running)
    GET  /v1/runs/{id}/events   SSE: status -> span frames -> done/failed
    GET  /v1/registry           every content-addressed registry entry
    GET  /v1/leaderboard        cached board -> 200; else enqueue -> 202

Job ids are uniform across kinds: a sweep submitted to ``/v1/sweeps``
is still polled at ``/v1/runs/{id}`` -- "runs" is the job collection,
not just single simulations.

Every response that carries a result also carries its provenance:
``cached`` says whether the registry served it, and ``manifest`` points
at the run-ledger manifest that recorded the original execution.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, AsyncIterator, Dict, Tuple

from ..api import API_VERSION
from ..core.policies import SCHEDULER_NAMES
from ..kernel import BACKENDS
from ..scenarios import scenario_names
from .http import HttpError, Request, Router, SseResponse, json_response
from .jobs import JobManager, validate_suite_request

#: Seconds between SSE poll iterations; spans stream as they land.
SSE_POLL_S = 0.05


def _job_payload(record) -> Dict[str, Any]:
    return {"job": record.to_json()}


def build_router(manager: JobManager) -> Router:
    """Wire the v1 routes onto one :class:`JobManager`."""
    router = Router()

    async def index(request: Request):
        return {
            "service": "repro-sim",
            "api_version": API_VERSION,
            "endpoints": [
                "GET /v1/healthz", "GET /v1/meta", "POST /v1/runs",
                "POST /v1/sweeps", "POST /v1/suites", "POST /v1/live",
                "GET /v1/jobs", "GET /v1/runs/{id}",
                "GET /v1/runs/{id}/result", "GET /v1/runs/{id}/events",
                "GET /v1/registry", "GET /v1/leaderboard",
            ],
        }

    async def healthz(request: Request):
        return {"status": "ok", "api_version": API_VERSION}

    async def meta(request: Request):
        from .. import __version__
        return {
            "api_version": API_VERSION,
            "library_version": __version__,
            "policies": list(SCHEDULER_NAMES),
            "scenarios": scenario_names(),
            "backends": list(BACKENDS),
            "data_dir": manager.data_dir,
        }

    def _submit(kind: str):
        async def handler(request: Request):
            payload = request.json()
            loop = asyncio.get_running_loop()
            # submit() may generate a demand trace to compute the
            # registry key -- cheap at test scale, but keep the event
            # loop responsive regardless.
            record = await loop.run_in_executor(
                None, manager.submit, kind, payload)
            return json_response(_job_payload(record), status=202)
        return handler

    async def list_jobs(request: Request):
        return {"jobs": [record.to_json() for record in manager.list()]}

    async def get_job(request: Request):
        record = manager.get(request.params["id"])
        return record.to_json()

    async def get_result(request: Request):
        record = manager.get(request.params["id"])
        if record.status == "failed":
            raise HttpError(409, f"job {record.job_id} failed: "
                                 f"{record.error}")
        if record.status != "done" or record.result is None:
            raise HttpError(409, f"job {record.job_id} is "
                                 f"{record.status}; result not ready")
        return {
            "id": record.job_id,
            "kind": record.kind,
            "cached": record.cached,
            "fingerprint": record.fingerprint,
            "registry_key": record.registry_key,
            "manifest": record.manifest,
            "sim_ticks_executed": record.sim_ticks_executed,
            "result": record.result,
        }

    async def job_events(request: Request):
        record = manager.get(request.params["id"])  # 404s early
        return SseResponse(_event_stream(manager, record.job_id))

    async def registry_entries(request: Request):
        return {"registry_dir": manager.registry.directory,
                "entries": manager.registry.entries()}

    async def leaderboard(request: Request):
        payload = _leaderboard_request(request.query)
        cached = manager.leaderboard_lookup(payload)
        if cached is not None:
            return cached
        for record in manager.list():
            if (record.kind == "leaderboard"
                    and record.request == payload
                    and record.status in ("queued", "running")):
                return json_response(_job_payload(record), status=202)
        loop = asyncio.get_running_loop()
        record = await loop.run_in_executor(
            None, manager.submit, "leaderboard", payload)
        return json_response(_job_payload(record), status=202)

    router.add("GET", "/", index)
    router.add("GET", "/v1/healthz", healthz)
    router.add("GET", "/v1/meta", meta)
    router.add("POST", "/v1/runs", _submit("run"))
    router.add("POST", "/v1/sweeps", _submit("sweep"))
    router.add("POST", "/v1/suites", _submit("suite"))
    router.add("POST", "/v1/live", _submit("live"))
    router.add("GET", "/v1/jobs", list_jobs)
    router.add("GET", "/v1/runs/{id}", get_job)
    router.add("GET", "/v1/runs/{id}/result", get_result)
    router.add("GET", "/v1/runs/{id}/events", job_events)
    router.add("GET", "/v1/registry", registry_entries)
    router.add("GET", "/v1/leaderboard", leaderboard)
    return router


def _leaderboard_request(query: Dict[str, str]) -> Dict[str, Any]:
    """Translate ``/v1/leaderboard`` query params into a suite request."""
    payload: Dict[str, Any] = {}
    if "scenarios" in query:
        payload["scenarios"] = [s for s in query["scenarios"].split(",")
                                if s]
    if "policies" in query:
        payload["policies"] = [p for p in query["policies"].split(",")
                               if p]
    for key in ("num_servers", "seed"):
        if key in query:
            try:
                payload[key] = int(query[key])
            except ValueError:
                raise HttpError(400, f"{key} must be an integer, "
                                     f"got {query[key]!r}")
    if "duration_hours" in query:
        try:
            payload["duration_hours"] = float(query["duration_hours"])
        except ValueError:
            raise HttpError(400, f"duration_hours must be a number, "
                                 f"got {query['duration_hours']!r}")
    return validate_suite_request(payload)


async def _event_stream(manager: JobManager, job_id: str
                        ) -> AsyncIterator[Tuple[str, str]]:
    """status -> span frames (tailing the JSONL trace) -> done/failed.

    Registry hits never write their own trace file; their stream
    replays the *originating* run's persisted spans (located through
    the registry manifest's ``source``) behind a typed ``cached-replay``
    frame, so a subscriber still sees the span history -- labeled as
    provenance, never as fresh execution.
    """
    record = manager.get(job_id)
    yield "status", json.dumps(record.to_json(), sort_keys=True)
    trace_path = manager.trace_path(job_id)
    offset = 0
    while True:
        record = manager.get(job_id)
        settled = record.status in ("done", "failed")
        offset, lines = _drain_trace(trace_path, offset)
        for line in lines:
            yield "span", line
        if settled:
            if record.cached and offset == 0:
                async for frame in _cached_replay(manager, record):
                    yield frame
            yield record.status, json.dumps(record.to_json(),
                                            sort_keys=True)
            return
        await asyncio.sleep(SSE_POLL_S)


async def _cached_replay(manager: JobManager, record
                         ) -> AsyncIterator[Tuple[str, str]]:
    """Replay the originating run's spans for a registry-hit job."""
    source = _cached_source(record.manifest)
    replay_path = (manager.trace_path(source)
                   if source not in (None, "cli") else None)
    if replay_path is None or not os.path.exists(replay_path):
        yield "cached-replay", json.dumps(
            {"source": source, "spans": 0,
             "note": "no persisted trace for the originating run"},
            sort_keys=True)
        return
    _, lines = _drain_trace(replay_path, 0)
    yield "cached-replay", json.dumps(
        {"source": source, "spans": len(lines)}, sort_keys=True)
    for line in lines:
        yield "span", line


def _cached_source(manifest_path) -> Any:
    """The ``source`` provenance recorded in a registry manifest."""
    if not manifest_path or not os.path.exists(manifest_path):
        return None
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle).get("source")
    except (OSError, json.JSONDecodeError):
        return None


def _drain_trace(path: str, offset: int) -> Tuple[int, list]:
    """New complete JSONL lines past ``offset``; tolerates a live writer."""
    if not os.path.exists(path):
        return offset, []
    with open(path, "rb") as handle:
        handle.seek(offset)
        chunk = handle.read()
    # Only complete lines are emitted; a trailing fragment without its
    # newline waits for the next poll -- the writer may be mid-line.
    end = chunk.rfind(b"\n")
    if end < 0:
        return offset, []
    complete = chunk[:end + 1]
    lines = [raw.decode("utf-8", errors="replace")
             for raw in complete.split(b"\n") if raw.strip()]
    return offset + len(complete), lines

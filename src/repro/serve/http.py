"""A minimal asyncio HTTP/1.1 substrate -- no third-party dependencies.

The serving layer needs exactly four things from HTTP: parse a request,
route it by method + path template, emit a JSON response, and stream
Server-Sent Events.  The standard library's ``http.server`` is
thread-per-connection and cannot interleave an SSE stream with other
requests on one loop, so this module implements the 20% of HTTP/1.1
the job server uses directly on ``asyncio`` streams:

* :class:`Request` -- parsed request line, headers, query, JSON body;
* :class:`Response` / :func:`json_response` -- byte responses;
* :class:`SseResponse` -- an async-iterator-backed ``text/event-stream``;
* :class:`Router` -- ``/v1/runs/{id}``-style template matching;
* :func:`handle_connection` -- one connection, one request, close.

Connections are deliberately ``Connection: close``: the server's
clients are poll loops and SSE consumers, not byte-shaving browsers,
and single-shot connections keep the state machine trivially correct.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (Any, AsyncIterator, Awaitable, Callable, Dict, List,
                    Optional, Tuple)
from urllib.parse import parse_qsl, unquote, urlsplit

#: Largest request body accepted, bytes.  Run/sweep/suite submissions
#: are small JSON documents; anything bigger is a client bug.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Largest request line / header line accepted, bytes.
MAX_LINE_BYTES = 16 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 500: "Internal Server Error"}


class HttpError(Exception):
    """An error that maps directly to an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    #: Path-template parameters filled in by the router (``{id}`` etc.).
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Dict[str, Any]:
        """The body parsed as a JSON object; 400 on anything else."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


@dataclass
class Response:
    """One complete response, ready to serialize."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(payload: Any, status: int = 200) -> Response:
    """Serialize ``payload`` as a JSON response."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return Response(status=status, body=body)


@dataclass
class SseResponse:
    """A ``text/event-stream`` response backed by an async iterator.

    ``events`` yields ``(event, data)`` string pairs; each is written as
    one SSE frame and flushed immediately.  The iterator ending closes
    the stream (and, per :func:`handle_connection`, the connection).
    """

    events: AsyncIterator[Tuple[str, str]]
    status: int = 200


Handler = Callable[[Request], Awaitable[Any]]


class Router:
    """Method + path-template dispatch (``/v1/runs/{id}/events``)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``template``."""
        parts = tuple(p for p in template.split("/") if p != "")
        self._routes.append((method.upper(), parts, handler))

    def resolve(self, method: str, path: str
                ) -> Tuple[Handler, Dict[str, str]]:
        """The handler and path params for a request; raises 404/405."""
        parts = tuple(p for p in path.split("/") if p != "")
        saw_path = False
        for route_method, template, handler in self._routes:
            params = _match(template, parts)
            if params is None:
                continue
            saw_path = True
            if route_method == method.upper():
                return handler, params
        if saw_path:
            raise HttpError(405, f"method {method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {path}")


def _match(template: Tuple[str, ...], parts: Tuple[str, ...]
           ) -> Optional[Dict[str, str]]:
    if len(template) != len(parts):
        return None
    params: Dict[str, str] = {}
    for expected, got in zip(template, parts):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = unquote(got)
        elif expected != got:
            return None
    return params


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        line = exc.partial
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long")
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on an empty connection."""
    request_line = await _read_line(reader)
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, f"request body over {MAX_BODY_BYTES} bytes")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
    return Request(method=method.upper(), path=unquote(split.path),
                   query=query, headers=headers, body=body)


def _head(status: int, content_type: str,
          extra: Dict[str, str], *, length: Optional[int]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.extend(f"{name}: {value}" for name, value in extra.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    """Serialize one complete response to the socket."""
    writer.write(_head(response.status, response.content_type,
                       response.headers, length=len(response.body)))
    writer.write(response.body)
    await writer.drain()


def sse_frame(event: str, data: str) -> bytes:
    """One SSE frame: multi-line data is split per the spec."""
    lines = [f"event: {event}"]
    lines.extend(f"data: {chunk}" for chunk in data.split("\n"))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


async def write_sse(writer: asyncio.StreamWriter,
                    response: SseResponse) -> None:
    """Stream SSE frames until the event iterator is exhausted."""
    writer.write(_head(response.status, "text/event-stream",
                       {"Cache-Control": "no-store"}, length=None))
    await writer.drain()
    async for event, data in response.events:
        writer.write(sse_frame(event, data))
        await writer.drain()


async def handle_connection(router: Router,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one request on one connection, then close it.

    Handler exceptions become structured JSON errors: ``HttpError``
    keeps its status, anything else is a 500 with the exception text --
    a traceback never leaks to the wire.
    """
    try:
        try:
            request = await read_request(reader)
            if request is None:
                return
            handler, params = router.resolve(request.method, request.path)
            request.params = params
            result = await handler(request)
            if isinstance(result, SseResponse):
                await write_sse(writer, result)
            elif isinstance(result, Response):
                await write_response(writer, result)
            else:
                await write_response(writer, json_response(result))
        except HttpError as exc:
            await write_response(writer, json_response(
                {"error": exc.message, "status": exc.status}, exc.status))
        except Exception as exc:  # noqa: BLE001 -- boundary by design
            await write_response(writer, json_response(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500},
                500))
    except (ConnectionError, asyncio.CancelledError):
        pass  # client went away mid-write; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

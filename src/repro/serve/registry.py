"""The run registry: content-addressed simulation results on disk.

A simulation is a pure function of (configuration, demand trace, policy,
tick engine), and every one of those already has a canonical identity:
the config's SHA-256 (:func:`repro.obs.ledger.config_sha256`), the
trace's fingerprint (:meth:`TraceMatrix.fingerprint`), the policy key,
and the resolved backend name.  The registry hashes those four into one
**registry key** and stores each result exactly once under it:

    <dir>/reg-<key>.result.npz      the full result (repro.io format)
    <dir>/reg-<key>.manifest.json   the originating RunLedger manifest
    <dir>/reg-<key>.entry.json      key components + fingerprint index

A repeated query is then a registry *hit*: the stored result is loaded
back bit-identically (same ``fingerprint()``) at zero simulation cost.
Callers must always surface provenance -- a hit is labeled ``cached``
with the originating manifest path, never presented as a fresh run.

The fast backend is bit-identical to the reference engine, but the key
still separates them: equal fingerprints across backends is a property
we *verify*, not one the cache layer silently assumes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..cluster.metrics import SimulationResult
from ..config import SimulationConfig
from ..errors import ReproError
from ..io import load_result, save_result
from ..kernel import resolve_backend
from ..obs.ledger import RunLedger, config_sha256
from ..perf.cache import shared_trace

#: Schema tag for registry entry files.
ENTRY_SCHEMA = "repro.registry-entry/1"


@dataclass(frozen=True)
class RegistryKey:
    """The four components that address one simulation result."""

    config_sha256: str
    trace_sha256: str
    policy: str
    backend: str

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical key components (the address)."""
        blob = json.dumps(
            {"config_sha256": self.config_sha256,
             "trace_sha256": self.trace_sha256,
             "policy": self.policy,
             "backend": self.backend},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def run_id(self) -> str:
        """The registry's on-disk name for this key."""
        return f"reg-{self.digest[:24]}"


@dataclass(frozen=True)
class RegistryEntry:
    """One stored result: its key, fingerprint, and artifact paths."""

    key: RegistryKey
    fingerprint: str
    ticks: int
    result_path: str
    manifest_path: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": ENTRY_SCHEMA,
            "key": self.key.digest,
            "config_sha256": self.key.config_sha256,
            "trace_sha256": self.key.trace_sha256,
            "policy": self.key.policy,
            "backend": self.key.backend,
            "fingerprint": self.fingerprint,
            "ticks": self.ticks,
            "result_file": os.path.basename(self.result_path),
            "manifest_file": os.path.basename(self.manifest_path),
        }


def registry_key(config: SimulationConfig, policy: str,
                 backend: Optional[str] = None) -> RegistryKey:
    """Compute the content address of one (config, policy, backend) run.

    The trace fingerprint comes from the shared trace cache, so keying a
    config whose trace was already built (or is about to be run) costs
    no extra generation.
    """
    trace = shared_trace(config)
    return RegistryKey(config_sha256=config_sha256(config),
                       trace_sha256=trace.fingerprint(),
                       policy=policy,
                       backend=resolve_backend(backend))


class RunRegistry:
    """Stores and serves content-addressed results in one directory."""

    def __init__(self, directory) -> None:
        self._dir = str(directory)
        os.makedirs(self._dir, exist_ok=True)
        self._ledger = RunLedger(self._dir)

    @property
    def directory(self) -> str:
        """The registry directory."""
        return self._dir

    def _entry_path(self, key: RegistryKey) -> str:
        return os.path.join(self._dir, key.run_id + ".entry.json")

    def lookup(self, key: RegistryKey) -> Optional[RegistryEntry]:
        """The stored entry for ``key``, or ``None`` on a miss.

        A half-written or inconsistent entry (missing result file, key
        mismatch after a hash-scheme change) reads as a miss, never an
        error: the caller just re-runs and re-stores.
        """
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if (raw.get("schema") != ENTRY_SCHEMA
                or raw.get("key") != key.digest):
            return None
        result_path = os.path.join(self._dir, raw["result_file"])
        manifest_path = os.path.join(self._dir, raw["manifest_file"])
        if not os.path.exists(result_path) \
                or not os.path.exists(manifest_path):
            return None
        return RegistryEntry(key=key, fingerprint=raw["fingerprint"],
                             ticks=int(raw["ticks"]),
                             result_path=result_path,
                             manifest_path=manifest_path)

    def load(self, entry: RegistryEntry) -> SimulationResult:
        """Load a stored result; verifies the recorded fingerprint."""
        result = load_result(entry.result_path)
        rebuilt = result.fingerprint()
        if rebuilt != entry.fingerprint:
            raise ReproError(
                f"registry entry {entry.key.run_id} is corrupt: stored "
                f"fingerprint {entry.fingerprint}, result file hashes "
                f"to {rebuilt}")
        return result

    def store(self, key: RegistryKey, result: SimulationResult, *,
              wall_clock_s: float,
              source: Optional[str] = None) -> RegistryEntry:
        """Persist one result under its key; returns the new entry.

        Write order is result -> manifest -> entry, each atomic, so a
        crash mid-store leaves at worst orphaned artifacts that the
        next store overwrites -- never an entry pointing at nothing.
        Re-storing an existing key is idempotent by construction: the
        content address pins the bits.
        """
        result_path = os.path.join(self._dir, key.run_id + ".result.npz")
        save_result(result, result_path)
        extra: Dict[str, Any] = {"registry_key": key.digest,
                                 "backend": key.backend}
        if source is not None:
            extra["source"] = source
        self._ledger.record(
            run_id=key.run_id,
            scheduler=result.scheduler_name,
            policy=key.policy,
            config=result.config,
            trace_sha256=key.trace_sha256,
            result_fingerprint=result.fingerprint(),
            ticks=len(result.times_s),
            wall_clock_s=wall_clock_s,
            files={"result": os.path.basename(result_path)},
            extra=extra,
        )
        entry = RegistryEntry(
            key=key, fingerprint=result.fingerprint(),
            ticks=len(result.times_s), result_path=result_path,
            manifest_path=self._ledger.manifest_path(key.run_id))
        tmp = self._entry_path(key) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._entry_path(key))
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """Every readable entry's JSON form, sorted by key."""
        out = []
        for name in sorted(os.listdir(self._dir)):
            if not name.endswith(".entry.json"):
                continue
            try:
                with open(os.path.join(self._dir, name), "r",
                          encoding="utf-8") as handle:
                    raw = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if raw.get("schema") == ENTRY_SCHEMA:
                out.append(raw)
        return out

"""Async job execution behind the HTTP endpoints.

The server never simulates inside a request handler: every ``POST``
validates its payload, persists a :class:`JobRecord`, and enqueues the
work on a thread pool -- the response is an immediate ``202`` with the
job id.  Clients then poll ``GET /v1/runs/{id}`` or subscribe to the
SSE stream.

Three properties the manager guarantees:

* **Registry first.**  A run job computes its content address
  (:func:`repro.serve.registry.registry_key`) and asks the
  :class:`~repro.serve.registry.RunRegistry` before simulating.  A hit
  costs zero simulation ticks and is *labeled* as such: the record
  carries ``cached: true`` plus the originating ledger manifest path --
  cached results are never passed off as fresh.
* **Kill-survivable.**  Job records persist to ``<data>/jobs/<id>.json``
  on every state change; :meth:`JobManager.recover` re-enqueues any job
  that was queued or running when the process died.  A run job's
  :class:`~repro.perf.runner.RunSpec` label is its job id, so the
  re-run resumes from its latest compatible checkpoint (PR 5 machinery)
  instead of starting over.
* **No interleaving.**  Each job executes on one worker thread against
  its own config/spec; shared state (the record map, the registry
  entry files) is mutated only under the manager lock or via atomic
  renames.
* **Bounded.**  Every run job carries a wall-clock budget -- the
  request's ``timeout_s`` or the manager's ``default_timeout_s`` --
  enforced by the cooperative :class:`~repro.perf.runner.Deadline`
  checked at tick boundaries, which fires on worker threads (the old
  SIGALRM scheme never did).  A timed-out job fails with a
  ``RunTimeout`` error instead of occupying its worker forever.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import api
from ..config import TraceConfig, paper_cluster_config
from ..core.policies import SCHEDULER_NAMES
from ..errors import ConfigurationError, ReproError
from ..kernel import resolve_backend
from ..obs.telemetry import sanitize_run_id
from ..perf.runner import RunSpec, execute_spec
from ..scenarios import scenario_names
from .http import HttpError
from .registry import RunRegistry, registry_key

#: Job lifecycle states, in order.
JOB_STATUSES = ("queued", "running", "done", "failed")
#: Job kinds the server accepts.
JOB_KINDS = ("run", "sweep", "suite", "leaderboard", "live")

_CHECK_LEVELS = ("off", "cheap", "full")


def _bad(message: str) -> HttpError:
    return HttpError(400, message)


def _reject_unknown(payload: Dict[str, Any], allowed: Sequence[str],
                    kind: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise _bad(f"unknown {kind} request fields: {', '.join(unknown)} "
                   f"(allowed: {', '.join(sorted(allowed))})")


def _opt_number(payload: Dict[str, Any], key: str, *,
                default: Optional[float] = None,
                minimum: Optional[float] = None) -> Optional[float]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{key} must be a number, got {value!r}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise _bad(f"{key} must be >= {minimum:g}, got {value:g}")
    return value


def _opt_int(payload: Dict[str, Any], key: str, *,
             default: Optional[int] = None,
             minimum: int = 1) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{key} must be an integer, got {value!r}")
    if value < minimum:
        raise _bad(f"{key} must be >= {minimum}, got {value}")
    return value


def _opt_policy_list(payload: Dict[str, Any], key: str = "policies"
                     ) -> Optional[List[str]]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, list) or not value:
        raise _bad(f"{key} must be a non-empty list of policy names")
    for policy in value:
        _check_policy(policy)
    return list(value)


def _check_policy(policy: Any) -> str:
    if policy not in SCHEDULER_NAMES:
        raise _bad(f"unknown policy {policy!r}; choose from "
                   f"{', '.join(SCHEDULER_NAMES)}")
    return policy


def _check_backend(payload: Dict[str, Any]) -> Optional[str]:
    backend = payload.get("backend")
    if backend is None:
        return None
    try:
        return resolve_backend(backend)
    except (ConfigurationError, ReproError) as exc:
        raise _bad(str(exc))


def _check_checks(payload: Dict[str, Any]) -> Optional[str]:
    checks = payload.get("checks")
    if checks is None:
        return None
    if checks not in _CHECK_LEVELS:
        raise _bad(f"checks must be one of {', '.join(_CHECK_LEVELS)}, "
                   f"got {checks!r}")
    return checks


def validate_run_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a ``POST /v1/runs`` body; 400 on anything off-schema."""
    allowed = ("policy", "num_servers", "gv", "seed", "inlet_stdev_c",
               "wax_threshold", "duration_hours", "backend", "checks",
               "checkpoint_every", "timeout_s")
    _reject_unknown(payload, allowed, "run")
    if "policy" not in payload:
        raise _bad("run request requires a policy")
    return {
        "policy": _check_policy(payload["policy"]),
        "num_servers": _opt_int(payload, "num_servers", default=100),
        "gv": _opt_number(payload, "gv", default=22.0),
        "seed": _opt_int(payload, "seed", default=7, minimum=0),
        "inlet_stdev_c": _opt_number(payload, "inlet_stdev_c",
                                     default=0.0, minimum=0.0),
        "wax_threshold": _opt_number(payload, "wax_threshold",
                                     default=0.98, minimum=0.0),
        "duration_hours": _opt_number(payload, "duration_hours",
                                      minimum=1e-9),
        "backend": _check_backend(payload),
        "checks": _check_checks(payload),
        "checkpoint_every": _opt_int(payload, "checkpoint_every"),
        "timeout_s": _opt_number(payload, "timeout_s", minimum=1e-9),
    }


def validate_sweep_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a ``POST /v1/sweeps`` body."""
    allowed = ("grouping_values", "policies", "num_servers", "seed",
               "inlet_stdev_c", "wax_threshold", "backend", "checks")
    _reject_unknown(payload, allowed, "sweep")
    values = payload.get("grouping_values")
    if not isinstance(values, list) or not values:
        raise _bad("sweep request requires grouping_values: "
                   "a non-empty list of numbers")
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _bad(f"grouping_values entries must be numbers, "
                       f"got {value!r}")
    policies = _opt_policy_list(payload)
    return {
        "grouping_values": [float(v) for v in values],
        "policies": policies if policies is not None
        else ["vmt-ta", "vmt-wa"],
        "num_servers": _opt_int(payload, "num_servers", default=100),
        "seed": _opt_int(payload, "seed", default=7, minimum=0),
        "inlet_stdev_c": _opt_number(payload, "inlet_stdev_c",
                                     default=0.0, minimum=0.0),
        "wax_threshold": _opt_number(payload, "wax_threshold",
                                     default=0.98, minimum=0.0),
        "backend": _check_backend(payload),
        "checks": _check_checks(payload),
    }


def _check_scenarios(payload: Dict[str, Any]) -> Optional[List[str]]:
    scenarios = payload.get("scenarios")
    if scenarios is None:
        return None
    if not isinstance(scenarios, list) or not scenarios:
        raise _bad("scenarios must be a non-empty list of scenario names")
    known = scenario_names()
    for name in scenarios:
        if name not in known:
            raise _bad(f"unknown scenario {name!r}; choose from "
                       f"{', '.join(known)}")
    return list(scenarios)


def validate_suite_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a ``POST /v1/suites`` (or leaderboard) body."""
    allowed = ("scenarios", "policies", "num_servers", "duration_hours",
               "seed", "checks")
    _reject_unknown(payload, allowed, "suite")
    return {
        "scenarios": _check_scenarios(payload),
        "policies": _opt_policy_list(payload),
        "num_servers": _opt_int(payload, "num_servers"),
        "duration_hours": _opt_number(payload, "duration_hours",
                                      minimum=1e-9),
        "seed": _opt_int(payload, "seed", minimum=0),
        "checks": _check_checks(payload),
    }


def validate_live_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a ``POST /v1/live`` body."""
    from ..live import FEED_KINDS
    from ..live.forecast import FORECASTER_NAMES
    allowed = ("policy", "num_servers", "gv", "seed", "inlet_stdev_c",
               "wax_threshold", "duration_hours", "feed", "feed_seed",
               "forecaster", "decision_every", "mpc",
               "mpc_horizon_steps", "checks", "timeout_s")
    _reject_unknown(payload, allowed, "live")
    if "policy" not in payload:
        raise _bad("live request requires a policy")
    feed = payload.get("feed", "replay")
    if feed not in FEED_KINDS:
        raise _bad(f"feed must be one of {', '.join(FEED_KINDS)}, "
                   f"got {feed!r}")
    forecaster = payload.get("forecaster", "oracle")
    if forecaster not in FORECASTER_NAMES:
        raise _bad(f"forecaster must be one of "
                   f"{', '.join(FORECASTER_NAMES)}, got {forecaster!r}")
    mpc = payload.get("mpc", False)
    if not isinstance(mpc, bool):
        raise _bad(f"mpc must be a boolean, got {mpc!r}")
    return {
        "policy": _check_policy(payload["policy"]),
        "num_servers": _opt_int(payload, "num_servers", default=100),
        "gv": _opt_number(payload, "gv", default=22.0),
        "seed": _opt_int(payload, "seed", default=7, minimum=0),
        "inlet_stdev_c": _opt_number(payload, "inlet_stdev_c",
                                     default=0.0, minimum=0.0),
        "wax_threshold": _opt_number(payload, "wax_threshold",
                                     default=0.98, minimum=0.0),
        "duration_hours": _opt_number(payload, "duration_hours",
                                      minimum=1e-9),
        "feed": feed,
        "feed_seed": _opt_int(payload, "feed_seed", minimum=0),
        "forecaster": forecaster,
        "decision_every": _opt_int(payload, "decision_every",
                                   default=60),
        "mpc": mpc,
        "mpc_horizon_steps": _opt_int(payload, "mpc_horizon_steps",
                                      default=60),
        "checks": _check_checks(payload),
        "timeout_s": _opt_number(payload, "timeout_s", minimum=1e-9),
    }


@dataclass
class JobRecord:
    """One submitted job: request, lifecycle, provenance, result."""

    job_id: str
    kind: str
    request: Dict[str, Any]
    status: str = "queued"
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Registry provenance -- ``True`` means the result came from the
    #: run registry at zero simulation cost; ``manifest`` then points at
    #: the originating ledger manifest.  ``None`` until the job settles
    #: (and for kinds without per-run registry backing).
    cached: Optional[bool] = None
    sim_ticks_executed: Optional[int] = None
    fingerprint: Optional[str] = None
    registry_key: Optional[str] = None
    manifest: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def to_json(self, *, include_result: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": "repro.job/1",
            "id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "request": self.request,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "cached": self.cached,
            "sim_ticks_executed": self.sim_ticks_executed,
            "fingerprint": self.fingerprint,
            "registry_key": self.registry_key,
            "manifest": self.manifest,
            "error": self.error,
            "has_result": self.result is not None,
        }
        if include_result:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "JobRecord":
        return cls(job_id=payload["id"], kind=payload["kind"],
                   request=payload["request"], status=payload["status"],
                   created_s=payload["created_s"],
                   started_s=payload.get("started_s"),
                   finished_s=payload.get("finished_s"),
                   cached=payload.get("cached"),
                   sim_ticks_executed=payload.get("sim_ticks_executed"),
                   fingerprint=payload.get("fingerprint"),
                   registry_key=payload.get("registry_key"),
                   manifest=payload.get("manifest"),
                   error=payload.get("error"),
                   result=payload.get("result"))


_VALIDATORS = {
    "run": validate_run_request,
    "sweep": validate_sweep_request,
    "suite": validate_suite_request,
    "leaderboard": validate_suite_request,
    "live": validate_live_request,
}


class JobManager:
    """Validates, persists, executes, and recovers server jobs."""

    #: Default per-job wall-clock budget (seconds).  Generous enough for
    #: paper-scale runs on the reference backend, but finite: a wedged
    #: job must release its worker thread eventually.
    DEFAULT_TIMEOUT_S = 3600.0

    def __init__(self, data_dir, *, max_workers: int = 2,
                 default_timeout_s: Optional[float] = DEFAULT_TIMEOUT_S
                 ) -> None:
        self._data_dir = str(data_dir)
        self._default_timeout_s = (
            None if default_timeout_s is None or default_timeout_s <= 0
            else float(default_timeout_s))
        self._jobs_dir = os.path.join(self._data_dir, "jobs")
        self._checkpoint_dir = os.path.join(self._data_dir, "checkpoints")
        self._leaderboard_dir = os.path.join(self._data_dir, "leaderboard")
        for directory in (self._jobs_dir, self._checkpoint_dir,
                          self._leaderboard_dir):
            os.makedirs(directory, exist_ok=True)
        self._registry = RunRegistry(os.path.join(self._data_dir,
                                                  "registry"))
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-job")

    # -- plumbing ----------------------------------------------------------

    @property
    def data_dir(self) -> str:
        """The server's state root."""
        return self._data_dir

    @property
    def registry(self) -> RunRegistry:
        """The content-addressed run registry."""
        return self._registry

    def _job_dir(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, job_id)

    def _record_path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, job_id + ".json")

    def _persist(self, record: JobRecord) -> None:
        path = self._record_path(record.job_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record.to_json(include_result=True), handle,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def trace_path(self, job_id: str) -> str:
        """Where a fresh run job's JSONL span trace lands (SSE source)."""
        return os.path.join(self._job_dir(job_id),
                            sanitize_run_id(job_id) + ".trace.jsonl")

    # -- submission and lookup ---------------------------------------------

    def submit(self, kind: str, payload: Dict[str, Any]) -> JobRecord:
        """Validate one request and enqueue it; returns the new record.

        Validation failures raise :class:`~repro.serve.http.HttpError`
        (400) *before* anything is persisted -- a malformed request
        leaves no trace on disk.
        """
        if kind not in JOB_KINDS:
            raise _bad(f"unknown job kind {kind!r}")
        request = _VALIDATORS[kind](payload)
        record = JobRecord(job_id=f"job-{uuid.uuid4().hex[:12]}",
                           kind=kind, request=request)
        with self._lock:
            self._records[record.job_id] = record
            self._persist(record)
        self._executor.submit(self._execute, record.job_id)
        return record

    def get(self, job_id: str) -> JobRecord:
        """The record for ``job_id``; 404 when unknown."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise HttpError(404, f"no such job: {job_id}")
        return record

    def list(self) -> List[JobRecord]:
        """Every known record, oldest first."""
        with self._lock:
            records = list(self._records.values())
        return sorted(records, key=lambda r: (r.created_s, r.job_id))

    def recover(self) -> List[str]:
        """Reload persisted jobs; re-enqueue any that never settled.

        A job found ``queued`` or ``running`` was in flight when the
        previous process died.  Re-running it is safe: run jobs hit the
        registry if their result was already stored, and otherwise
        resume from their latest compatible checkpoint because the spec
        label (the job id) is stable across restarts.
        """
        requeued: List[str] = []
        for name in sorted(os.listdir(self._jobs_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._jobs_dir, name), "r",
                          encoding="utf-8") as handle:
                    record = JobRecord.from_json(json.load(handle))
            except (OSError, KeyError, json.JSONDecodeError):
                continue
            with self._lock:
                if record.job_id in self._records:
                    continue
                if record.status in ("queued", "running"):
                    record.status = "queued"
                    record.started_s = None
                    requeued.append(record.job_id)
                self._records[record.job_id] = record
                self._persist(record)
        for job_id in requeued:
            self._executor.submit(self._execute, job_id)
        return requeued

    def close(self) -> None:
        """Drop queued jobs and wait for running ones to settle.

        Waiting matters for in-process restarts (tests, embedding): a
        worker thread left running past ``close()`` would race a revived
        manager re-executing the same job against the same telemetry and
        registry paths.  Python cannot kill a thread anyway -- the
        interpreter would join it at exit regardless.
        """
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- execution ---------------------------------------------------------

    def _transition(self, record: JobRecord, status: str,
                    **updates: Any) -> None:
        with self._lock:
            record.status = status
            for key, value in updates.items():
                setattr(record, key, value)
            self._persist(record)

    def _execute(self, job_id: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.status != "queued":
                return
        self._transition(record, "running", started_s=time.time())
        try:
            handler = getattr(self, f"_execute_{record.kind}")
            handler(record)
            self._transition(record, "done", finished_s=time.time())
        except Exception as exc:  # noqa: BLE001 -- job boundary
            self._transition(record, "failed", finished_s=time.time(),
                             error=f"{type(exc).__name__}: {exc}")

    def _run_config(self, request: Dict[str, Any]):
        config = paper_cluster_config(
            num_servers=request["num_servers"],
            grouping_value=request["gv"],
            seed=request["seed"],
            inlet_stdev_c=request["inlet_stdev_c"],
            wax_threshold=request["wax_threshold"])
        if request.get("duration_hours") is not None:
            config = config.replace(
                trace=TraceConfig(duration_hours=request["duration_hours"]))
        return config

    def _execute_run(self, record: JobRecord) -> None:
        request = record.request
        config = self._run_config(request)
        key = registry_key(config, request["policy"], request["backend"])
        with self._lock:
            record.registry_key = key.digest
            self._persist(record)

        entry = self._registry.lookup(key)
        if entry is not None:
            result = self._registry.load(entry)
            with self._lock:
                record.cached = True
                record.sim_ticks_executed = 0
                record.fingerprint = entry.fingerprint
                record.manifest = entry.manifest_path
                record.result = result.to_json()
                self._persist(record)
            return

        job_dir = self._job_dir(record.job_id)
        os.makedirs(job_dir, exist_ok=True)
        checkpoint_every = request.get("checkpoint_every")
        # record_heatmaps matches the api.run default: the heatmap
        # series participate in the fingerprint, and the acceptance
        # contract is bit-identity with a direct api.run call.
        timeout_s = request.get("timeout_s")
        if timeout_s is None:
            timeout_s = self._default_timeout_s
        spec = RunSpec(
            config, request["policy"], label=record.job_id,
            record_heatmaps=True, telemetry_dir=job_dir,
            checks=request.get("checks"), backend=request.get("backend"),
            checkpoint_every=checkpoint_every,
            checkpoint_dir=self._checkpoint_dir
            if checkpoint_every is not None else None,
            timeout_s=timeout_s)
        start = time.perf_counter()
        result = execute_spec(spec)
        wall_clock_s = time.perf_counter() - start
        stored = self._registry.store(key, result,
                                      wall_clock_s=wall_clock_s,
                                      source=record.job_id)
        with self._lock:
            record.cached = False
            record.sim_ticks_executed = len(result.times_s)
            record.fingerprint = stored.fingerprint
            record.manifest = os.path.join(
                job_dir, sanitize_run_id(record.job_id) + ".manifest.json")
            record.result = result.to_json()
            self._persist(record)

    def _execute_live(self, record: JobRecord) -> None:
        """Stream a live run; SSE tails its telemetry trace as it goes.

        Live results are not registry-backed: they depend on the feed
        and forecaster, not just (config, policy, backend), so caching
        under the batch registry key would conflate the two.
        """
        from ..obs.telemetry import Telemetry
        request = record.request
        config = self._run_config(request)
        job_dir = self._job_dir(record.job_id)
        os.makedirs(job_dir, exist_ok=True)
        telemetry = Telemetry(job_dir, run_id=record.job_id)
        timeout_s = request.get("timeout_s")
        if timeout_s is None:
            timeout_s = self._default_timeout_s
        report = api.live_run(
            policy=request["policy"], config=config,
            feed=request["feed"], feed_seed=request.get("feed_seed"),
            forecaster=request["forecaster"],
            decision_every=request["decision_every"],
            mpc=request["mpc"],
            mpc_horizon_steps=request["mpc_horizon_steps"],
            telemetry=telemetry, checks=request.get("checks"),
            timeout_s=timeout_s)
        with self._lock:
            record.cached = False
            record.sim_ticks_executed = report.steps_ingested
            record.fingerprint = report.result.fingerprint()
            record.manifest = telemetry.manifest_path
            record.result = report.to_json()
            self._persist(record)

    def _execute_sweep(self, record: JobRecord) -> None:
        request = record.request
        sweep = api.sweep(
            grouping_values=request["grouping_values"],
            policies=tuple(request["policies"]),
            num_servers=request["num_servers"], seed=request["seed"],
            inlet_stdev_c=request["inlet_stdev_c"],
            wax_threshold=request["wax_threshold"], max_workers=1,
            checks=request.get("checks"), backend=request.get("backend"))
        with self._lock:
            record.cached = False
            record.result = sweep.to_json()
            self._persist(record)

    def _suite_report(self, request: Dict[str, Any]):
        scenarios = request.get("scenarios")
        policies = request.get("policies")
        return api.stress(
            scenarios=tuple(scenarios) if scenarios else None,
            policies=tuple(policies) if policies else None,
            num_servers=request.get("num_servers"),
            duration_hours=request.get("duration_hours"),
            seed=request.get("seed"), max_workers=1,
            checks=request.get("checks"))

    def _execute_suite(self, record: JobRecord) -> None:
        report = self._suite_report(record.request)
        with self._lock:
            record.cached = False
            record.result = report.to_json()
            self._persist(record)

    # -- leaderboard -------------------------------------------------------

    def leaderboard_cache_path(self, request: Dict[str, Any]) -> str:
        """The cache file for one validated leaderboard request."""
        import hashlib
        blob = json.dumps(request, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()[:24]
        return os.path.join(self._leaderboard_dir, digest + ".json")

    def leaderboard_lookup(self, request: Dict[str, Any]
                           ) -> Optional[Dict[str, Any]]:
        """A cached leaderboard for this request, or ``None``."""
        path = self.leaderboard_cache_path(request)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if payload.get("schema") != "repro.leaderboard/1":
            return None
        payload["cached"] = True
        payload["cache_path"] = path
        return payload

    def _execute_leaderboard(self, record: JobRecord) -> None:
        import dataclasses
        report = self._suite_report(record.request)
        board = report.leaderboard()
        payload: Dict[str, Any] = {
            "schema": "repro.leaderboard/1",
            "request": record.request,
            "generated_by": record.job_id,
            "policies_ranked": [entry.policy for entry in board],
            "leaderboard": [entry.to_json() for entry in board],
            "rankings": [dataclasses.asdict(r)
                         for r in report.rankings],
        }
        path = self.leaderboard_cache_path(record.request)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        with self._lock:
            record.cached = False
            record.result = dict(payload, cached=False, cache_path=path)
            self._persist(record)

"""repro.serve: simulation-as-a-service over the frozen v1 API.

The package turns the :mod:`repro.api` facade into a long-lived HTTP
service with four moving parts:

* :mod:`~repro.serve.http` -- a dependency-free asyncio HTTP/1.1 + SSE
  substrate;
* :mod:`~repro.serve.registry` -- the content-addressed run registry
  (config x trace x policy x backend -> result, deduplicated, with a
  run-ledger manifest per entry);
* :mod:`~repro.serve.jobs` -- request validation, the persistent job
  store, thread-pool execution, crash recovery;
* :mod:`~repro.serve.app` -- the ``/v1`` routes and SSE event stream.

:class:`Server` ties them together::

    from repro.serve import Server

    server = Server("state/", host="127.0.0.1", port=8765)
    server.start()          # background thread; returns once listening
    ...                     # POST /v1/runs, GET /v1/leaderboard, ...
    server.stop()

or, blocking, ``python -m repro.serve --data-dir state/`` (the
``repro-sim serve`` CLI wraps the same entry point).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..errors import ReproError
from .app import build_router
from .http import (HttpError, Request, Response, Router, SseResponse,
                   handle_connection, json_response)
from .jobs import JobManager, JobRecord
from .registry import RegistryEntry, RegistryKey, RunRegistry, registry_key

__all__ = [
    "HttpError", "JobManager", "JobRecord", "RegistryEntry",
    "RegistryKey", "Request", "Response", "Router", "RunRegistry",
    "Server", "SseResponse", "build_router", "handle_connection",
    "json_response", "registry_key",
]


class Server:
    """The repro-sim job server: asyncio front end, threaded back end.

    ``start()`` spins the event loop on a daemon thread and blocks only
    until the listening socket is bound (so tests and the CLI know the
    port is live); ``serve_forever()`` runs the loop on the calling
    thread instead.  On startup the job manager recovers any jobs the
    previous process left queued or running -- in-flight checkpointed
    runs resume rather than restart.
    """

    def __init__(self, data_dir, *, host: str = "127.0.0.1",
                 port: int = 8765, max_workers: int = 2,
                 default_timeout_s: Optional[float] =
                 JobManager.DEFAULT_TIMEOUT_S) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(data_dir, max_workers=max_workers,
                                  default_timeout_s=default_timeout_s)
        self._router = build_router(self.manager)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop_requested = threading.Event()
        self._startup_error: Optional[BaseException] = None

    async def _serve(self) -> None:
        recovered = self.manager.recover()
        if recovered:
            # Visible in server logs/stdout: these jobs survived a kill.
            print(f"repro-serve: re-enqueued {len(recovered)} "
                  f"interrupted job(s): {', '.join(recovered)}")
        server = await asyncio.start_server(
            lambda reader, writer: handle_connection(
                self._router, reader, writer),
            host=self.host, port=self.port)
        if self.port == 0:
            self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await server.serve_forever()

    def serve_forever(self) -> None:
        """Run the server on the calling thread until interrupted."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass
        finally:
            self.manager.close()

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # noqa: BLE001 -- surfaced in start()
            self._startup_error = exc
            self._started.set()
        finally:
            loop.close()

    def start(self, timeout_s: float = 10.0) -> "Server":
        """Start on a background thread; returns once the port is bound."""
        if self._thread is not None:
            raise ReproError("server was already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise ReproError(
                f"server did not start within {timeout_s:g}s")
        if self._startup_error is not None:
            raise ReproError(
                f"server failed to start: {self._startup_error}")
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the background server and its job executor."""
        loop = self._loop
        if loop is not None and loop.is_running():
            # Cancel every task (serve_forever included); the loop then
            # falls out of run_until_complete and closes.
            def _cancel_all() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()
            loop.call_soon_threadsafe(_cancel_all)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self.manager.close()

    @property
    def base_url(self) -> str:
        """The server's root URL (valid once started)."""
        return f"http://{self.host}:{self.port}"


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.serve``: run a blocking server."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the repro v1 simulation API over HTTP.")
    parser.add_argument("--data-dir", default="repro-serve-data",
                        help="state root: jobs, registry, checkpoints "
                             "(default: %(default)s)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--max-workers", type=int, default=2,
                        help="concurrent job executor threads "
                             "(default: %(default)s)")
    parser.add_argument("--job-timeout", type=float,
                        default=JobManager.DEFAULT_TIMEOUT_S,
                        metavar="SECONDS",
                        help="default wall-clock budget per job; 0 "
                             "disables (default: %(default)s)")
    args = parser.parse_args(argv)
    server = Server(args.data_dir, host=args.host, port=args.port,
                    max_workers=args.max_workers,
                    default_timeout_s=args.job_timeout)
    print(f"repro-serve: listening on http://{args.host}:{args.port} "
          f"(data: {args.data_dir})")
    server.serve_forever()
    return 0

"""Periodic processes on top of the event engine."""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from .engine import Engine
from .events import Event

TickCallback = Callable[[float], None]


class PeriodicProcess:
    """A fixed-rate process, e.g. the paper's once-per-minute wax update.

    The callback receives the current simulation time.  Returning normally
    reschedules the next tick; calling :meth:`stop` (from inside the
    callback or outside) halts the process.
    """

    def __init__(self, engine: Engine, period_s: float,
                 callback: TickCallback, *, start_at: Optional[float] = None,
                 priority: int = 0, name: str = "periodic") -> None:
        if period_s <= 0:
            raise SimulationError("period must be positive")
        self._engine = engine
        self._period = period_s
        self._callback = callback
        self._priority = priority
        self._name = name
        self._stopped = False
        self._ticks = 0
        first = engine.now if start_at is None else start_at
        self._pending: Optional[Event] = engine.schedule_at(
            first, self._fire, priority=priority, name=name)

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def period_s(self) -> float:
        """Tick period in seconds."""
        return self._period

    def _fire(self, event: Event) -> None:
        if self._stopped:
            return
        self._callback(self._engine.now)
        self._ticks += 1
        if not self._stopped:
            self._pending = self._engine.schedule_after(
                self._period, self._fire, priority=self._priority,
                name=self._name)

    def stop(self) -> None:
        """Halt the process; any queued tick is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

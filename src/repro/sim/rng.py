"""Named, independently seeded random streams.

Simulations that draw all their randomness from a single generator couple
unrelated subsystems: adding one extra draw to the trace generator would
silently change every inlet temperature.  ``RngStreams`` derives one
``numpy.random.Generator`` per (seed, name) pair via ``SeedSequence`` so
each subsystem owns an independent, reproducible stream.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A factory of named random streams rooted at a single seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence, and
        distinct names yield statistically independent sequences.
        """
        if name not in self._streams:
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed,
                                         spawn_key=(tag,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; next access re-creates them from scratch."""
        self._streams.clear()

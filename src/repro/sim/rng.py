"""Named, independently seeded random streams.

Simulations that draw all their randomness from a single generator couple
unrelated subsystems: adding one extra draw to the trace generator would
silently change every inlet temperature.  ``RngStreams`` derives one
``numpy.random.Generator`` per (seed, name) pair via ``SeedSequence`` so
each subsystem owns an independent, reproducible stream.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..errors import SimulationError


def _spawn_key(name: str) -> tuple:
    """Derive an injective ``SeedSequence`` spawn key from a stream name.

    The key is the UTF-8 byte length followed by the bytes packed into
    little-endian 32-bit words (``SeedSequence`` spawn-key entries must
    fit in a uint32).  Distinct names always produce distinct keys --
    unlike a 32-bit hash such as ``zlib.crc32``, which silently aliases
    colliding names (e.g. ``"plumless"``/``"buckeroo"``) onto the same
    stream.
    """
    data = name.encode("utf-8")
    words = tuple(int.from_bytes(data[i:i + 4], "little")
                  for i in range(0, len(data), 4))
    return (len(data),) + words


class RngStreams:
    """A factory of named random streams rooted at a single seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same sequence, and
        distinct names yield independent sequences.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence(entropy=self._seed,
                                         spawn_key=_spawn_key(name))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; next access re-creates them from scratch."""
        self._streams.clear()

    # -- snapshot protocol -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Bit generator state for every stream created so far.

        The mapping is ``{name: bit_generator.state}``; numpy's state
        dicts are plain JSON-able trees (strings and ints), so snapshots
        can persist them without pickling.
        """
        return {name: gen.bit_generator.state
                for name, gen in self._streams.items()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore stream states captured by :meth:`state_dict`.

        Streams are re-derived from (seed, name) and then fast-forwarded
        by overwriting their bit-generator state, so a restored
        ``RngStreams`` continues the exact sequences of the snapshotted
        one.
        """
        for name, gen_state in state.items():
            gen = self.stream(name)
            if gen.bit_generator.state["bit_generator"] != \
                    gen_state.get("bit_generator"):
                raise SimulationError(
                    f"rng stream {name!r}: snapshot uses bit generator "
                    f"{gen_state.get('bit_generator')!r}, this build uses "
                    f"{gen.bit_generator.state['bit_generator']!r}")
            gen.bit_generator.state = gen_state

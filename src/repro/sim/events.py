"""Timestamped events and the simulation event queue."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

EventCallback = Callable[["Event"], None]


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, sequence)``; the sequence number
    is assigned by the queue so events scheduled at the same time and
    priority fire in insertion order (a stable queue keeps the simulation
    deterministic).
    """

    time: float
    callback: EventCallback
    priority: int = 0
    name: str = ""
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (no-op when cancelled)."""
        if not self.cancelled:
            self.callback(self)


class EventQueue:
    """A stable min-heap of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> Event:
        """Insert an event and return it (for later cancellation)."""
        if event.time < 0:
            raise SimulationError("cannot schedule an event before time 0")
        heapq.heappush(
            self._heap, (event.time, event.priority, next(self._counter), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`SimulationError` when the queue is empty.
        """
        while self._heap:
            __, __, __, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("event queue is empty")

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    @property
    def live_count(self) -> int:
        """Number of non-cancelled events still queued.

        ``len(queue)`` counts tombstones left behind by :meth:`Event.cancel`;
        this walks the heap and counts only events that will actually fire.
        Queues here are small (a tick process plus fault events), so the
        linear scan is fine.
        """
        return sum(1 for *_, event in self._heap if not event.cancelled)

    def live_events(self) -> List[Event]:
        """The non-cancelled events in dispatch order (for snapshots)."""
        return [entry[3] for entry in sorted(self._heap)
                if not entry[3].cancelled]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

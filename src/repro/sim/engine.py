"""The discrete-event engine: clock, scheduling, and run loop."""

from __future__ import annotations

from typing import Any

from ..errors import SimulationError
from .events import Event, EventCallback, EventQueue


class Engine:
    """A deterministic discrete-event simulation engine.

    Time is in seconds.  Events are dispatched strictly in non-decreasing
    time order; ties break by event priority, then by scheduling order.

    Example::

        engine = Engine()
        engine.schedule_at(60.0, lambda ev: print("one minute in"))
        engine.run_until(3600.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total events fired since construction (for diagnostics)."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._queue.live_count

    def schedule_at(self, time: float, callback: EventCallback, *,
                    priority: int = 0, name: str = "",
                    payload: Any = None) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}")
        return self._queue.push(
            Event(time=time, callback=callback, priority=priority,
                  name=name, payload=payload))

    def schedule_after(self, delay: float, callback: EventCallback, *,
                       priority: int = 0, name: str = "",
                       payload: Any = None) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback,
                                priority=priority, name=name, payload=payload)

    def run_until(self, end_time: float) -> None:
        """Dispatch all events with ``time <= end_time`` in order.

        The clock is left at ``end_time`` when the queue drains (or only
        later events remain), matching the usual discrete-event
        convention.  When :meth:`stop` halts the loop early, undispatched
        events may remain before ``end_time``, so the clock stays at the
        last dispatched event's time instead of jumping ahead of them.
        """
        if end_time < self._now:
            raise SimulationError("end_time is in the past")
        if self._running:
            raise SimulationError(
                "run_until called re-entrantly from inside an event")
        self._running = True
        stopped_early = False
        try:
            while True:
                if not self._running:
                    stopped_early = True
                    break
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self._queue.pop()
                self._now = event.time
                event.fire()
                self._dispatched += 1
        finally:
            self._running = False
        if not stopped_early:
            self._now = max(self._now, end_time)

    def advance_to(self, end_time: float) -> None:
        """Incrementally advance the clock to ``end_time``.

        The re-entrant spelling of :meth:`run_until` for live/streaming
        drivers that feed the engine one slice of time per arrival.  Each
        call dispatches exactly the events one big ``run_until`` over the
        same span would have, and the stop()/clock-jump contract holds
        *per call*: a :meth:`stop` inside a callback leaves the clock at
        the last dispatched event (undispatched events before
        ``end_time`` stay queued), and the next ``advance_to`` resumes
        from there -- including re-advancing to the same ``end_time`` to
        drain what the stop left behind.  ``end_time == now`` is legal
        and dispatches any events scheduled exactly at ``now``.
        """
        self.run_until(end_time)

    def run(self) -> None:
        """Dispatch every queued event (the queue must be finite)."""
        self._running = True
        try:
            while self._running and self._queue.peek_time() is not None:
                event = self._queue.pop()
                self._now = event.time
                event.fire()
                self._dispatched += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._running = False

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._dispatched = 0

    # -- snapshot protocol -------------------------------------------------

    def state_dict(self) -> dict:
        """Clock and dispatch counter (events are not serializable).

        The event queue holds live callbacks, so it is deliberately not
        part of this state: snapshots are only taken at quiescent tick
        boundaries where every pending event is reconstructable from
        configuration (the tick process, scripted fault events, pending
        auto-repairs -- each owner re-schedules its own on restore).
        """
        return {"now_s": self._now, "dispatched": self._dispatched}

    def load_state_dict(self, state: dict) -> None:
        """Restore the clock; the queue must be empty (fresh engine)."""
        if len(self._queue) != 0:
            raise SimulationError(
                "cannot restore engine state over a non-empty event queue")
        self._now = float(state["now_s"])
        self._dispatched = int(state["dispatched"])

    def register_metrics(self, registry) -> None:
        """Publish engine gauges on a :class:`~repro.obs.registry.MetricRegistry`."""
        registry.gauge("engine.events_dispatched",
                       lambda: float(self._dispatched))
        registry.gauge("engine.pending_events",
                       lambda: float(self._queue.live_count))

"""Event-driven simulation kernel.

This subpackage is the reproduction's stand-in for DCsim, the event-driven
datacenter simulator the paper uses for its scale-out study.  It provides a
minimal but complete discrete-event engine:

* :class:`~repro.sim.events.Event` and
  :class:`~repro.sim.events.EventQueue` -- a stable priority queue of
  timestamped callbacks;
* :class:`~repro.sim.engine.Engine` -- the clock and run loop;
* :class:`~repro.sim.process.PeriodicProcess` -- fixed-rate processes such
  as the 1-minute wax model update;
* :class:`~repro.sim.rng.RngStreams` -- named, independently seeded random
  streams so that adding randomness to one subsystem never perturbs
  another.
"""

from .engine import Engine
from .events import Event, EventQueue
from .process import PeriodicProcess
from .rng import RngStreams

__all__ = ["Engine", "Event", "EventQueue", "PeriodicProcess", "RngStreams"]

"""Versioned simulation snapshots and checkpoint/resume plumbing.

The state vector of a run -- engine clock, cluster physics arrays,
scheduler internals, RNG stream positions, fault bookkeeping, and the
metrics rows recorded so far -- is captured as a
:class:`~repro.state.snapshot.SimulationSnapshot`, serialized to a
single ``.npz`` plus a JSON manifest, and restored bit-identically in a
fresh process.  The acceptance oracle is differential: a
checkpoint-resume run must reproduce the straight-through run's
``SimulationResult.fingerprint()`` exactly, for every policy, with
faults on or off.
"""

from .checkpoint import (checkpoint_path, latest_checkpoint,
                         list_checkpoints, restore_simulation,
                         resume_run, verify_roundtrip)
from .snapshot import (SNAPSHOT_SCHEMA_VERSION, SimulationSnapshot,
                       load_snapshot, save_snapshot, snapshot_manifest_path)

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "SimulationSnapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_manifest_path",
    "checkpoint_path",
    "list_checkpoints",
    "latest_checkpoint",
    "restore_simulation",
    "resume_run",
    "verify_roundtrip",
]

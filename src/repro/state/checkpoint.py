"""Checkpoint directories, resume, and the round-trip oracle.

Checkpoints written during a run are named ``checkpoint-NNNNNN.npz``
(tick-keyed, so the latest is the lexicographic maximum) with their
sidecar manifests alongside.  :func:`restore_simulation` rebuilds a
ready-to-run :class:`~repro.cluster.simulation.ClusterSimulation` from a
snapshot in a fresh process; :func:`verify_roundtrip` is the acceptance
oracle, reporting any divergence via the golden harness's
first-divergence formatter.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import CheckpointError
from .snapshot import SimulationSnapshot, load_snapshot

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d+)\.npz$")


def checkpoint_path(directory: str, tick: int) -> str:
    """The canonical checkpoint filename for ``tick`` in ``directory``."""
    return os.path.join(os.fspath(directory), f"checkpoint-{tick:06d}.npz")


def list_checkpoints(directory: str) -> List[Tuple[int, str]]:
    """All ``(tick, path)`` checkpoints in ``directory``, tick-ascending."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    return sorted(found)


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the highest-tick checkpoint in ``directory``, or ``None``."""
    checkpoints = list_checkpoints(directory)
    return checkpoints[-1][1] if checkpoints else None


def restore_simulation(source: Union[str, SimulationSnapshot], *,
                       telemetry=None, checks: Optional[str] = None,
                       backend: Optional[str] = None,
                       checkpoint_every: Optional[int] = None,
                       checkpoint_dir: Optional[str] = None,
                       deadline=None):
    """Rebuild a runnable simulation from a snapshot (path or object).

    The configuration, policy, and trace all come from the snapshot; the
    rebuilt simulation is restored to the captured tick and its
    :meth:`~repro.cluster.simulation.ClusterSimulation.run` continues
    from there.  Pass ``checkpoint_every``/``checkpoint_dir`` to keep
    checkpointing the resumed run.  ``backend`` selects the tick engine
    for the continuation ("reference" | "fast"; ``None`` defers to
    ``REPRO_BACKEND``) -- both continue bit-identically, so a run may be
    checkpointed under one backend and resumed under the other.
    """
    # Imported lazily: this package must stay importable from the layers
    # it snapshots without a cycle.
    from ..cluster.simulation import ClusterSimulation
    from ..config import SimulationConfig
    from ..core.policies import make_scheduler

    snapshot = (source if isinstance(source, SimulationSnapshot)
                else load_snapshot(source))
    config = SimulationConfig.from_dict(snapshot.config)
    scheduler = make_scheduler(snapshot.policy, config)
    sim = ClusterSimulation(config, scheduler,
                            record_heatmaps=snapshot.record_heatmaps,
                            telemetry=telemetry, checks=checks,
                            backend=backend,
                            checkpoint_every=checkpoint_every,
                            checkpoint_dir=checkpoint_dir,
                            deadline=deadline)
    sim.restore(snapshot)
    return sim


def resume_run(source: Union[str, SimulationSnapshot], *,
               telemetry=None, checks: Optional[str] = None,
               backend: Optional[str] = None,
               checkpoint_every: Optional[int] = None,
               checkpoint_dir: Optional[str] = None,
               deadline=None):
    """Restore from ``source`` and run to completion (the resume path)."""
    return restore_simulation(
        source, telemetry=telemetry, checks=checks, backend=backend,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir, deadline=deadline).run()


def verify_roundtrip(straight, resumed) -> None:
    """The differential oracle: resumed must equal straight, bit for bit.

    Raises :class:`CheckpointError` locating the first divergence (tick,
    metric, expected vs got -- the golden harness's formatter) when the
    fingerprints differ; returns silently when they match.
    """
    expected_fp = straight.fingerprint()
    got_fp = resumed.fingerprint()
    if expected_fp == got_fp:
        return
    from ..checks.golden import GOLDEN_SERIES, first_divergence

    series = {name: np.asarray(getattr(straight, name))
              for name in GOLDEN_SERIES}
    divergence = first_divergence(resumed.scheduler_name, resumed, series)
    if divergence is not None:
        detail = divergence.report()
    else:
        detail = _off_series_divergence(straight, resumed)
    raise CheckpointError(
        "checkpoint round-trip diverged from the straight-through run "
        f"(fingerprint {expected_fp} -> {got_fp}): {detail}")


def _off_series_divergence(straight, resumed) -> str:
    """Locate a divergence outside the golden scalar series."""
    for name in ("availability", "displaced_jobs",
                 "cooling_capacity_factor", "recovery_times_s",
                 "temp_heatmap", "melt_heatmap"):
        expected = getattr(straight, name)
        got = getattr(resumed, name)
        if expected is None and got is None:
            continue
        if expected is None or got is None:
            return (f"field '{name}' present in only one run "
                    f"(straight: {expected is not None}, "
                    f"resumed: {got is not None})")
        expected = np.asarray(expected)
        got = np.asarray(got)
        if expected.shape != got.shape:
            return (f"field '{name}' shapes differ: "
                    f"{expected.shape} vs {got.shape}")
        same = (expected == got) | (np.isnan(expected.astype(np.float64))
                                    & np.isnan(got.astype(np.float64)))
        if not same.all():
            mismatch = ~same
            if mismatch.ndim > 1:
                mismatch = mismatch.reshape(len(mismatch), -1).any(axis=1)
            tick = int(np.argmax(mismatch))
            return f"first divergence in '{name}' at row {tick}"
    return ("scalar series all match; the divergence is in a field "
            "outside the compared set")

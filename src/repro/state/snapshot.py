"""The versioned snapshot object and its ``.npz`` serialization.

A :class:`SimulationSnapshot` is a plain tree of JSON-able values with
numpy arrays at the leaves.  Serialization flattens the tree: each array
leaf moves into the ``.npz`` payload under a generated key and is
replaced in the JSON metadata by an ``{"__array__": key}`` marker, so
one compressed file carries the whole state with no pickling anywhere
(``allow_pickle=False`` on load -- a snapshot can never execute code).

Next to the ``.npz`` a small ``.manifest.json`` records the identity
facts (schema version, tick, config SHA-256, git describe) that the
:class:`~repro.obs.ledger.RunLedger` links into a run's checkpoint
lineage and that tooling can inspect without decompressing the payload.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from ..errors import CheckpointError
from ..obs.ledger import git_describe

#: Version of the snapshot state tree.  Bump when the captured state
#: changes shape; old snapshots are rejected with a readable error
#: rather than silently restored into the wrong fields.
SNAPSHOT_SCHEMA_VERSION = 1

#: Marker key for array leaves in the flattened metadata tree.
_ARRAY_MARKER = "__array__"

#: Reserved npz entry holding the JSON metadata.
_META_KEY = "__meta__"


@dataclass
class SimulationSnapshot:
    """Complete mid-run state of one :class:`ClusterSimulation`.

    ``tick`` is the number of completed scheduler ticks; the engine
    clock inside ``state`` sits at the last dispatched event.  ``state``
    is the nested tree of subsystem ``state_dict()`` outputs; everything
    else is identity metadata used to refuse a restore into the wrong
    experiment.
    """

    schema: int
    tick: int
    policy: str
    scheduler_name: str
    record_heatmaps: bool
    config: Dict[str, Any]
    config_sha256: str
    trace_sha256: str
    git_describe: str
    state: Dict[str, Any]


def _flatten(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace ndarray leaves by markers, collecting them in ``arrays``."""
    if isinstance(node, np.ndarray):
        key = f"arr{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_MARKER: key}
    if isinstance(node, dict):
        return {str(k): _flatten(v, arrays) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten(v, arrays) for v in node]
    if isinstance(node, np.integer):
        return int(node)
    if isinstance(node, np.floating):
        return float(node)
    if isinstance(node, np.bool_):
        return bool(node)
    return node


def _unflatten(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Invert :func:`_flatten` using the loaded npz ``arrays``."""
    if isinstance(node, dict):
        if set(node) == {_ARRAY_MARKER}:
            key = node[_ARRAY_MARKER]
            if key not in arrays:
                raise CheckpointError(
                    f"snapshot references missing array entry {key!r}")
            return arrays[key]
        return {k: _unflatten(v, arrays) for k, v in node.items()}
    if isinstance(node, list):
        return [_unflatten(v, arrays) for v in node]
    return node


def snapshot_manifest_path(path: str) -> str:
    """The sidecar JSON manifest path for a snapshot ``.npz`` path."""
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".manifest.json"


def save_snapshot(snapshot: SimulationSnapshot,
                  path: str) -> Dict[str, Any]:
    """Write ``snapshot`` to ``path`` (.npz) plus a sidecar manifest.

    Returns the manifest dict (which includes the payload's SHA-256, so
    ledgers can record tamper-evident checkpoint lineage).  The write is
    atomic: the payload lands under a temporary name and is renamed into
    place, so a killed process never leaves a half-written checkpoint
    that a resume would then trip over.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    meta = {
        "schema": int(snapshot.schema),
        "tick": int(snapshot.tick),
        "policy": snapshot.policy,
        "scheduler_name": snapshot.scheduler_name,
        "record_heatmaps": bool(snapshot.record_heatmaps),
        "config": _flatten(snapshot.config, arrays),
        "config_sha256": snapshot.config_sha256,
        "trace_sha256": snapshot.trace_sha256,
        "git_describe": snapshot.git_describe,
        "state": _flatten(snapshot.state, arrays),
    }
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh, **arrays,
            **{_META_KEY: np.array(json.dumps(meta))})
    os.replace(tmp, path)

    with open(path, "rb") as fh:
        payload_sha = hashlib.sha256(fh.read()).hexdigest()
    manifest = {
        "schema": f"repro.checkpoint/{SNAPSHOT_SCHEMA_VERSION}",
        "snapshot_schema": int(snapshot.schema),
        "tick": int(snapshot.tick),
        "policy": snapshot.policy,
        "scheduler_name": snapshot.scheduler_name,
        "config_sha256": snapshot.config_sha256,
        "trace_sha256": snapshot.trace_sha256,
        "git_describe": git_describe(),
        "snapshot_file": os.path.basename(path),
        "snapshot_sha256": payload_sha,
    }
    manifest_path = snapshot_manifest_path(path)
    tmp = manifest_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, manifest_path)
    return manifest


def load_snapshot(path: str) -> SimulationSnapshot:
    """Read a snapshot written by :func:`save_snapshot`.

    Raises :class:`CheckpointError` with a readable diagnosis for every
    failure mode: missing file, corrupted archive, non-snapshot npz,
    malformed metadata, or a schema version this build does not read.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise CheckpointError(f"snapshot file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            if _META_KEY not in data.files:
                raise CheckpointError(
                    f"{path} is not a simulation snapshot "
                    f"(no {_META_KEY} entry)")
            meta_json = str(data[_META_KEY][()])
            arrays = {key: data[key].copy() for key in data.files
                      if key != _META_KEY}
    except (zipfile.BadZipFile, ValueError, OSError, KeyError) as exc:
        raise CheckpointError(
            f"cannot read snapshot {path}: {exc}") from exc
    try:
        meta = json.loads(meta_json)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"snapshot {path} carries corrupted metadata: {exc}") from exc

    schema = meta.get("schema")
    if schema != SNAPSHOT_SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot {path} has schema version {schema!r}; this build "
            f"reads version {SNAPSHOT_SCHEMA_VERSION}.  Re-create the "
            "checkpoint with this version (snapshots are not migrated "
            "across schema changes).")
    required = ("tick", "policy", "scheduler_name", "record_heatmaps",
                "config", "config_sha256", "trace_sha256", "state")
    missing = [key for key in required if key not in meta]
    if missing:
        raise CheckpointError(
            f"snapshot {path} is missing metadata keys: "
            f"{', '.join(missing)}")
    return SimulationSnapshot(
        schema=int(schema),
        tick=int(meta["tick"]),
        policy=meta["policy"],
        scheduler_name=meta["scheduler_name"],
        record_heatmaps=bool(meta["record_heatmaps"]),
        config=_unflatten(meta["config"], arrays),
        config_sha256=meta["config_sha256"],
        trace_sha256=meta["trace_sha256"],
        git_describe=meta.get("git_describe", "unknown"),
        state=_unflatten(meta["state"], arrays),
    )

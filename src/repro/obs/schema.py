"""The telemetry wire contracts, and validators for them.

Two artifacts cross process (and time) boundaries and therefore carry a
versioned schema:

* **trace lines** -- each line of a ``*.trace.jsonl`` file is one JSON
  object describing a span or event (:data:`TRACE_SCHEMA_VERSION`);
* **run manifests** -- each ``*.manifest.json`` written by the
  :class:`~repro.obs.ledger.RunLedger` (:data:`MANIFEST_SCHEMA_VERSION`).

The validators are hand-rolled rather than jsonschema-based so the
package stays dependency-free; they raise :class:`TelemetryError` with
the offending key named, and the CI smoke run applies them to every
emitted line.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Tuple

from ..errors import TelemetryError

#: Version tag for trace (JSONL) lines.
TRACE_SCHEMA_VERSION = "repro.trace/1"

#: Version tag written into (and required of) run manifests.
MANIFEST_SCHEMA_VERSION = "repro.run-manifest/1"

#: Event/span names the simulation stack emits.  Validation accepts any
#: name (forward compatibility); this tuple documents the core set and
#: anchors the round-trip tests.
KNOWN_TRACE_NAMES: Tuple[str, ...] = (
    "tick", "placement", "group-resize", "wax-threshold-crossing",
    "vmt-wa-degraded", "fault-onset", "fault-recovery", "sensor-fault",
    "sensor-fault-cleared", "cooling-derate", "run-start", "run-end",
    "invariant-violation")

#: Manifest keys that must be present and equal across reruns of the
#: same spec (wall-clock and environment keys are deliberately absent).
MANIFEST_DETERMINISTIC_KEYS: Tuple[str, ...] = (
    "schema", "run_id", "scheduler", "policy", "seed", "num_servers",
    "ticks", "config_sha256", "trace_sha256", "result_fingerprint")

_VALID_KINDS = ("event", "span")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TelemetryError(message)


def _check_field_value(name: str, key: str, value: Any) -> None:
    ok = (value is None or isinstance(value, (bool, int, str))
          or (isinstance(value, float) and math.isfinite(value))
          or (isinstance(value, list)
              and all(isinstance(v, (bool, int, float, str)) or v is None
                      for v in value)))
    _require(ok, f"trace line {name!r}: field {key!r} has non-JSON-scalar "
             f"value {value!r}")


def validate_trace_line(obj: Dict[str, Any]) -> None:
    """Validate one parsed trace line; raise :class:`TelemetryError`."""
    _require(isinstance(obj, dict), f"trace line must be an object, "
             f"got {type(obj).__name__}")
    kind = obj.get("kind")
    _require(kind in _VALID_KINDS,
             f"trace line kind must be one of {_VALID_KINDS}, got {kind!r}")
    name = obj.get("name")
    _require(isinstance(name, str) and name != "",
             f"trace line needs a non-empty string name, got {name!r}")
    t = obj.get("t")
    _require(isinstance(t, (int, float)) and not isinstance(t, bool)
             and math.isfinite(t) and t >= 0,
             f"trace line {name!r}: t must be a finite number >= 0, "
             f"got {t!r}")
    if kind == "span":
        dur = obj.get("dur")
        _require(isinstance(dur, (int, float)) and not isinstance(dur, bool)
                 and math.isfinite(dur) and dur >= 0,
                 f"span {name!r}: dur must be a finite number >= 0, "
                 f"got {dur!r}")
        allowed = {"kind", "name", "t", "dur", "fields"}
    else:
        allowed = {"kind", "name", "t", "fields"}
    extras = set(obj) - allowed
    _require(not extras,
             f"trace line {name!r} has unknown keys {sorted(extras)}")
    fields = obj.get("fields")
    if fields is not None:
        _require(isinstance(fields, dict),
                 f"trace line {name!r}: fields must be an object")
        for key, value in fields.items():
            _require(isinstance(key, str) and key != "",
                     f"trace line {name!r}: field keys must be strings")
            _check_field_value(name, key, value)


def validate_trace_file(path) -> int:
    """Validate every line of a JSONL trace; returns the line count."""
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from None
            try:
                validate_trace_line(obj)
            except TelemetryError as exc:
                raise TelemetryError(f"{path}:{lineno}: {exc}") from None
            count += 1
    return count


def validate_manifest(manifest: Dict[str, Any]) -> None:
    """Validate a parsed run manifest; raise :class:`TelemetryError`."""
    _require(isinstance(manifest, dict), "manifest must be an object")
    _require(manifest.get("schema") == MANIFEST_SCHEMA_VERSION,
             f"manifest schema must be {MANIFEST_SCHEMA_VERSION!r}, "
             f"got {manifest.get('schema')!r}")
    for key in MANIFEST_DETERMINISTIC_KEYS:
        _require(key in manifest, f"manifest is missing key {key!r}")
    for key in ("run_id", "scheduler", "policy", "config_sha256",
                "trace_sha256", "result_fingerprint"):
        _require(isinstance(manifest[key], str) and manifest[key] != "",
                 f"manifest key {key!r} must be a non-empty string")
    for key in ("seed", "num_servers", "ticks"):
        _require(isinstance(manifest[key], int)
                 and not isinstance(manifest[key], bool),
                 f"manifest key {key!r} must be an integer")
    wall = manifest.get("wall_clock_s")
    _require(isinstance(wall, (int, float)) and not isinstance(wall, bool)
             and math.isfinite(wall) and wall >= 0,
             f"manifest wall_clock_s must be a finite number >= 0, "
             f"got {wall!r}")


def deterministic_view(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of a manifest that must match across identical reruns.

    Wall-clock, git state, and file paths are excluded: two bit-identical
    runs on different hosts (or one serial, one pooled) agree on exactly
    these keys.
    """
    return {key: manifest[key] for key in MANIFEST_DETERMINISTIC_KEYS
            if key in manifest}


def iter_jsonl(path) -> Iterable[Dict[str, Any]]:
    """Yield each parsed object of a JSONL file (no validation)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path) -> List[Dict[str, Any]]:
    """Parse and validate a whole trace file into a list of records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            try:
                validate_trace_line(obj)
            except TelemetryError as exc:
                raise TelemetryError(f"{path}:{lineno}: {exc}") from None
            records.append(obj)
    return records

"""Structured trace emission: spans and events to a JSONL sink.

A :class:`Tracer` turns the simulation's notable moments -- a scheduler
tick, a placement decision, a hot-group resize, a wax-threshold
crossing, a fault firing, a VMT-WA degradation -- into one JSON object
per line, append-only, so a run's trace can be tailed live or parsed
after the fact (see :mod:`repro.obs.schema` for the line contract).

Emission is buffered: lines accumulate in memory and hit the file every
``buffer_limit`` records (and on :meth:`flush`/:meth:`close`), so the
hot loop never blocks on per-event I/O and memory stays bounded no
matter how long the run is.

When tracing is off there is nothing to pay: the shared
:data:`NULL_TRACER` reports ``enabled=False`` and call sites guard field
construction behind that flag, so a disabled run skips even the
argument-building work.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, TextIO

from ..errors import TelemetryError

#: Default number of buffered lines between file writes.
DEFAULT_BUFFER_LIMIT = 256


def _clean_value(value: Any) -> Any:
    """Coerce a field value to something JSON-stable.

    Numpy scalars become Python numbers, non-finite floats become
    ``None`` (JSON has no NaN), and short sequences become lists.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item"):  # numpy scalar
        return _clean_value(value.item())
    if isinstance(value, (list, tuple)):
        return [_clean_value(v) for v in value]
    return str(value)


class Tracer:
    """Buffered JSONL span/event emitter.

    Parameters
    ----------
    path:
        Sink file; opened lazily on the first emission (so a tracer that
        never fires never creates a file).
    buffer_limit:
        Lines held in memory before each write.
    """

    enabled = True

    def __init__(self, path, *,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT) -> None:
        if buffer_limit < 1:
            raise TelemetryError("tracer buffer limit must be >= 1")
        self._path = str(path)
        self._buffer_limit = buffer_limit
        self._buffer: List[str] = []
        self._file: Optional[TextIO] = None
        self._emitted = 0
        self._closed = False

    @property
    def path(self) -> str:
        """The sink file path."""
        return self._path

    @property
    def emitted(self) -> int:
        """Total lines emitted (buffered or written)."""
        return self._emitted

    @property
    def buffered(self) -> int:
        """Lines currently waiting in the buffer."""
        return len(self._buffer)

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise TelemetryError(
                f"tracer for {self._path} is closed")
        self._buffer.append(
            json.dumps(record, separators=(",", ":")))
        self._emitted += 1
        if len(self._buffer) >= self._buffer_limit:
            self.flush()

    def event(self, name: str, time_s: float, **fields: Any) -> None:
        """Emit a point-in-time event."""
        record: Dict[str, Any] = {"kind": "event", "name": name,
                                  "t": round(float(time_s), 6)}
        if fields:
            record["fields"] = {k: _clean_value(v)
                                for k, v in fields.items()}
        self._emit(record)

    def span(self, name: str, time_s: float, duration_s: float,
             **fields: Any) -> None:
        """Emit a completed span covering ``[time_s, time_s + duration_s]``."""
        record: Dict[str, Any] = {"kind": "span", "name": name,
                                  "t": round(float(time_s), 6),
                                  "dur": round(float(duration_s), 6)}
        if fields:
            record["fields"] = {k: _clean_value(v)
                                for k, v in fields.items()}
        self._emit(record)

    def flush(self) -> None:
        """Write any buffered lines to the sink."""
        if not self._buffer:
            return
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        self._file.write("\n".join(self._buffer) + "\n")
        self._file.flush()
        self._buffer.clear()

    def close(self) -> None:
        """Flush and close the sink; further emission raises."""
        if self._closed:
            return
        self.flush()
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True


class _NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites check :attr:`enabled` before building event fields, so a
    disabled run pays a single attribute load per potential emission.
    """

    enabled = False
    path = None
    emitted = 0
    buffered = 0

    def event(self, name: str, time_s: float, **fields: Any) -> None:
        pass

    def span(self, name: str, time_s: float, duration_s: float,
             **fields: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled tracer (safe to use from any number of runs).
NULL_TRACER = _NullTracer()

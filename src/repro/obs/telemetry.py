"""One run's telemetry bundle: registry + tracer + ledger + profiler.

:class:`Telemetry` is what callers hand to the entry points
(``telemetry=`` accepts a directory path or a ``Telemetry`` instance);
the simulation *binds* it once the run's identity is known, drives the
instruments during the run, and *finishes* it afterwards -- flushing the
trace, persisting the metric columns, and writing the ledger manifest.

Per run the telemetry directory gains three files::

    <run_id>.trace.jsonl     structured spans/events (repro.obs.schema)
    <run_id>.metrics.npz     per-tick metric columns (MetricRegistry)
    <run_id>.manifest.json   the auditable run manifest (RunLedger)

Profiling and metrics share one snapshot path: when the bundle carries a
:class:`~repro.perf.profiler.TickProfiler`, a single
``TickProfiler.snapshot()`` call feeds both
``SimulationResult.profile`` and the manifest's ``profile`` block, so
the two can never disagree.

Telemetry observes; it never mutates simulation state or consumes RNG.
A run with telemetry attached is bit-identical (same
``SimulationResult.fingerprint()``) to the same run without it.
"""

from __future__ import annotations

import os
import re
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..config import SimulationConfig
from ..errors import TelemetryError
from .ledger import RunLedger
from .registry import MetricRegistry
from .tracer import DEFAULT_BUFFER_LIMIT, NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.metrics import SimulationResult
    from ..perf.profiler import TickProfiler

#: Anything the ``telemetry=`` keyword accepts.
TelemetryLike = Union["Telemetry", str, os.PathLike, None]

_RUN_ID_BAD = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_run_id(label: str) -> str:
    """Turn an arbitrary label into a filesystem-safe run id."""
    cleaned = _RUN_ID_BAD.sub("-", label).strip("-.")
    return cleaned or "run"


def telemetry_directory(value: TelemetryLike) -> Optional[str]:
    """Reduce a ``telemetry=`` argument to its directory (or ``None``).

    Multi-run entry points (sweeps, datacenter studies) cannot share one
    :class:`Telemetry` bundle -- each run writes its own -- so they keep
    only the directory and let every worker build its own bundle there.
    """
    bundle = Telemetry.coerce(value)
    return bundle.directory if bundle is not None else None


class Telemetry:
    """Telemetry for exactly one simulation run.

    Construct with the target directory (created if needed), optionally
    pre-naming the run; the simulation calls :meth:`bind` when the run's
    identity and tick count are known and :meth:`finish` when it ends.
    Reuse across runs is refused -- each run gets its own bundle, which
    is what keeps manifests unambiguous.
    """

    def __init__(self, directory, run_id: Optional[str] = None, *,
                 trace_events: bool = True, metrics: bool = True,
                 profile: bool = False,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT) -> None:
        self._dir = str(directory)
        os.makedirs(self._dir, exist_ok=True)
        self._requested_run_id = (sanitize_run_id(run_id)
                                  if run_id is not None else None)
        self._trace_events = trace_events
        self._metrics = metrics
        self._want_profile = profile
        self._buffer_limit = buffer_limit
        self._run_id: Optional[str] = None
        self._policy: Optional[str] = None
        self._registry: Optional[MetricRegistry] = None
        self._tracer = NULL_TRACER
        self._profiler: Optional["TickProfiler"] = None
        self._ledger = RunLedger(self._dir)
        self._finished = False
        self._annotations: Dict[str, Any] = {}

    # -- coercion ----------------------------------------------------------

    @classmethod
    def coerce(cls, value: TelemetryLike) -> Optional["Telemetry"]:
        """Normalize the ``telemetry=`` keyword to a bundle (or ``None``)."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, os.PathLike)):
            return cls(value)
        raise TelemetryError(
            f"telemetry must be a directory path or Telemetry, "
            f"got {type(value).__name__}")

    # -- identity ----------------------------------------------------------

    @property
    def directory(self) -> str:
        """The directory this run's artifacts land in."""
        return self._dir

    @property
    def run_id(self) -> Optional[str]:
        """The bound run id (``None`` until :meth:`bind`)."""
        return self._run_id

    @property
    def bound(self) -> bool:
        """Whether a simulation has claimed this bundle."""
        return self._run_id is not None

    @property
    def policy(self) -> Optional[str]:
        """The policy name recorded in the manifest."""
        return self._policy

    # -- components --------------------------------------------------------

    @property
    def registry(self) -> MetricRegistry:
        """The metric registry (available once bound)."""
        if self._registry is None:
            raise TelemetryError("telemetry is not bound to a run yet")
        return self._registry

    @property
    def tracer(self):
        """The span/event tracer (:data:`NULL_TRACER` when disabled)."""
        return self._tracer

    @property
    def profiler(self) -> Optional["TickProfiler"]:
        """The tick profiler when ``profile=True``, else ``None``."""
        return self._profiler

    # -- file layout -------------------------------------------------------

    def _artifact(self, suffix: str) -> str:
        assert self._run_id is not None
        return os.path.join(self._dir, self._run_id + suffix)

    @property
    def trace_path(self) -> Optional[str]:
        """The JSONL trace path (``None`` before bind / when disabled)."""
        if self._run_id is None or not self._trace_events:
            return None
        return self._artifact(".trace.jsonl")

    @property
    def metrics_path(self) -> Optional[str]:
        """The metrics ``.npz`` path (``None`` before bind / disabled)."""
        if self._run_id is None or not self._metrics:
            return None
        return self._artifact(".metrics.npz")

    @property
    def manifest_path(self) -> Optional[str]:
        """The manifest path (``None`` before bind)."""
        if self._run_id is None:
            return None
        return self._ledger.manifest_path(self._run_id)

    # -- lifecycle ---------------------------------------------------------

    def bind(self, default_run_id: str, *, policy: Optional[str] = None,
             capacity: int = 1024) -> None:
        """Claim the bundle for one run.

        ``default_run_id`` is used when the constructor did not pin one;
        ``capacity`` (the trace's tick count) preallocates the metric
        store; ``policy`` is the canonical scheduler key when the caller
        knows it (sweep machinery does; ad-hoc callers fall back to the
        scheduler name).
        """
        if self._run_id is not None:
            raise TelemetryError(
                f"telemetry is already bound to run {self._run_id!r}; "
                "create one bundle per run")
        if self._finished:
            raise TelemetryError("telemetry bundle was already finished")
        self._run_id = self._requested_run_id or \
            sanitize_run_id(default_run_id)
        self._policy = policy
        self._registry = MetricRegistry(capacity=max(1, capacity))
        if self._trace_events:
            self._tracer = Tracer(self._artifact(".trace.jsonl"),
                                  buffer_limit=self._buffer_limit)
        if self._want_profile and self._profiler is None:
            from ..perf.profiler import TickProfiler
            self._profiler = TickProfiler()

    def annotate(self, **extra: Any) -> None:
        """Attach extra provenance keys to the run's manifest.

        Used by the sweep machinery to record e.g. the compiled
        scenario's name and canonical SHA-256.  ``None`` values are
        dropped; keys must not collide with the manifest's own schema
        (the ledger validates on write).
        """
        if self._finished:
            raise TelemetryError("telemetry bundle was already finished")
        for key, value in extra.items():
            if value is not None:
                self._annotations[key] = value

    def use_profiler(self, profiler: Optional["TickProfiler"]) -> None:
        """Adopt an externally supplied profiler (pre-bind only)."""
        if profiler is None:
            return
        if self._run_id is not None:
            raise TelemetryError(
                "cannot adopt a profiler after telemetry is bound")
        self._profiler = profiler

    def finish(self, *, config: SimulationConfig, scheduler_name: str,
               result: "SimulationResult", trace_sha256: str,
               wall_clock_s: float,
               checkpoints: Optional[list] = None) -> Dict[str, Any]:
        """Seal the run: flush the trace, save metrics, write the manifest.

        Returns the manifest dict.  ``result.profile`` and the
        manifest's ``profile`` block come from the same
        ``TickProfiler.snapshot()`` value, never two separate reads.
        """
        if self._run_id is None:
            raise TelemetryError("cannot finish unbound telemetry")
        if self._finished:
            raise TelemetryError("telemetry was already finished")
        self._finished = True
        self._tracer.close()
        files: Dict[str, str] = {}
        if self._trace_events:
            files["trace"] = os.path.basename(self._artifact(".trace.jsonl"))
        if self._metrics and self._registry is not None \
                and self._registry.num_snapshots > 0:
            self._registry.save_npz(self._artifact(".metrics.npz"))
            files["metrics"] = os.path.basename(
                self._artifact(".metrics.npz"))
        manifest = self._ledger.record(
            run_id=self._run_id,
            scheduler=scheduler_name,
            policy=self._policy or scheduler_name.split("(")[0],
            config=config,
            trace_sha256=trace_sha256,
            result_fingerprint=result.fingerprint(),
            ticks=len(result.times_s),
            wall_clock_s=wall_clock_s,
            files=files,
            profile=result.profile,
            checkpoints=checkpoints,
            extra=self._annotations or None,
        )
        return manifest

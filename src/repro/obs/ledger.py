"""The run ledger: one auditable manifest per simulation run.

Long experiment campaigns (GV sweeps, seed-averaged figures, TCO
what-ifs) produce hundreds of :class:`~repro.cluster.metrics.SimulationResult`
objects whose provenance evaporates the moment the process exits.  The
:class:`RunLedger` fixes that: every telemetry-enabled run appends a
``<run_id>.manifest.json`` to the telemetry directory recording exactly
what ran --

* the SHA-256 of the canonical configuration tree,
* the demand trace's fingerprint,
* the root seed and scheduler,
* ``SimulationResult.fingerprint()`` (the bit-exact physics hash),
* wall-clock duration and, best-effort, ``git describe`` of the code --

so any sweep point can be re-run and byte-compared later.  Manifests are
deterministic modulo wall-clock and environment keys (see
:func:`repro.obs.schema.deterministic_view`), which is what the
serial-vs-parallel ledger tests assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from typing import Any, Dict, List, Optional

from ..config import SimulationConfig
from ..errors import TelemetryError
from .schema import MANIFEST_SCHEMA_VERSION, validate_manifest

#: Suffix every manifest file carries.
MANIFEST_SUFFIX = ".manifest.json"

_GIT_DESCRIBE_CACHE: Optional[str] = None


def config_sha256(config: SimulationConfig) -> str:
    """SHA-256 of the canonical (sorted-key JSON) configuration tree."""
    canonical = json.dumps(config.to_dict(), sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def git_describe(repo_dir: Optional[str] = None) -> str:
    """Best-effort ``git describe --always --dirty`` of the source tree.

    Returns ``"unknown"`` when git (or the repository) is unavailable --
    telemetry must never fail a run over provenance niceties.  The value
    is cached per process: the checkout cannot change mid-run.
    """
    global _GIT_DESCRIBE_CACHE
    if repo_dir is None and _GIT_DESCRIBE_CACHE is not None:
        return _GIT_DESCRIBE_CACHE
    if repo_dir is None:
        repo_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=repo_dir, capture_output=True, text=True, timeout=5)
        described = out.stdout.strip() if out.returncode == 0 else "unknown"
    except (OSError, subprocess.SubprocessError):
        described = "unknown"
    if not described:
        described = "unknown"
    _GIT_DESCRIBE_CACHE = described
    return described


class RunLedger:
    """Writes and reads run manifests in one telemetry directory."""

    def __init__(self, directory) -> None:
        self._dir = str(directory)
        os.makedirs(self._dir, exist_ok=True)

    @property
    def directory(self) -> str:
        """The telemetry directory manifests live in."""
        return self._dir

    def manifest_path(self, run_id: str) -> str:
        """Path a given run's manifest is (or would be) written to."""
        return os.path.join(self._dir, run_id + MANIFEST_SUFFIX)

    def record(self, *, run_id: str, scheduler: str, policy: str,
               config: SimulationConfig, trace_sha256: str,
               result_fingerprint: str, ticks: int,
               wall_clock_s: float,
               files: Optional[Dict[str, str]] = None,
               profile: Optional[Dict[str, Any]] = None,
               checkpoints: Optional[List[Dict[str, Any]]] = None,
               extra: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """Write one run's manifest; returns the manifest dict.

        An existing manifest under the same ``run_id`` is overwritten:
        rerunning a spec is the expected way to refresh its entry.
        ``extra`` carries caller provenance (e.g. scenario name and
        sha); its keys may not shadow the manifest's own schema.
        """
        if not run_id:
            raise TelemetryError("run_id must be non-empty")
        extra = dict(extra or {})
        manifest: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "run_id": run_id,
            "scheduler": scheduler,
            "policy": policy,
            "seed": int(config.seed),
            "num_servers": int(config.num_servers),
            "ticks": int(ticks),
            "config_sha256": config_sha256(config),
            "trace_sha256": trace_sha256,
            "result_fingerprint": result_fingerprint,
            "wall_clock_s": round(float(wall_clock_s), 6),
            "git_describe": git_describe(),
            "files": dict(files or {}),
        }
        if profile is not None:
            manifest["profile"] = profile
        if checkpoints:
            manifest["checkpoints"] = [dict(entry) for entry in checkpoints]
        shadowed = sorted(set(extra) & set(manifest))
        if shadowed:
            raise TelemetryError(
                f"extra manifest keys shadow schema keys: {shadowed}")
        manifest.update(extra)
        validate_manifest(manifest)
        path = self.manifest_path(run_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return manifest

    def read(self, run_id: str) -> Dict[str, Any]:
        """Load and validate one manifest by run id."""
        path = self.manifest_path(run_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise TelemetryError(
                f"no manifest for run {run_id!r} in {self._dir}") from None
        validate_manifest(manifest)
        return manifest

    def list(self) -> List[Dict[str, Any]]:
        """All valid manifests in the directory, sorted by run id."""
        manifests = []
        try:
            entries = sorted(os.listdir(self._dir))
        except FileNotFoundError:
            return []
        for entry in entries:
            if not entry.endswith(MANIFEST_SUFFIX):
                continue
            run_id = entry[:-len(MANIFEST_SUFFIX)]
            manifests.append(self.read(run_id))
        return manifests


def read_manifests(directory) -> List[Dict[str, Any]]:
    """Convenience: every valid manifest under ``directory``."""
    return RunLedger(directory).list()

"""Metric instruments and the per-tick columnar snapshot store.

A :class:`MetricRegistry` is the single place a run's subsystems publish
numeric state: schedulers, the PCM model, the wax estimator, the fault
injector, and the event engine each expose a ``register_metrics``
method that creates instruments here.  Three instrument kinds cover the
usual needs:

``Counter``
    Monotonically increasing totals (events fired, wax crossings).
``Gauge``
    A point-in-time value; either set explicitly or backed by a
    zero-argument callback evaluated at snapshot time, which is the
    idiomatic way to publish live numpy state without copying it every
    tick.
``Histogram``
    A fixed-bucket distribution (cumulative counts, plus running count
    and sum so snapshots stay scalar).

Once per scheduling tick :meth:`MetricRegistry.snapshot_tick` evaluates
every instrument into a row of the :class:`ColumnStore` -- one
preallocated float64 column per instrument, doubling on overflow -- so a
two-day, one-minute run costs a few hundred kilobytes and zero Python
object churn.  The store serializes to ``.npz`` next to the run's trace
and manifest.

The registry is deliberately observation-only: instruments never touch
simulation state or RNG streams, which is what keeps a telemetry-enabled
run bit-identical to a silent one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TelemetryError

#: Default histogram bucket upper bounds (unitless; callers override).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self._value += amount

    def snapshot_columns(self) -> Dict[str, float]:
        """The scalar column(s) this instrument contributes per tick."""
        return {self.name: self._value}


class Gauge:
    """A point-in-time value, set directly or pulled from a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = float("nan")
        self._fn = fn

    @property
    def value(self) -> float:
        """Current value (evaluates the callback when one is bound)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge explicitly (only for callback-less gauges)."""
        if self._fn is not None:
            raise TelemetryError(
                f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = float(value)

    def snapshot_columns(self) -> Dict[str, float]:
        """The scalar column(s) this instrument contributes per tick."""
        return {self.name: self.value}


class Histogram:
    """Fixed-bucket distribution with running count and sum.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Snapshots record only ``count``
    and ``sum`` columns (scalar per tick); the full bucket counts are
    available at any time via :attr:`bucket_counts`.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def bucket_counts(self) -> np.ndarray:
        """Per-bucket counts (last entry is the overflow bucket)."""
        return self._counts.copy()

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = int(np.searchsorted(self.bounds, value, side="left"))
        self._counts[idx] += 1
        self._count += 1
        self._sum += float(value)

    def snapshot_columns(self) -> Dict[str, float]:
        """The scalar column(s) this instrument contributes per tick."""
        return {f"{self.name}.count": float(self._count),
                f"{self.name}.sum": self._sum}


class ColumnStore:
    """Append-only columnar storage: one float64 array per column.

    Columns are fixed by the first :meth:`append`; rows double the
    backing arrays transparently when the capacity hint was too small.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise TelemetryError("column store capacity must be positive")
        self._capacity = int(capacity)
        self._size = 0
        self._columns: Optional[Dict[str, np.ndarray]] = None

    @property
    def num_rows(self) -> int:
        """Rows appended so far."""
        return self._size

    def append(self, row: Dict[str, float]) -> None:
        """Append one row; the first call freezes the column set."""
        if self._columns is None:
            self._columns = {name: np.empty(self._capacity)
                             for name in row}
        elif row.keys() != self._columns.keys():
            raise TelemetryError(
                "row columns changed after the first append; register "
                "every instrument before the first snapshot")
        if self._size == self._capacity:
            self._capacity *= 2
            for name, buf in self._columns.items():
                grown = np.empty(self._capacity)
                grown[:self._size] = buf[:self._size]
                self._columns[name] = grown
        for name, value in row.items():
            self._columns[name][self._size] = value
        self._size += 1

    def columns(self) -> Dict[str, np.ndarray]:
        """The trimmed columns, insertion-ordered."""
        if self._columns is None:
            return {}
        return {name: buf[:self._size].copy()
                for name, buf in self._columns.items()}

    def save_npz(self, path) -> str:
        """Write all columns to a compressed ``.npz``; returns the path."""
        np.savez_compressed(path, **self.columns())
        return str(path)


class MetricRegistry:
    """Registry of named instruments with a shared per-tick snapshot.

    Instrument names must be unique across kinds; registration after the
    first snapshot raises (the columnar store is rectangular).  A
    ``capacity`` hint (normally the trace's tick count) preallocates the
    store exactly.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._instruments: Dict[str, object] = {}
        self._store = ColumnStore(capacity)
        self._frozen = False

    def _register(self, instrument) -> None:
        if self._frozen:
            raise TelemetryError(
                f"cannot register {instrument.name!r} after the first "
                "snapshot")
        if instrument.name in self._instruments:
            raise TelemetryError(
                f"instrument {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument

    def counter(self, name: str) -> Counter:
        """Create and register a :class:`Counter`."""
        counter = Counter(name)
        self._register(counter)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        """Create and register a :class:`Gauge` (optionally callback-backed)."""
        gauge = Gauge(name, fn)
        self._register(gauge)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Create and register a :class:`Histogram`."""
        histogram = Histogram(name, bounds)
        self._register(histogram)
        return histogram

    def get(self, name: str):
        """Look an instrument up by name (raises when absent)."""
        try:
            return self._instruments[name]
        except KeyError:
            raise TelemetryError(
                f"no instrument named {name!r}") from None

    @property
    def names(self) -> List[str]:
        """Registered instrument names, in registration order."""
        return list(self._instruments)

    @property
    def num_snapshots(self) -> int:
        """Snapshot rows taken so far."""
        return self._store.num_rows

    def snapshot_tick(self, time_s: float) -> None:
        """Evaluate every instrument into one row of the column store."""
        self._frozen = True
        row: Dict[str, float] = {"time_s": float(time_s)}
        for instrument in self._instruments.values():
            row.update(instrument.snapshot_columns())
        self._store.append(row)

    def columns(self) -> Dict[str, np.ndarray]:
        """The collected series (``time_s`` plus one per instrument)."""
        return self._store.columns()

    def save_npz(self, path) -> str:
        """Persist the collected series to a compressed ``.npz``."""
        return self._store.save_npz(path)

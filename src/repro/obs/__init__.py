"""Observability: metric registry, structured tracing, and the run ledger.

The simulation stack is a feedback-controlled system (the scheduler
reacts to sensed thermal state every minute); this package makes that
loop observable without perturbing it:

* :mod:`~repro.obs.registry` -- counters/gauges/histograms that
  subsystems register, snapshotted per tick into a columnar store;
* :mod:`~repro.obs.tracer` -- structured spans/events streamed to a
  JSONL sink with bounded buffering and zero cost when disabled;
* :mod:`~repro.obs.ledger` -- one auditable manifest per run (config
  hash, trace fingerprint, seed, result fingerprint, git describe);
* :mod:`~repro.obs.schema` -- the versioned wire contracts and their
  validators;
* :mod:`~repro.obs.telemetry` -- the per-run bundle the entry points
  accept via ``telemetry=``.

The cardinal invariant, enforced by tests and CI: attaching telemetry
never changes a single simulated bit --
``SimulationResult.fingerprint()`` is identical with telemetry on and
off for every policy.
"""

from .ledger import (RunLedger, config_sha256, git_describe,
                     read_manifests)
from .registry import (Counter, Gauge, Histogram, MetricRegistry,
                       ColumnStore)
from .schema import (KNOWN_TRACE_NAMES, MANIFEST_SCHEMA_VERSION,
                     TRACE_SCHEMA_VERSION, deterministic_view,
                     read_trace, validate_manifest, validate_trace_file,
                     validate_trace_line)
from .telemetry import (Telemetry, TelemetryLike, sanitize_run_id,
                        telemetry_directory)
from .tracer import NULL_TRACER, Tracer

__all__ = [
    "ColumnStore", "Counter", "Gauge", "Histogram", "MetricRegistry",
    "Tracer", "NULL_TRACER", "Telemetry", "TelemetryLike",
    "sanitize_run_id", "telemetry_directory",
    "RunLedger", "config_sha256", "git_describe", "read_manifests",
    "KNOWN_TRACE_NAMES", "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION", "deterministic_view", "read_trace",
    "validate_manifest", "validate_trace_file", "validate_trace_line",
]

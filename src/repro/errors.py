"""Exception hierarchy for the VMT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid state."""


class SchedulingError(SimulationError):
    """A scheduler could not produce a legal placement.

    Raised only when demand exceeds the total computational capacity of the
    cluster; the paper explicitly does not model that case, so hitting this
    error means the experiment itself is misconfigured.
    """


class CapacityError(SchedulingError):
    """Demanded job slots exceed the cluster's total core count."""


class InvariantViolation(SimulationError):
    """A runtime physical or scheduling invariant failed mid-run.

    Raised by the :mod:`repro.checks` sanitizer when a simulated
    quantity breaks one of the model's conservation laws or validity
    bounds (PCM energy balance, job conservation, Eq. 1/2 partition,
    melt-fraction bounds, time monotonicity, non-finite state).  The
    message always carries the tick index and, where it applies, the
    offending server id -- a violation means the simulation's *code* is
    wrong, never that the simulated system merely misbehaved.
    """


class CheckpointError(SimulationError):
    """A simulation snapshot could not be written, read, or restored.

    Raised when a checkpoint file is corrupted, carries an unknown
    schema version, or describes a different experiment than the one
    being restored (config hash, policy, or trace mismatch).  The
    message always says *which* of those failed so a stale checkpoint
    directory produces a diagnosis, not a silently wrong resume.
    """


class FaultInjectionError(SimulationError):
    """A fault-injection event or scenario is invalid.

    Raised when a scripted fault targets a server outside the cluster,
    fires outside the simulated horizon, or tries to fail a server that
    is already down -- all symptoms of a misconfigured scenario rather
    than of the simulated system misbehaving.
    """


class SensorError(ReproError):
    """A sensor was given an invalid fault mode or channel.

    Distinct from :class:`FaultInjectionError` so substrate-level sensor
    misuse (an unknown fault mode, an out-of-range channel) can be told
    apart from scenario-level scripting mistakes.
    """


class TraceError(ReproError):
    """A workload trace is malformed (wrong shape, values out of range)."""


class ThermalModelError(ReproError):
    """A thermal model was given physically impossible parameters."""


class TelemetryError(ReproError):
    """Observability misuse or a malformed telemetry artifact.

    Raised for registry misuse (duplicate instruments, registration
    after the first snapshot), tracer misuse (emission after close), and
    schema violations in trace lines or run manifests.  Never raised by
    a correctly configured run: telemetry failures must not be able to
    kill a simulation retroactively.
    """

"""Saving and loading simulation results.

Sweeps at 1,000-server scale take minutes; analyses of their output
should not require re-running them.  A :class:`SimulationResult` round-
trips through a single ``.npz`` file: the numeric series as arrays, the
configuration as JSON in a metadata entry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .cluster.metrics import SimulationResult
from .config import SimulationConfig
from .errors import ReproError

#: Array fields persisted verbatim (order matters for round-tripping).
_ARRAY_FIELDS = (
    "times_s", "cooling_load_w", "it_power_w", "wax_absorption_w",
    "mean_temp_c", "hot_group_mean_temp_c", "cold_group_mean_temp_c",
    "mean_melt_fraction", "hot_group_size", "jobs",
)
_OPTIONAL_FIELDS = ("max_cpu_temp_c", "availability", "displaced_jobs",
                    "cooling_capacity_factor", "recovery_times_s",
                    "temp_heatmap", "melt_heatmap")

_FORMAT_VERSION = 1


def save_result(result: SimulationResult,
                path: Union[str, Path]) -> Path:
    """Write a result to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload = {field: getattr(result, field) for field in _ARRAY_FIELDS}
    for field in _OPTIONAL_FIELDS:
        value = getattr(result, field)
        if value is not None:
            payload[field] = value
    meta = {
        "format_version": _FORMAT_VERSION,
        "scheduler_name": result.scheduler_name,
        "config": result.config.to_dict(),
    }
    payload["meta_json"] = np.array(json.dumps(meta))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such result file: {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            meta = json.loads(str(data["meta_json"]))
        except KeyError:
            raise ReproError(f"{path} is not a repro result file") from None
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ReproError(
                f"{path}: unsupported format version "
                f"{meta.get('format_version')!r}")
        kwargs = {field: data[field] for field in _ARRAY_FIELDS}
        for field in _OPTIONAL_FIELDS:
            kwargs[field] = data[field] if field in data else None
    return SimulationResult(
        config=SimulationConfig.from_dict(meta["config"]),
        scheduler_name=meta["scheduler_name"],
        **kwargs,
    )

"""repro: a reproduction of "Virtual Melting Temperature" (ISCA 2018).

The library simulates a datacenter cluster whose servers carry phase
change material (paraffin wax) and implements the paper's contribution --
Virtual Melting Temperature job placement (VMT-TA and VMT-WA) -- along
with every substrate the evaluation needs: an event-driven simulation
kernel, enthalpy-method PCM physics, a server thermal/power model, the
five-workload suite with a two-day diurnal trace, baselines (round robin
and coolest first), reliability and TCO models, and an experiment harness
that regenerates each of the paper's figures and tables.

Quickstart (the stable facade)::

    from repro import api

    duel = api.compare(policies=("vmt-ta", "round-robin"),
                       num_servers=100, gv=22.0)
    print(f"peak cooling reduction: "
          f"{duel.peak_reduction('vmt-ta') * 100:.1f}%")

The building blocks behind the facade stay public::

    from repro import paper_cluster_config, make_scheduler, run_simulation

    config = paper_cluster_config(num_servers=100, grouping_value=22.0)
    vmt = run_simulation(config, make_scheduler("vmt-ta", config),
                         telemetry="runs/")  # JSONL trace + manifest
"""

from .config import (AmbientConfig, AmbientEventSpec, BatteryConfig,
                     CoolingFaultSpec, DemandEventSpec, FaultConfig,
                     HARDWARE_CLASSES, HardwareClass, SchedulerConfig,
                     SensorFaultSpec, ServerConfig, ServerFaultSpec,
                     SimulationConfig, ThermalConfig, TraceConfig,
                     WaxConfig, hardware_class, paper_cluster_config)
from .errors import (CapacityError, ConfigurationError, FaultInjectionError,
                     InvariantViolation, ReproError, SchedulingError,
                     SensorError, SimulationError, TelemetryError,
                     ThermalModelError, TraceError)
from .cluster import (Cluster, ClusterSimulation, ClusterView, Datacenter,
                      DatacenterImpact, DatacenterResult, MetricsCollector,
                      MultiClusterSimulation, Observer, SimulationResult,
                      run_datacenter, run_simulation)
from .obs import (MetricRegistry, RunLedger, Telemetry, Tracer,
                  read_manifests)
from . import api
from .api import API_VERSION, Comparison
from .analysis.sweep import SweepResult
from .core import (CoolestFirstScheduler, GroupSizer, Placement,
                   RoundRobinScheduler, Scheduler, SCHEDULER_NAMES,
                   VMTPreserveScheduler, VMTThermalAwareScheduler,
                   VMTWaxAwareScheduler, derive_gv_vmt_mapping,
                   hot_group_size, make_scheduler)
from .checks import SimulationSanitizer, resolve_check_level
# Imported after .cluster/.core: the fault scenarios lean on the group
# sizing helpers, so importing them first would close an import cycle.
from .faults import (FaultInjector, FaultState, cooling_derate,
                     kill_hot_group_fraction, kill_servers,
                     merge_scenarios, stuck_wax_sensors,
                     temperature_hazard)
from .scenarios import (LeaderboardEntry, SCENARIO_LIBRARY, ScenarioSpec,
                        SuiteReport, get_scenario, qos_ok_fraction,
                        run_suite, scenario_names, verify_scenario)
from .io import load_result, save_result
from .tco import (CarbonIntensityCurve, ElectricityTariff, EnergyBill,
                  TCOModel, VMTSavings, compare_cooling_bills,
                  n_paraffin_alternative_cost_usd,
                  wax_deployment_cost_usd)
from .thermal import (ChillerPlant, CoolingLoadTracker, CoolingSystem,
                      MaterialProperties, PCMBank, SensibleStorageBank,
                      ServerAirModel, WaxStateEstimator)
from .workloads import (TwoDayTrace, WORKLOADS, WORKLOAD_LIST, Workload,
                        WorkloadMix, classify_suite, get_workload,
                        paper_mix)
# Imported last: the fleet layer composes cluster, tco, and thermal.
from .fleet import (FLEET_POLICIES, FleetPolicy, FleetResult,
                    FleetSimulation, FleetSpec, SiteResult, SiteSpec,
                    demo_fleet, run_fleet)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "AmbientConfig", "AmbientEventSpec", "CoolingFaultSpec",
    "DemandEventSpec", "FaultConfig", "SchedulerConfig", "SensorFaultSpec",
    "ServerConfig", "ServerFaultSpec", "SimulationConfig", "ThermalConfig",
    "TraceConfig", "WaxConfig", "paper_cluster_config",
    "BatteryConfig", "HARDWARE_CLASSES", "HardwareClass", "hardware_class",
    # errors
    "CapacityError", "ConfigurationError", "FaultInjectionError",
    "InvariantViolation", "ReproError", "SchedulingError", "SensorError",
    "SimulationError", "TelemetryError", "ThermalModelError", "TraceError",
    # invariant checking
    "SimulationSanitizer", "resolve_check_level",
    # facade + observability
    "API_VERSION", "Comparison", "SweepResult", "api", "MetricRegistry",
    "Observer", "RunLedger", "Telemetry", "Tracer", "read_manifests",
    # fault injection
    "FaultInjector", "FaultState", "cooling_derate",
    "kill_hot_group_fraction", "kill_servers", "merge_scenarios",
    "stuck_wax_sensors", "temperature_hazard",
    # cluster simulation
    "Cluster", "ClusterSimulation", "ClusterView", "Datacenter",
    "DatacenterImpact", "DatacenterResult", "MetricsCollector",
    "MultiClusterSimulation", "SimulationResult", "run_datacenter",
    "run_simulation",
    # schedulers (the contribution)
    "CoolestFirstScheduler", "GroupSizer", "Placement",
    "RoundRobinScheduler", "Scheduler", "SCHEDULER_NAMES",
    "VMTPreserveScheduler", "VMTThermalAwareScheduler",
    "VMTWaxAwareScheduler", "derive_gv_vmt_mapping", "hot_group_size",
    "make_scheduler",
    # scenario engine
    "LeaderboardEntry", "SCENARIO_LIBRARY", "ScenarioSpec", "SuiteReport",
    "get_scenario", "qos_ok_fraction", "run_suite", "scenario_names",
    "verify_scenario",
    # persistence
    "load_result", "save_result",
    # cost models
    "CarbonIntensityCurve", "ElectricityTariff", "EnergyBill", "TCOModel",
    "VMTSavings", "compare_cooling_bills",
    "n_paraffin_alternative_cost_usd", "wax_deployment_cost_usd",
    # fleet subsystem
    "FLEET_POLICIES", "FleetPolicy", "FleetResult", "FleetSimulation",
    "FleetSpec", "SiteResult", "SiteSpec", "demo_fleet", "run_fleet",
    # thermal substrate
    "ChillerPlant", "CoolingLoadTracker", "CoolingSystem",
    "MaterialProperties", "PCMBank", "SensibleStorageBank",
    "ServerAirModel", "WaxStateEstimator",
    # workloads
    "TwoDayTrace", "WORKLOADS", "WORKLOAD_LIST", "Workload", "WorkloadMix",
    "classify_suite", "get_workload", "paper_mix",
    "__version__",
]

"""Generic parameter sweep helpers.

The paper's evaluation is mostly sweeps: grouping value, wax threshold,
inlet variation.  These helpers run a scheduler across a parameter range
against a shared round-robin baseline, optionally averaging over seeds
(Figs. 19/20 average five runs).

Every sweep point is an independent simulation, so the helpers describe
their runs as :class:`~repro.perf.runner.RunSpec` jobs and hand them to
an :class:`~repro.perf.runner.ExperimentRunner`: ``max_workers=1`` (the
default) executes serially in-process, larger values fan the points
across a process pool.  Either way the demand trace for each distinct
(trace config, cluster size, seed) is built exactly once per process via
the shared trace cache, and results are bit-identical to the naive
one-at-a-time loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.metrics import SimulationResult
from ..config import paper_cluster_config
from ..obs.telemetry import TelemetryLike, telemetry_directory
from ..perf.runner import ExperimentRunner, RunSpec


@dataclass(frozen=True)
class SweepResult:
    """Peak-cooling-load reductions across a swept parameter.

    This is a frozen v1 response schema: :meth:`to_json` /
    :meth:`from_json` round-trip the full dataclass losslessly, and the
    serving layer returns exactly this shape for ``POST /v1/sweeps``
    jobs.
    """

    parameter_name: str
    values: np.ndarray
    reductions: Dict[str, np.ndarray]  # policy name -> fraction per value

    def best(self, policy: str) -> tuple:
        """(best parameter value, best reduction) for a policy."""
        series = self.reductions[policy]
        idx = int(np.argmax(series))
        return float(self.values[idx]), float(series[idx])

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable dict that round-trips losslessly."""
        return {
            "schema": "repro.sweep/1",
            "parameter_name": self.parameter_name,
            "values": np.asarray(self.values, dtype=np.float64).tolist(),
            "reductions": {
                policy: np.asarray(series, dtype=np.float64).tolist()
                for policy, series in self.reductions.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SweepResult":
        """Rebuild a sweep result from :meth:`to_json` output."""
        from ..errors import SimulationError
        if payload.get("schema") != "repro.sweep/1":
            raise SimulationError(
                f"not a repro.sweep/1 payload "
                f"(schema={payload.get('schema')!r})")
        return cls(
            parameter_name=str(payload["parameter_name"]),
            values=np.asarray(payload["values"], dtype=np.float64),
            reductions={
                str(policy): np.asarray(series, dtype=np.float64)
                for policy, series in payload["reductions"].items()},
        )


def _gv_sweep_specs(grouping_values: Sequence[float],
                    policies: Sequence[str], *, num_servers: int,
                    seed: int, inlet_stdev_c: float,
                    wax_threshold: float,
                    checks: Optional[str] = None,
                    backend: Optional[str] = None) -> List[RunSpec]:
    """Baseline spec followed by one spec per (gv, policy), in order."""
    base = paper_cluster_config(num_servers=num_servers, seed=seed,
                                inlet_stdev_c=inlet_stdev_c,
                                wax_threshold=wax_threshold)
    specs = [RunSpec(base, "round-robin",
                     label=f"baseline[seed={seed}]", checks=checks,
                     backend=backend)]
    for gv in grouping_values:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=gv, seed=seed,
                                      inlet_stdev_c=inlet_stdev_c,
                                      wax_threshold=wax_threshold)
        for policy in policies:
            specs.append(RunSpec(config, policy,
                                 label=f"{policy}[gv={gv:g},seed={seed}]",
                                 checks=checks, backend=backend))
    return specs


def _gv_reductions(results: Sequence[SimulationResult],
                   grouping_values: Sequence[float],
                   policies: Sequence[str]) -> Dict[str, np.ndarray]:
    """Fold a ``_gv_sweep_specs`` result list back into reduction series."""
    baseline = results[0]
    reductions: Dict[str, List[float]] = {p: [] for p in policies}
    cursor = 1
    for _gv in grouping_values:
        for policy in policies:
            reductions[policy].append(
                results[cursor].peak_reduction_vs(baseline))
            cursor += 1
    return {p: np.asarray(v) for p, v in reductions.items()}


def gv_sweep(grouping_values: Sequence[float], *,
             policies: Sequence[str] = ("vmt-ta", "vmt-wa"),
             num_servers: int = 100, seed: int = 7,
             inlet_stdev_c: float = 0.0,
             wax_threshold: float = 0.98,
             max_workers: Optional[int] = 1,
             workers_mode: str = "process",
             telemetry: TelemetryLike = None,
             checks: Optional[str] = None,
             backend: Optional[str] = None) -> SweepResult:
    """Sweep the grouping value for one or more VMT policies (Fig. 18).

    Every sweep point shares one generated trace (they only differ in
    GV, which the trace does not depend on), and ``max_workers`` > 1
    runs the points in parallel without changing a single output bit.
    ``workers_mode="thread"`` swaps the process pool for threads that
    share the parent's read-only trace arrays (pairs well with
    ``backend="fast"``); ``backend`` selects the tick engine per point
    ("reference" | "fast", ``None`` = the ``REPRO_BACKEND`` variable).
    With ``telemetry`` (a directory), every sweep point writes its own
    trace/metrics/manifest bundle there, labeled by policy and GV.
    """
    specs = _gv_sweep_specs(grouping_values, policies,
                            num_servers=num_servers, seed=seed,
                            inlet_stdev_c=inlet_stdev_c,
                            wax_threshold=wax_threshold, checks=checks,
                            backend=backend)
    telemetry_dir = telemetry_directory(telemetry)
    if telemetry_dir is not None:
        specs = [replace(spec, telemetry_dir=telemetry_dir)
                 for spec in specs]
    results = ExperimentRunner(max_workers, workers_mode).run(specs)
    return SweepResult(
        parameter_name="grouping_value",
        values=np.asarray(list(grouping_values), dtype=np.float64),
        reductions=_gv_reductions(results, grouping_values, policies),
    )


def seed_averaged_sweep(grouping_values: Sequence[float], policy: str, *,
                        num_servers: int = 100,
                        seeds: Sequence[int] = range(5),
                        inlet_stdev_c: float = 0.0,
                        max_workers: Optional[int] = 1) -> SweepResult:
    """Average a GV sweep over several seeds (Figs. 19/20).

    Each seed re-draws the inlet temperature distribution (and the
    trace/scheduler noise streams); reductions are computed against that
    seed's own round-robin baseline, then averaged.  All seeds' runs go
    to the runner as one batch so a parallel pool can interleave them.
    """
    seeds = list(seeds)
    specs: List[RunSpec] = []
    spans: List[Tuple[int, int]] = []
    for seed in seeds:
        start = len(specs)
        specs.extend(_gv_sweep_specs(grouping_values, (policy,),
                                     num_servers=num_servers, seed=seed,
                                     inlet_stdev_c=inlet_stdev_c,
                                     wax_threshold=0.98))
        spans.append((start, len(specs)))
    results = ExperimentRunner(max_workers).run(specs)
    per_seed = [
        _gv_reductions(results[start:end], grouping_values,
                       (policy,))[policy]
        for start, end in spans]
    stacked = np.vstack(per_seed)
    return SweepResult(
        parameter_name="grouping_value",
        values=np.asarray(list(grouping_values), dtype=np.float64),
        reductions={policy: stacked.mean(axis=0)},
    )

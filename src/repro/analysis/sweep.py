"""Generic parameter sweep helpers.

The paper's evaluation is mostly sweeps: grouping value, wax threshold,
inlet variation.  These helpers run a scheduler across a parameter range
against a shared round-robin baseline, optionally averaging over seeds
(Figs. 19/20 average five runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..cluster.simulation import run_simulation
from ..core.policies import make_scheduler
from ..config import paper_cluster_config


@dataclass(frozen=True)
class SweepResult:
    """Peak-cooling-load reductions across a swept parameter."""

    parameter_name: str
    values: np.ndarray
    reductions: Dict[str, np.ndarray]  # policy name -> fraction per value

    def best(self, policy: str) -> tuple:
        """(best parameter value, best reduction) for a policy."""
        series = self.reductions[policy]
        idx = int(np.argmax(series))
        return float(self.values[idx]), float(series[idx])


def gv_sweep(grouping_values: Sequence[float],
             policies: Sequence[str] = ("vmt-ta", "vmt-wa"), *,
             num_servers: int = 100, seed: int = 7,
             inlet_stdev_c: float = 0.0,
             wax_threshold: float = 0.98) -> SweepResult:
    """Sweep the grouping value for one or more VMT policies (Fig. 18)."""
    base = paper_cluster_config(num_servers=num_servers, seed=seed,
                                inlet_stdev_c=inlet_stdev_c,
                                wax_threshold=wax_threshold)
    baseline = run_simulation(base, make_scheduler("round-robin", base),
                              record_heatmaps=False)
    reductions: Dict[str, List[float]] = {p: [] for p in policies}
    for gv in grouping_values:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=gv, seed=seed,
                                      inlet_stdev_c=inlet_stdev_c,
                                      wax_threshold=wax_threshold)
        for policy in policies:
            result = run_simulation(config,
                                    make_scheduler(policy, config),
                                    record_heatmaps=False)
            reductions[policy].append(result.peak_reduction_vs(baseline))
    return SweepResult(
        parameter_name="grouping_value",
        values=np.asarray(list(grouping_values), dtype=np.float64),
        reductions={p: np.asarray(v) for p, v in reductions.items()},
    )


def seed_averaged_sweep(grouping_values: Sequence[float], policy: str, *,
                        num_servers: int = 100, seeds: Sequence[int] = range(5),
                        inlet_stdev_c: float = 0.0) -> SweepResult:
    """Average a GV sweep over several seeds (Figs. 19/20).

    Each seed re-draws the inlet temperature distribution (and the
    trace/scheduler noise streams); reductions are computed against that
    seed's own round-robin baseline, then averaged.
    """
    per_seed: List[np.ndarray] = []
    for seed in seeds:
        result = gv_sweep(grouping_values, (policy,),
                          num_servers=num_servers, seed=seed,
                          inlet_stdev_c=inlet_stdev_c)
        per_seed.append(result.reductions[policy])
    stacked = np.vstack(per_seed)
    return SweepResult(
        parameter_name="grouping_value",
        values=np.asarray(list(grouping_values), dtype=np.float64),
        reductions={policy: stacked.mean(axis=0)},
    )

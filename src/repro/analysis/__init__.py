"""Experiment harness: one entry point per paper figure/table.

* :mod:`~repro.analysis.experiments` -- runnable reproductions of every
  quantitative figure and table in the paper's evaluation;
* :mod:`~repro.analysis.regions` -- the Fig. 1 mixture-region analysis;
* :mod:`~repro.analysis.sweep` -- generic parameter sweep helpers;
* :mod:`~repro.analysis.reporting` -- plain-text tables and series for
  terminal output (benchmarks print these).
"""

from .reporting import format_table, format_series, format_heatmap
from .regions import MixRegion, classify_mix_region, figure1_panel
from .sweep import gv_sweep, seed_averaged_sweep
from .validation import (Check, validate_calibration,
                         validate_with_simulation)
from .experiments import (
    figure6_qos, figure7_reliability, figure8_trace, heatmap_experiment,
    figure12_hot_group_temps, figure13_cooling_loads,
    figure15_hot_group_temps, figure16_cooling_loads,
    figure17_wax_threshold, figure18_gv_sweep, figure19_inlet_variation,
    figure20_inlet_variation, table1_workloads, table2_gv_mapping,
    tco_analysis,
)

__all__ = [
    "format_table", "format_series", "format_heatmap", "MixRegion",
    "classify_mix_region", "figure1_panel", "gv_sweep",
    "seed_averaged_sweep", "Check", "validate_calibration",
    "validate_with_simulation", "figure6_qos", "figure7_reliability",
    "figure8_trace", "heatmap_experiment", "figure12_hot_group_temps",
    "figure13_cooling_loads", "figure15_hot_group_temps",
    "figure16_cooling_loads", "figure17_wax_threshold",
    "figure18_gv_sweep", "figure19_inlet_variation",
    "figure20_inlet_variation", "table1_workloads", "table2_gv_mapping",
    "tco_analysis",
]

"""Figure 1: which two-workload mixtures need VMT.

For a mixture swept by work ratio, the paper colors three regions by
what the peak-load exhaust temperature allows:

* **TTS** (green): the *blended* exhaust temperature already exceeds the
  wax melting point, so passive TTS melts wax with no help;
* **Needs VMT** (yellow): the blend is too cool, but the mixture contains
  enough hot work that concentrating it (VMT) melts wax in a subset of
  servers;
* **Neither**: even a fully packed server of the mixture's hottest
  workload stays below the melting point (or there is effectively no hot
  work to concentrate) -- deploying PCM is useless.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import ServerConfig, ThermalConfig, WaxConfig
from ..errors import ConfigurationError
from ..workloads.classification import isolated_steady_temp_c
from ..workloads.mix import FIGURE1_PAIRS, WorkloadMix
from ..workloads.workload import WORKLOADS, Workload


class MixRegion(enum.Enum):
    """The three regions of Fig. 1."""

    TTS = "VMT/TTS"          # green: TTS alone works (VMT also fine)
    NEEDS_VMT = "Needs VMT"  # yellow: only VMT can melt wax
    NEITHER = "Neither"      # grey: PCM is useless for this mix


#: Minimum share of hot work for VMT to have anything to concentrate.
MIN_HOT_SHARE = 0.05


def blended_exhaust_temp_c(mix: WorkloadMix, server: ServerConfig,
                           thermal: ThermalConfig,
                           utilization: float = 0.95) -> float:
    """Peak-load exhaust temperature of a server running the blend."""
    if not 0.0 <= utilization <= 1.0:
        raise ConfigurationError("utilization must be in [0, 1]")
    per_core = mix.mean_per_core_power_w(server.cores_per_socket)
    dynamic = per_core * server.cores * utilization
    power = min(server.idle_power_w + dynamic, server.peak_power_w)
    return thermal.inlet_temp_c + thermal.r_air_c_per_w * power


def hottest_grouped_temp_c(mix: WorkloadMix, server: ServerConfig,
                           thermal: ThermalConfig,
                           wax: WaxConfig) -> float:
    """Exhaust temperature of a server packed with the mix's hot work.

    This is what VMT can achieve by concentrating the hot jobs: the
    hottest *hot-classified* workload in the mix fully packing a server.
    Returns the inlet temperature when the mix has no hot work at all.
    """
    hot = [w for w in mix.workloads
           if isolated_steady_temp_c(w, server, thermal) > wax.melt_temp_c]
    if not hot:
        return thermal.inlet_temp_c
    return max(isolated_steady_temp_c(w, server, thermal) for w in hot)


def classify_mix_region(mix: WorkloadMix, server: ServerConfig,
                        thermal: ThermalConfig, wax: WaxConfig,
                        utilization: float = 0.95) -> MixRegion:
    """Classify one mixture point into a Fig. 1 region."""
    blended = blended_exhaust_temp_c(mix, server, thermal, utilization)
    if blended > wax.melt_temp_c:
        return MixRegion.TTS
    hot_share = sum(
        mix.share_of(w) for w in mix.workloads
        if isolated_steady_temp_c(w, server, thermal) > wax.melt_temp_c)
    if hot_share >= MIN_HOT_SHARE:
        grouped = hottest_grouped_temp_c(mix, server, thermal, wax)
        if grouped > wax.melt_temp_c:
            return MixRegion.NEEDS_VMT
    return MixRegion.NEITHER


@dataclass(frozen=True)
class Figure1Panel:
    """One mixture panel: temperatures and regions across work ratios."""

    first: Workload
    second: Workload
    work_ratios: np.ndarray
    exhaust_temps_c: np.ndarray
    regions: List[MixRegion]

    @property
    def title(self) -> str:
        """Panel title, e.g. 'DataCaching-WebSearch Mix'."""
        return f"{self.first.name}-{self.second.name} Mix"

    def region_spans(self) -> List[Tuple[MixRegion, float, float]]:
        """Contiguous (region, ratio_start, ratio_end) spans."""
        spans: List[Tuple[MixRegion, float, float]] = []
        start = 0
        for i in range(1, len(self.regions) + 1):
            if i == len(self.regions) or self.regions[i] != self.regions[start]:
                spans.append((self.regions[start],
                              float(self.work_ratios[start]),
                              float(self.work_ratios[i - 1])))
                start = i
        return spans


def figure1_panel(first_name: str, second_name: str,
                  server: ServerConfig = ServerConfig(),
                  thermal: ThermalConfig = ThermalConfig(),
                  wax: WaxConfig = WaxConfig(),
                  num_points: int = 101,
                  utilization: float = 0.95) -> Figure1Panel:
    """Compute one Fig. 1 panel for a pair of workloads.

    ``work_ratio`` is the percentage of load belonging to ``first_name``.
    """
    first, second = WORKLOADS[first_name], WORKLOADS[second_name]
    ratios = np.linspace(0.0, 100.0, num_points)
    temps = np.empty(num_points)
    regions: List[MixRegion] = []
    for i, pct in enumerate(ratios):
        mix = WorkloadMix.pair(first, second, pct / 100.0)
        temps[i] = blended_exhaust_temp_c(mix, server, thermal, utilization)
        regions.append(classify_mix_region(mix, server, thermal, wax,
                                           utilization))
    return Figure1Panel(first=first, second=second, work_ratios=ratios,
                        exhaust_temps_c=temps, regions=regions)


def all_figure1_panels(**kwargs) -> List[Figure1Panel]:
    """The six panels of Fig. 1, in the paper's order."""
    return [figure1_panel(a, b, **kwargs) for a, b in FIGURE1_PAIRS]

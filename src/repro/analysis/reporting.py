"""Plain-text rendering of tables, series, and heatmaps.

The benchmark harness prints what the paper plots; these helpers keep
that output aligned and readable in a terminal (and in the captured
bench logs recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width table with a header rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in str_rows
    ]
    return "\n".join([line, rule] + body)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  *, x_label: str = "x", y_label: str = "y",
                  max_points: int = 25) -> str:
    """Render an (x, y) series as aligned rows, downsampled if long."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise ConfigurationError("series x and y must have equal length")
    if len(xs) > max_points:
        idx = np.linspace(0, len(xs) - 1, max_points).astype(int)
        xs, ys = xs[idx], ys[idx]
    rows = [(f"{x:.2f}", f"{y:.3f}") for x, y in zip(xs, ys)]
    return f"{name}\n" + format_table([x_label, y_label], rows)


_HEAT_GLYPHS = " .:-=+*#%@"


def format_heatmap(matrix: np.ndarray, *, title: str = "",
                   vmin: Optional[float] = None,
                   vmax: Optional[float] = None,
                   max_rows: int = 20, max_cols: int = 72) -> str:
    """Render a (time x servers) matrix as an ASCII intensity map.

    Rows are servers (downsampled), columns are time (downsampled); the
    glyph ramp runs from ' ' (vmin) to '@' (vmax).  This is how the
    benchmark harness prints the paper's Figs. 9-11/14 without plotting.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ConfigurationError("heatmap expects a 2-D matrix")
    # Transpose to (servers, time) like the paper's axes.
    m = m.T
    rows = min(max_rows, m.shape[0])
    cols = min(max_cols, m.shape[1])
    r_idx = np.linspace(0, m.shape[0] - 1, rows).astype(int)
    c_idx = np.linspace(0, m.shape[1] - 1, cols).astype(int)
    m = m[np.ix_(r_idx, c_idx)]
    lo = float(np.min(m)) if vmin is None else vmin
    hi = float(np.max(m)) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    scaled = np.clip((m - lo) / span, 0.0, 1.0)
    glyph_idx = (scaled * (len(_HEAT_GLYPHS) - 1)).astype(int)
    lines = ["".join(_HEAT_GLYPHS[g] for g in row) for row in glyph_idx]
    header = f"{title} (range {lo:.1f}..{hi:.1f}; rows=servers, cols=time)"
    return "\n".join([header] + lines)

"""Registry of the paper's experiments.

Maps each reproducible artifact (figure, table, TCO section) to its
runner and metadata, so tools -- the ``repro-sim experiments`` CLI, the
benchmarks, anything downstream -- can enumerate and launch them by id
without hard-coding the experiment list in several places.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigurationError
from . import experiments as exp
from .regions import all_figure1_panels


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact."""

    id: str
    title: str
    paper_ref: str
    runner: Callable[..., Any]
    simulated: bool  # whether it runs full cluster simulations
    default_kwargs: Dict[str, Any]

    def run(self, **overrides: Any) -> Any:
        """Execute with the default parameters, overridden as given."""
        kwargs = dict(self.default_kwargs)
        kwargs.update(overrides)
        return self.runner(**kwargs)


def _registry() -> List[Experiment]:
    return [
        Experiment("fig1", "mixture regions vs work ratio", "Fig. 1",
                   lambda **kw: all_figure1_panels(**kw), False, {}),
        Experiment("fig6", "colocation QoS curves", "Fig. 6",
                   exp.figure6_qos, False, {}),
        Experiment("fig7", "reliability, RR vs rotated VMT", "Fig. 7",
                   exp.figure7_reliability, False, {"months": 36}),
        Experiment("fig8", "two-day load trace", "Fig. 8",
                   exp.figure8_trace, False, {"num_servers": 100}),
        Experiment("fig9", "round-robin heatmaps", "Fig. 9",
                   exp.heatmap_experiment, True,
                   {"policy": "round-robin", "num_servers": 100}),
        Experiment("fig10", "coolest-first heatmaps", "Fig. 10",
                   exp.heatmap_experiment, True,
                   {"policy": "coolest-first", "num_servers": 100}),
        Experiment("fig11", "VMT-TA heatmaps (GV=22)", "Fig. 11",
                   exp.heatmap_experiment, True,
                   {"policy": "vmt-ta", "grouping_value": 22.0,
                    "num_servers": 100}),
        Experiment("fig12", "VMT-TA hot-group temps vs GV", "Fig. 12",
                   exp.figure12_hot_group_temps, True,
                   {"num_servers": 1000}),
        Experiment("fig13", "VMT-TA cooling loads / reduction bars",
                   "Fig. 13", exp.figure13_cooling_loads, True,
                   {"num_servers": 1000}),
        Experiment("fig14", "VMT-WA heatmaps (GV=20)", "Fig. 14",
                   exp.heatmap_experiment, True,
                   {"policy": "vmt-wa", "grouping_value": 20.0,
                    "num_servers": 100}),
        Experiment("fig15", "VMT-WA hot-group temps vs GV", "Fig. 15",
                   exp.figure15_hot_group_temps, True,
                   {"num_servers": 1000}),
        Experiment("fig16", "VMT-WA cooling loads / reduction bars",
                   "Fig. 16", exp.figure16_cooling_loads, True,
                   {"num_servers": 1000}),
        Experiment("fig17", "wax threshold sweep", "Fig. 17",
                   exp.figure17_wax_threshold, True,
                   {"num_servers": 100}),
        Experiment("fig18", "GV sweep, TA vs WA", "Fig. 18",
                   exp.figure18_gv_sweep, True, {"num_servers": 100}),
        Experiment("fig19", "VMT-TA under inlet variation", "Fig. 19",
                   exp.figure19_inlet_variation, True,
                   {"num_servers": 100}),
        Experiment("fig20", "VMT-WA under inlet variation", "Fig. 20",
                   exp.figure20_inlet_variation, True,
                   {"num_servers": 100}),
        Experiment("table1", "workload suite + derived classes",
                   "Table I", exp.table1_workloads, False, {}),
        Experiment("table2", "GV -> VMT mapping", "Table II",
                   exp.table2_gv_mapping, True, {"num_servers": 100}),
        Experiment("tco", "datacenter TCO benefits", "Sec. V-E",
                   exp.tco_analysis, True, {"num_servers": 1000}),
    ]


#: All experiments, keyed by id.
EXPERIMENTS: Dict[str, Experiment] = {e.id: e for e in _registry()}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment; raises with the known ids on a typo."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments(simulated: Optional[bool] = None) -> List[Experiment]:
    """All experiments, optionally filtered by whether they simulate."""
    values = list(EXPERIMENTS.values())
    if simulated is None:
        return values
    return [e for e in values if e.simulated == simulated]

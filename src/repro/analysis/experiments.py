"""Reproductions of every quantitative figure and table in the paper.

Each ``figureN_*`` / ``tableN_*`` function runs the experiment and
returns a small result object; the corresponding benchmark under
``benchmarks/`` calls it and prints the paper-vs-measured rows.  Figure
numbering follows the paper:

==========  ==========================================================
Fig. 1      mixture regions (see :mod:`repro.analysis.regions`)
Fig. 6      colocation QoS curves
Fig. 7      reliability, round robin vs VMT rotation
Fig. 8      two-day trace
Figs. 9-11  heatmaps: round robin / coolest first / VMT-TA
Fig. 12     VMT-TA hot-group temperature vs GV
Fig. 13     VMT-TA cooling loads and peak reduction bars
Fig. 14     heatmap: VMT-WA
Fig. 15     VMT-WA hot-group temperature vs GV
Fig. 16     VMT-WA cooling loads and peak reduction bars
Fig. 17     VMT-WA wax-threshold sweep
Fig. 18     GV sweep, VMT-TA vs VMT-WA
Figs. 19-20 inlet-temperature variation sweeps
Table I     workload suite
Table II    GV -> VMT mapping
Sec. V-E    TCO savings
==========  ==========================================================

The paper runs headline experiments on 1,000 servers and parameter
sweeps on 100; every function here takes ``num_servers`` so tests can
shrink further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.datacenter import Datacenter, DatacenterImpact
from ..cluster.metrics import SimulationResult
from ..cluster.simulation import run_simulation
from ..config import SimulationConfig, WaxConfig, paper_cluster_config
from ..obs.telemetry import TelemetryLike, telemetry_directory
from ..perf.runner import ExperimentRunner, RunSpec
from ..core.grouping import derive_gv_vmt_mapping
from ..core.policies import make_scheduler
from ..server.reliability import (ReliabilityModel, RotationPolicy,
                                  failure_curves)
from ..tco.model import TCOModel, VMTSavings
from ..tco.wax_cost import n_paraffin_alternative_cost_usd
from ..workloads.classification import classify_suite
from ..workloads.qos import (CACHING_SCENARIOS, SEARCH_SCENARIOS,
                             CachingLatencyModel, SearchLatencyModel)
from ..workloads.trace import TwoDayTrace
from ..workloads.workload import WORKLOAD_LIST
from .sweep import SweepResult, gv_sweep, seed_averaged_sweep


# --------------------------------------------------------------------------
# Fig. 6 -- colocation QoS
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class QoSCurves:
    """The four panels of Fig. 6."""

    caching_rps: np.ndarray
    caching_mean_ms: Dict[str, np.ndarray]
    caching_p90_ms: Dict[str, np.ndarray]
    search_clients: np.ndarray
    search_mean_s: Dict[str, np.ndarray]
    search_p90_s: Dict[str, np.ndarray]


def figure6_qos(num_points: int = 15) -> QoSCurves:
    """Latency scaling for colocated caching and search (Fig. 6)."""
    caching_model = CachingLatencyModel()
    search_model = SearchLatencyModel()
    rps = np.linspace(25_000, 60_000, num_points)
    clients = np.linspace(10, 50, num_points)
    return QoSCurves(
        caching_rps=rps,
        caching_mean_ms={s.name: caching_model.mean_latency_ms(rps, s)
                         for s in CACHING_SCENARIOS},
        caching_p90_ms={s.name: caching_model.p90_latency_ms(rps, s)
                        for s in CACHING_SCENARIOS},
        search_clients=clients,
        search_mean_s={s.name: search_model.mean_latency_s(clients, s)
                       for s in SEARCH_SCENARIOS},
        search_p90_s={s.name: search_model.p90_latency_s(clients, s)
                      for s in SEARCH_SCENARIOS},
    )


# --------------------------------------------------------------------------
# Fig. 7 -- reliability
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ReliabilityCurves:
    """Cumulative failure curves (Fig. 7)."""

    months: np.ndarray
    round_robin: np.ndarray
    vmt: np.ndarray

    @property
    def final_gap_percent(self) -> float:
        """VMT-minus-RR cumulative failure gap at the horizon, in %."""
        return float((self.vmt[-1] - self.round_robin[-1]) * 100.0)


def figure7_reliability(months: int = 36) -> ReliabilityCurves:
    """RR vs rotated-VMT cumulative failure over ``months`` (Fig. 7)."""
    model = ReliabilityModel()
    policy = RotationPolicy()
    axis, rr, vmt = failure_curves(model, policy, months=months)
    return ReliabilityCurves(months=axis, round_robin=rr, vmt=vmt)


# --------------------------------------------------------------------------
# Fig. 8 -- trace
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSummary:
    """The two-day trace and its landmarks (Fig. 8)."""

    times_hours: np.ndarray
    utilization: np.ndarray
    per_workload: Dict[str, np.ndarray]
    peak_hours: Tuple[float, float]
    trough_hours: Tuple[float, float]
    peak_utilization: float
    mean_hot_fraction: float


def figure8_trace(num_servers: int = 100) -> TraceSummary:
    """Generate and summarize the evaluation trace (Fig. 8)."""
    generator = TwoDayTrace()
    trace = generator.generate(num_servers)
    util = trace.utilization()
    hours = trace.times_hours
    day1 = slice(0, len(hours) // 2)
    day2 = slice(len(hours) // 2, len(hours))
    peak1 = float(hours[day1][np.argmax(util[day1])])
    peak2 = float(hours[day2][np.argmax(util[day2])])
    trough1 = float(hours[day1][np.argmin(util[day1])])
    trough2 = float(hours[day2][np.argmin(util[day2])])
    return TraceSummary(
        times_hours=hours,
        utilization=util,
        per_workload={w.name: trace.workload_series(w)
                      for w in WORKLOAD_LIST},
        peak_hours=(peak1, peak2),
        trough_hours=(trough1, trough2),
        peak_utilization=float(util.max()),
        mean_hot_fraction=float(trace.hot_fraction().mean()),
    )


# --------------------------------------------------------------------------
# Figs. 9, 10, 11, 14 -- heatmaps
# --------------------------------------------------------------------------

def heatmap_experiment(policy: str, *, grouping_value: float = 22.0,
                       num_servers: int = 100,
                       seed: int = 7) -> SimulationResult:
    """Run one 100-server experiment with heatmaps recorded.

    ``policy`` is a :func:`~repro.core.policies.make_scheduler` name.
    Fig. 9 uses ``"round-robin"``, Fig. 10 ``"coolest-first"``, Fig. 11
    ``"vmt-ta"`` with GV=22, Fig. 14 ``"vmt-wa"`` with GV=20.
    """
    config = paper_cluster_config(num_servers=num_servers,
                                  grouping_value=grouping_value, seed=seed)
    return run_simulation(config, make_scheduler(policy, config),
                          record_heatmaps=True)


# --------------------------------------------------------------------------
# Figs. 12, 15 -- hot group temperature vs GV
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class HotGroupTemps:
    """Average hot-group temperature series per GV (Figs. 12/15)."""

    times_hours: np.ndarray
    per_gv: Dict[float, np.ndarray]
    round_robin_mean: np.ndarray
    melt_temp_c: float


def _hot_group_temps(policy: str, grouping_values: Sequence[float],
                     num_servers: int, seed: int,
                     max_workers: Optional[int] = 1) -> HotGroupTemps:
    base = paper_cluster_config(num_servers=num_servers, seed=seed)
    specs = [RunSpec(base, "round-robin", label="baseline")]
    for gv in grouping_values:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=gv, seed=seed)
        specs.append(RunSpec(config, policy,
                             label=f"{policy}[gv={gv:g}]"))
    results = ExperimentRunner(max_workers).run(specs)
    rr = results[0]
    per_gv = {gv: result.hot_group_mean_temp_c
              for gv, result in zip(grouping_values, results[1:])}
    return HotGroupTemps(times_hours=rr.times_hours, per_gv=per_gv,
                         round_robin_mean=rr.mean_temp_c,
                         melt_temp_c=base.wax.melt_temp_c)


def figure12_hot_group_temps(grouping_values: Sequence[float] = (
        21, 22, 23, 24, 25, 26), *, num_servers: int = 1000,
        seed: int = 7, max_workers: Optional[int] = 1) -> HotGroupTemps:
    """VMT-TA average hot-group temperature vs GV (Fig. 12)."""
    return _hot_group_temps("vmt-ta", grouping_values, num_servers, seed,
                            max_workers)


def figure15_hot_group_temps(grouping_values: Sequence[float] = (
        20, 21, 22, 24, 26), *, num_servers: int = 1000,
        seed: int = 7, max_workers: Optional[int] = 1) -> HotGroupTemps:
    """VMT-WA average hot-group temperature vs GV (Fig. 15)."""
    return _hot_group_temps("vmt-wa", grouping_values, num_servers, seed,
                            max_workers)


# --------------------------------------------------------------------------
# Figs. 13, 16 -- cooling loads and peak reduction bars
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CoolingLoadStudy:
    """Cooling-load series and reduction bars (Figs. 13/16)."""

    times_hours: np.ndarray
    series_kw: Dict[str, np.ndarray]        # label -> cooling load series
    reductions_percent: Dict[str, float]    # label -> peak reduction (%)
    baseline_label: str = "round-robin"


def _cooling_load_study(policy: str, grouping_values: Sequence[float],
                        num_servers: int, seed: int,
                        max_workers: Optional[int] = 1
                        ) -> CoolingLoadStudy:
    base = paper_cluster_config(num_servers=num_servers, seed=seed)
    specs = [RunSpec(base, "round-robin", label="round-robin"),
             RunSpec(base, "coolest-first", label="coolest-first")]
    for gv in grouping_values:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=gv, seed=seed)
        specs.append(RunSpec(config, policy,
                             label=f"{policy}[gv={gv:g}]"))
    results = ExperimentRunner(max_workers).run(specs)
    rr, cf = results[0], results[1]
    series = {"round-robin": rr.cooling_load_kw(),
              "coolest-first": cf.cooling_load_kw()}
    reductions = {
        "round-robin": 0.0,
        "coolest-first": cf.peak_reduction_vs(rr) * 100.0,
    }
    for gv, result in zip(grouping_values, results[2:]):
        label = f"GV={gv:g}"
        series[label] = result.cooling_load_kw()
        reductions[label] = result.peak_reduction_vs(rr) * 100.0
    return CoolingLoadStudy(times_hours=rr.times_hours, series_kw=series,
                            reductions_percent=reductions)


def figure13_cooling_loads(grouping_values: Sequence[float] = (20, 22, 24),
                           *, num_servers: int = 1000, seed: int = 7,
                           max_workers: Optional[int] = 1
                           ) -> CoolingLoadStudy:
    """VMT-TA cooling loads at three GVs (Fig. 13).

    Paper bars: RR 0.0, CF 0.0, GV20 0.0, GV22 -12.8%, GV24 -8.8%.
    """
    return _cooling_load_study("vmt-ta", grouping_values, num_servers,
                               seed, max_workers)


def figure16_cooling_loads(grouping_values: Sequence[float] = (20, 22, 24),
                           *, num_servers: int = 1000, seed: int = 7,
                           max_workers: Optional[int] = 1
                           ) -> CoolingLoadStudy:
    """VMT-WA cooling loads at three GVs (Fig. 16).

    Paper bars: RR 0.0, CF 0.0, GV20 -7.0%, GV22 -12.8%, GV24 -8.9%.
    """
    return _cooling_load_study("vmt-wa", grouping_values, num_servers,
                               seed, max_workers)


# --------------------------------------------------------------------------
# Fig. 17 -- wax threshold sweep
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ThresholdSweep:
    """Peak reduction vs VMT-WA wax threshold (Fig. 17)."""

    thresholds: np.ndarray
    reductions_percent: np.ndarray


def figure17_wax_threshold(thresholds: Sequence[float] = (
        0.85, 0.90, 0.95, 0.98, 0.99, 1.00), *, grouping_value: float = 22.0,
        num_servers: int = 100, seed: int = 7,
        max_workers: Optional[int] = 1) -> ThresholdSweep:
    """Sweep the wax threshold for VMT-WA (Fig. 17).

    Paper: 8.0 / 11.1 / 12.8 / 12.8 / 12.8 / 12.8 percent -- maximum
    reduction is achieved at thresholds of 0.95 and above.
    """
    base = paper_cluster_config(num_servers=num_servers, seed=seed)
    specs = [RunSpec(base, "round-robin", label="baseline")]
    for threshold in thresholds:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=grouping_value,
                                      seed=seed, wax_threshold=threshold)
        specs.append(RunSpec(config, "vmt-wa",
                             label=f"vmt-wa[threshold={threshold:g}]"))
    results = ExperimentRunner(max_workers).run(specs)
    rr = results[0]
    reductions = [result.peak_reduction_vs(rr) * 100.0
                  for result in results[1:]]
    return ThresholdSweep(
        thresholds=np.asarray(list(thresholds), dtype=np.float64),
        reductions_percent=np.asarray(reductions),
    )


# --------------------------------------------------------------------------
# Figs. 18-20 -- GV sweeps
# --------------------------------------------------------------------------

def figure18_gv_sweep(grouping_values: Sequence[float] = tuple(
        range(10, 31, 2)), *, num_servers: int = 100, seed: int = 7,
        max_workers: Optional[int] = 1) -> SweepResult:
    """GV sweep for VMT-TA and VMT-WA on 100 servers (Fig. 18)."""
    return gv_sweep(grouping_values, policies=("vmt-ta", "vmt-wa"),
                    num_servers=num_servers, seed=seed,
                    max_workers=max_workers)


def figure19_inlet_variation(grouping_values: Sequence[float] = tuple(
        range(16, 29, 2)), *, num_servers: int = 100,
        stdevs: Sequence[float] = (0.0, 1.0, 2.0),
        seeds: Sequence[int] = range(5),
        max_workers: Optional[int] = 1) -> Dict[float, SweepResult]:
    """VMT-TA GV sweep under inlet temperature variation (Fig. 19)."""
    return {stdev: seed_averaged_sweep(grouping_values, "vmt-ta",
                                       num_servers=num_servers, seeds=seeds,
                                       inlet_stdev_c=stdev,
                                       max_workers=max_workers)
            for stdev in stdevs}


def figure20_inlet_variation(grouping_values: Sequence[float] = tuple(
        range(16, 29, 2)), *, num_servers: int = 100,
        stdevs: Sequence[float] = (0.0, 1.0, 2.0),
        seeds: Sequence[int] = range(5),
        max_workers: Optional[int] = 1) -> Dict[float, SweepResult]:
    """VMT-WA GV sweep under inlet temperature variation (Fig. 20)."""
    return {stdev: seed_averaged_sweep(grouping_values, "vmt-wa",
                                       num_servers=num_servers, seeds=seeds,
                                       inlet_stdev_c=stdev,
                                       max_workers=max_workers)
            for stdev in stdevs}


# --------------------------------------------------------------------------
# Tables and TCO
# --------------------------------------------------------------------------

def table1_workloads() -> List[Tuple[str, float, str, str]]:
    """Table I plus the thermally *derived* class for cross-checking.

    Returns rows ``(name, per-CPU power, paper class, derived class)``;
    the derived class comes from the thermal model, not the stored label.
    """
    config = SimulationConfig()
    derived = classify_suite(WORKLOAD_LIST, config.server, config.thermal,
                             config.wax)
    return [(w.name, w.per_cpu_power_w, w.thermal_class.value,
             derived[w.name].value) for w in WORKLOAD_LIST]


#: The GV column of the paper's Table II.
TABLE2_GROUPING_VALUES: Tuple[float, ...] = (
    20.03, 20.14, 20.23, 20.83, 21.25, 21.55, 21.69, 21.84, 23.99, 30.75)


def table2_gv_mapping(grouping_values: Sequence[float] =
                      TABLE2_GROUPING_VALUES, *, num_servers: int = 100,
                      seed: int = 7) -> List[Tuple[float, float, float]]:
    """Empirical GV -> VMT mapping (Table II).

    Returns rows ``(gv, vmt_celsius, delta_vs_pmt)``.
    """
    config = paper_cluster_config(num_servers=num_servers, seed=seed)
    mapping = derive_gv_vmt_mapping(config, grouping_values)
    pmt = config.wax.melt_temp_c
    return [(gv, vmt, vmt - pmt) for gv, vmt in mapping]


@dataclass(frozen=True)
class TCOStudy:
    """Section V-E: what the measured peak reduction is worth."""

    measured_reduction: float
    impact: DatacenterImpact
    savings: VMTSavings
    conservative_reduction: float
    conservative_impact: DatacenterImpact
    conservative_savings: VMTSavings
    n_paraffin_cost_usd: float


def tco_analysis(*, peak_reduction: Optional[float] = None,
                 conservative_reduction: float = 0.06,
                 num_servers: int = 1000, seed: int = 7,
                 max_workers: Optional[int] = 1,
                 telemetry: "TelemetryLike" = None) -> TCOStudy:
    """Quantify the TCO benefits of a peak cooling load reduction.

    When ``peak_reduction`` is None the headline experiment (VMT-TA,
    GV=22 vs round robin) is run to measure it, as in Section V-E.
    """
    if peak_reduction is None:
        config = paper_cluster_config(num_servers=num_servers,
                                      grouping_value=22.0, seed=seed)
        telemetry_dir = telemetry_directory(telemetry)
        rr, ta = ExperimentRunner(max_workers).run(
            [RunSpec(config, "round-robin", label="tco-baseline",
                     telemetry_dir=telemetry_dir),
             RunSpec(config, "vmt-ta", label="tco-vmt-ta",
                     telemetry_dir=telemetry_dir)])
        peak_reduction = ta.peak_reduction_vs(rr)
    datacenter = Datacenter()
    tco = TCOModel()
    wax = WaxConfig()

    def build(reduction: float) -> Tuple[DatacenterImpact, VMTSavings]:
        impact = datacenter.impact_of(reduction)
        savings = tco.vmt_savings(datacenter.critical_power_w, reduction,
                                  wax, datacenter.num_servers)
        return impact, savings

    impact, savings = build(peak_reduction)
    c_impact, c_savings = build(conservative_reduction)
    return TCOStudy(
        measured_reduction=peak_reduction,
        impact=impact,
        savings=savings,
        conservative_reduction=conservative_reduction,
        conservative_impact=c_impact,
        conservative_savings=c_savings,
        n_paraffin_cost_usd=n_paraffin_alternative_cost_usd(
            wax, datacenter.num_servers),
    )

"""Calibration validation: check the DESIGN.md §4 invariants hold.

The reproduction's credibility rests on a handful of calibration facts
(round robin peaks just below the melt point, the GV=22 hot group clears
it, wax capacity roughly matches the peak window's energy, CPUs never
throttle).  This module checks them programmatically -- fast analytic
checks first, then an optional simulation-backed pass -- so a user who
changes a constant learns immediately which paper behaviour they broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import SimulationConfig, paper_cluster_config
from ..core.grouping import GroupSizer
from ..core.vmt_wa import mean_hot_core_power_w
from ..thermal.throttling import CPUThermalModel, worst_case_junction_temp_c
from ..workloads.classification import classify_suite
from ..workloads.mix import paper_mix
from ..workloads.workload import WORKLOAD_LIST


@dataclass(frozen=True)
class Check:
    """One validation check's outcome."""

    name: str
    passed: bool
    detail: str


def _steady_temp(config: SimulationConfig, power_w: float) -> float:
    return (config.thermal.inlet_temp_c
            + config.thermal.r_air_c_per_w * power_w)


def validate_calibration(config: Optional[SimulationConfig] = None
                         ) -> List[Check]:
    """Run the analytic calibration checks; returns one entry per check."""
    if config is None:
        config = paper_cluster_config()
    config.validate()
    checks: List[Check] = []
    pmt = config.wax.melt_temp_c
    mix = paper_mix()
    peak_u = config.trace.peak_utilization

    # 1. Round robin peaks just below the melting point.
    mixed_per_core = mix.mean_per_core_power_w(
        config.server.cores_per_socket)
    rr_power = (config.server.idle_power_w
                + peak_u * config.server.cores * mixed_per_core)
    rr_temp = _steady_temp(config, rr_power)
    checks.append(Check(
        name="round-robin peak sits just below the melt point",
        passed=pmt - 2.0 < rr_temp < pmt,
        detail=f"predicted {rr_temp:.2f} C vs melt {pmt} C"))

    # 2. The GV=22 hot group clears the melting point at peak.
    sizer = GroupSizer(config.scheduler.grouping_value, pmt,
                       config.num_servers)
    hot_cores = mix.hot_share * peak_u * config.total_cores
    per_server = min(hot_cores / max(sizer.hot_size, 1),
                     config.server.cores)
    hot_power = (config.server.idle_power_w
                 + per_server * mean_hot_core_power_w(config))
    hot_temp = _steady_temp(config, hot_power)
    checks.append(Check(
        name="hot group clears the melt point at peak",
        passed=hot_temp > pmt + 1.0,
        detail=f"predicted {hot_temp:.2f} C vs melt {pmt} C "
               f"(GV={config.scheduler.grouping_value:g}, "
               f"{sizer.hot_size} servers)"))

    # 3. The cold group can hold the peak cold demand.
    cold_cores = (1.0 - mix.hot_share) * peak_u * config.total_cores
    cold_capacity = sizer.cold_size * config.server.cores
    checks.append(Check(
        name="cold group holds the peak cold demand",
        passed=cold_cores <= cold_capacity * 1.02,
        detail=f"{cold_cores:.0f} cold cores vs "
               f"{cold_capacity} cold-group capacity"))

    # 4. Wax capacity roughly matches the peak window's absorbable energy
    #    (within a factor of two either way keeps the GV=22 behaviour).
    ha = config.thermal.ha_w_per_k
    window_s = 8.0 * 3600.0
    mean_excess_c = max(0.0, (hot_temp - pmt) * 0.55)
    window_energy = ha * mean_excess_c * window_s
    capacity = config.wax.latent_capacity_j
    ratio = capacity / window_energy if window_energy > 0 else np.inf
    checks.append(Check(
        name="latent capacity matches the peak window",
        passed=0.5 < ratio < 2.0,
        detail=f"capacity {capacity / 1e3:.0f} kJ vs window "
               f"~{window_energy / 1e3:.0f} kJ (ratio {ratio:.2f})"))

    # 5. Table I classes derive correctly from the thermal model.
    derived = classify_suite(WORKLOAD_LIST, config.server, config.thermal,
                             config.wax)
    mismatches = [w.name for w in WORKLOAD_LIST
                  if derived[w.name] != w.thermal_class]
    checks.append(Check(
        name="derived workload classes match Table I",
        passed=not mismatches,
        detail="all five match" if not mismatches
        else f"mismatched: {', '.join(mismatches)}"))

    # 6. No CPU throttling even for a fully packed server at a hot inlet.
    worst = worst_case_junction_temp_c(config.server, config.thermal)
    limit = CPUThermalModel().throttle_temp_c
    checks.append(Check(
        name="no CPU throttling at worst case",
        passed=worst < limit,
        detail=f"worst-case junction {worst:.1f} C vs limit {limit} C"))

    return checks


def validate_with_simulation(num_servers: int = 50,
                             seed: int = 7) -> List[Check]:
    """Simulation-backed validation (slower; a few seconds).

    Runs round robin and VMT-TA on a small cluster and checks the
    observed behaviours, not just the analytic predictions.
    """
    from ..cluster.simulation import run_simulation
    from ..core.policies import make_scheduler

    config = paper_cluster_config(num_servers=num_servers, seed=seed)
    rr = run_simulation(config, make_scheduler("round-robin", config),
                        record_heatmaps=False)
    ta = run_simulation(config, make_scheduler("vmt-ta", config),
                        record_heatmaps=False)
    reduction = ta.peak_reduction_vs(rr)
    return [
        Check(name="round robin melts no wax (simulated)",
              passed=rr.max_melt_fraction < 0.02,
              detail=f"max mean melt {rr.max_melt_fraction * 100:.2f}%"),
        Check(name="VMT-TA melts the hot group (simulated)",
              passed=ta.max_melt_fraction > 0.4,
              detail=f"max mean melt {ta.max_melt_fraction * 100:.1f}%"),
        Check(name="VMT-TA reduction in the paper's band (simulated)",
              passed=0.08 < reduction < 0.16,
              detail=f"{reduction * 100:.1f}% vs paper 12.8%"),
        Check(name="no throttling during the run (simulated)",
              passed=not ta.throttling_occurred(),
              detail=f"peak CPU {ta.peak_cpu_temp_c():.1f} C"),
    ]

"""Per-subsystem wall-clock profiling of the simulation tick.

A :class:`TickProfiler` is a passive accumulator: the simulation loop
(and the cluster physics) call :meth:`TickProfiler.add` with the elapsed
wall-clock time of each subsystem section when a profiler is attached,
and skip a single ``is not None`` check per section when one is not.
Profiling therefore never changes simulated behavior -- it only observes
-- and with the profiler detached the hot path pays (almost) nothing.

The timed sections, in tick order:

``placement``
    The scheduler's :meth:`~repro.core.scheduler.Scheduler.place` call,
    including demand validation and conservation checks.
``air_model``
    The first-order air-node update (:class:`~repro.thermal.server_thermal.ServerAirModel.step`).
``pcm``
    The wax enthalpy integration (:class:`~repro.thermal.pcm.PCMBank.step`).
``estimator``
    The on-server wax-state estimator update and its anchoring
    corrections.
``metrics``
    Recording the tick's series into the
    :class:`~repro.cluster.metrics.MetricsCollector`.
``checks``
    The invariant sanitizer's per-tick audits
    (:class:`~repro.checks.sanitizer.SimulationSanitizer`), present only
    when a run enables ``checks="cheap"`` or ``"full"``.

Fast-backend runs (``backend="fast"``) report kernel-stage sections
instead of (or alongside) the per-tick ones:

``kernel_plan``
    The planned kernel's placement replay: per-tick dealing and the
    allocation -> dynamic-power matmul.
``kernel_fused_step``
    The fused physics: batched power/air targets, the air + PCM
    recurrence, and the estimator update.
``kernel_metrics_write``
    Computing the recorded series as whole columns and block-writing
    them into the :class:`~repro.cluster.metrics.MetricsCollector`.
``dispatch``
    Driver overhead outside the kernels proper: eligibility checks,
    buffer setup, and state sync (planned), or the tick-loop bookkeeping
    the event heap used to do (stepped).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

#: Sections the reference per-tick loop reports ("checks" only when a
#: sanitizer is attached).
REFERENCE_SECTIONS: Tuple[str, ...] = (
    "placement", "air_model", "pcm", "estimator", "metrics", "checks")

#: Sections the fast-backend kernels report instead.
KERNEL_SECTIONS: Tuple[str, ...] = (
    "kernel_plan", "kernel_fused_step", "kernel_metrics_write",
    "dispatch")

#: Canonical section names in tick order (for stable report layout).
SECTIONS: Tuple[str, ...] = REFERENCE_SECTIONS + KERNEL_SECTIONS


@dataclass(frozen=True)
class SubsystemTiming:
    """Aggregate timing of one tick subsystem."""

    name: str
    calls: int
    total_s: float

    @property
    def mean_us(self) -> float:
        """Mean wall-clock time per call, in microseconds."""
        if self.calls == 0:
            return 0.0
        return self.total_s / self.calls * 1e6

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form (picklable, JSON-friendly)."""
        return {"calls": self.calls, "total_s": self.total_s}


class TickProfiler:
    """Accumulates per-subsystem timings across a run.

    The profiler is deliberately minimal: callers time their own
    sections with :func:`time.perf_counter` and report the elapsed
    seconds via :meth:`add`, so the instrumented code controls exactly
    what each section covers and the profiler adds no call-stack
    overhead of its own.
    """

    __slots__ = ("_totals", "_counts", "_ticks")

    #: Re-exported so instrumented code can grab the clock without an
    #: extra import (`profiler.clock()` inside the hot loop).
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._ticks = 0

    def add(self, section: str, elapsed_s: float) -> None:
        """Accumulate ``elapsed_s`` seconds against ``section``."""
        self._totals[section] = self._totals.get(section, 0.0) + elapsed_s
        self._counts[section] = self._counts.get(section, 0) + 1

    def count_tick(self) -> None:
        """Count one completed simulation tick."""
        self._ticks += 1

    def count_ticks(self, n: int) -> None:
        """Count ``n`` completed ticks at once (batched kernels)."""
        self._ticks += int(n)

    @property
    def ticks(self) -> int:
        """Completed ticks observed so far."""
        return self._ticks

    def timings(self) -> Dict[str, SubsystemTiming]:
        """Aggregate timings, canonical sections first."""
        ordered = [name for name in SECTIONS if name in self._totals]
        ordered += sorted(set(self._totals) - set(SECTIONS))
        return {name: SubsystemTiming(name=name,
                                      calls=self._counts[name],
                                      total_s=self._totals[name])
                for name in ordered}

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict timings for embedding in a result (picklable)."""
        return {name: timing.to_dict()
                for name, timing in self.timings().items()}

    def reset(self) -> None:
        """Forget everything recorded so far."""
        self._totals.clear()
        self._counts.clear()
        self._ticks = 0

"""Performance subsystem: parallel experiment engine and profiling.

The paper's evaluation is dominated by embarrassingly-parallel sweeps
(GV sweeps, seed-averaged inlet-variation sweeps, wax-threshold sweeps,
multi-cluster datacenter runs).  This package provides the machinery to
run them at hardware speed without changing a single simulated bit:

* :class:`~repro.perf.runner.RunSpec` / :class:`~repro.perf.runner.ExperimentRunner`
  -- describe independent simulation jobs as picklable values and fan
  them across a process pool or a shared-memory thread pool
  (``workers_mode="thread"``, pairing with ``backend="fast"``), or run
  them serially in-process, with deterministic, submission-ordered
  results and per-job error capture;
* :class:`~repro.perf.cache.TraceCache` / :func:`~repro.perf.cache.shared_trace`
  -- build each distinct (trace config, cluster size, seed) demand trace
  exactly once per process and share it across sweep points;
* :class:`~repro.perf.profiler.TickProfiler` -- per-subsystem wall-clock
  timing of the tick hot path (placement, air model, PCM, estimator,
  metrics -- or the kernel stages under ``backend="fast"``), surfaced on
  ``SimulationResult.profile`` and via the ``repro-sim profile`` CLI
  subcommand;
* :func:`~repro.perf.timing.interleaved_best` -- the warm-up +
  interleaved best-of-N discipline every ``BENCH_perf.json`` entry is
  measured under.

Every path through this package is bit-identical to the plain serial
simulation: same seeds, same fingerprints, for every policy.
"""

from .cache import TraceCache, clear_shared_cache, shared_trace
from .profiler import SubsystemTiming, TickProfiler
from .runner import ExperimentRunner, RunFailure, RunSpec, execute_spec
from .timing import interleaved_best, time_call

__all__ = [
    "ExperimentRunner",
    "RunFailure",
    "RunSpec",
    "SubsystemTiming",
    "TickProfiler",
    "TraceCache",
    "clear_shared_cache",
    "execute_spec",
    "interleaved_best",
    "shared_trace",
    "time_call",
]

"""The parallel experiment engine.

Sweeps and multi-cluster studies are sets of *independent* simulations:
each run owns its seed-derived RNG streams, its own cluster state, and
its own metrics.  :class:`ExperimentRunner` exploits that by fanning
:class:`RunSpec` jobs across a :class:`concurrent.futures.ProcessPoolExecutor`
while guaranteeing:

* **determinism** -- results come back in submission order and each job
  is bit-identical to running it serially (worker processes replay the
  exact same seeded construction path);
* **graceful fallback** -- ``max_workers=1``, a single job, or a host
  where process pools are unavailable (restricted environments, missing
  semaphores) all degrade to plain in-process execution;
* **error capture** -- an exception inside any job is caught *in the
  worker*, wrapped in a :class:`RunFailure` naming the failing spec,
  and either re-raised in the parent (default) or returned in-place.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from ..cluster.metrics import SimulationResult
from ..config import SimulationConfig
from ..errors import SimulationError
from .cache import shared_trace
from .profiler import TickProfiler


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation job, as a picklable value.

    The spec carries everything a worker process needs to reconstruct
    the run: the full configuration, the policy *name* (schedulers are
    built inside the worker -- live scheduler objects never cross the
    process boundary), and the trace/measurement flags.
    """

    config: SimulationConfig
    policy: str
    label: str = ""
    record_heatmaps: bool = False
    #: Time shift applied to the trace (multi-cluster stagger), hours.
    trace_shift_hours: float = 0.0
    #: When False the run regenerates its trace in-simulation instead of
    #: using the process-wide cache (bit-identical either way; useful
    #: for cache-bypass comparisons).
    use_trace_cache: bool = True
    #: Attach a TickProfiler and surface its snapshot on the result.
    profile: bool = False
    #: When set, the worker writes its telemetry bundle (JSONL trace,
    #: metric columns, run manifest) into this directory, keyed by the
    #: spec's name.  A plain string keeps the spec picklable.
    telemetry_dir: Optional[str] = None
    #: Invariant-sanitizer level ("off" | "cheap" | "full"); ``None``
    #: defers to the ``REPRO_CHECKS`` environment variable.  Checks read
    #: ground truth only, so any level yields bit-identical results.
    checks: Optional[str] = None
    #: Write a resumable snapshot every N completed ticks (requires
    #: ``checkpoint_dir``).  Each spec checkpoints into its own
    #: subdirectory keyed by the spec's sanitized name, and a re-run of
    #: the same spec resumes from its latest compatible checkpoint --
    #: this is what makes killed sweeps crash-recoverable.
    checkpoint_every: Optional[int] = None
    #: Root directory for per-spec checkpoint subdirectories.
    checkpoint_dir: Optional[str] = None
    #: Wall-clock budget for this one run, seconds.  Enforced by a
    #: cooperative :class:`Deadline` checked at every tick boundary, so
    #: it fires identically on main threads, worker threads, and worker
    #: processes; a run over budget aborts with :class:`RunTimeout` and
    #: comes back as a :class:`RunFailure` instead of hanging the sweep.
    timeout_s: Optional[float] = None
    #: Scenario provenance: when the spec was compiled from a
    #: :class:`~repro.scenarios.spec.ScenarioSpec`, its name and
    #: canonical SHA-256 land in the run-ledger manifest so any result
    #: row traces back to the exact scenario definition.
    scenario: Optional[str] = None
    scenario_sha256: Optional[str] = None
    #: Tick-engine backend ("reference" | "fast"); ``None`` defers to
    #: the ``REPRO_BACKEND`` environment variable.  The fast backend is
    #: bit-identical to the reference, so sweeps may mix backends
    #: freely without changing a single output.
    backend: Optional[str] = None

    @property
    def name(self) -> str:
        """Human-readable identity used in error messages and reports."""
        if self.label:
            return self.label
        return (f"{self.policy}[servers={self.config.num_servers},"
                f"seed={self.config.seed}]")

    def with_label(self, label: str) -> "RunSpec":
        """Copy of the spec under a different label."""
        return replace(self, label=label)


@dataclass(frozen=True)
class RunFailure:
    """A job that raised, with enough context to debug it."""

    spec: RunSpec
    error_type: str
    message: str
    traceback_text: str = field(repr=False, default="")
    #: How many times the job was attempted before giving up (2 when a
    #: pool crash triggered the bounded serial retry).
    attempts: int = 1

    def raise_(self) -> None:
        """Re-raise as a :class:`SimulationError` naming the spec."""
        raise SimulationError(
            f"run '{self.spec.name}' failed with {self.error_type}: "
            f"{self.message}")


Outcome = Union[SimulationResult, RunFailure]


class RunTimeout(SimulationError):
    """A run exceeded its :attr:`RunSpec.timeout_s` wall-clock budget."""


class Deadline:
    """A cooperative wall-clock budget, checked at tick boundaries.

    The previous implementation rode on ``SIGALRM``, which only fires on
    a process's *main* thread -- so every run executed by a thread pool
    (the serve layer, ``workers_mode="thread"`` sweeps) silently had no
    budget at all.  A deadline object instead starts a monotonic timer
    at construction and raises :class:`RunTimeout` from :meth:`check`,
    which the simulation calls at the top of every tick (and the batched
    kernels call between stages).  That makes the budget thread-agnostic
    and leaves the run in a clean, resumable state: the abort propagates
    out of the tick like any simulation error, with the engine clock at
    the aborted tick and every checkpoint written so far intact.
    """

    __slots__ = ("_budget_s", "_started_at")

    def __init__(self, budget_s: float) -> None:
        if budget_s <= 0:
            raise SimulationError("deadline budget must be positive")
        self._budget_s = float(budget_s)
        self._started_at = time.monotonic()

    @property
    def budget_s(self) -> float:
        """The wall-clock budget, seconds."""
        return self._budget_s

    def remaining_s(self) -> float:
        """Seconds left before expiry (negative once overdue)."""
        return self._budget_s - (time.monotonic() - self._started_at)

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining_s() <= 0.0

    def check(self) -> None:
        """Raise :class:`RunTimeout` once the budget is spent."""
        if self.expired():
            raise RunTimeout(
                f"exceeded {self._budget_s:g}s wall-clock budget")

    @classmethod
    def of(cls, budget_s: Optional[float]) -> Optional["Deadline"]:
        """A started deadline, or ``None`` for no budget."""
        if budget_s is None or budget_s <= 0:
            return None
        return cls(budget_s)


def _maybe_die_for_test(spec: RunSpec) -> None:
    """Crash-injection hook for the fault-tolerance tests and CI.

    When ``REPRO_KILL_RUN`` names this spec and we are inside a *worker*
    process, SIGKILL ourselves -- an un-catchable death that breaks the
    whole pool, exactly like an OOM kill.  The parent-process guard is
    what lets the bounded serial retry then succeed: the retry runs in
    the parent, where the hook stays inert.
    """
    import multiprocessing
    import os
    target = os.environ.get("REPRO_KILL_RUN")
    if (target and target == spec.name
            and multiprocessing.parent_process() is not None):
        os.kill(os.getpid(), 9)


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec to completion in the current process.

    This is the single execution path for serial *and* parallel runs --
    workers import and call exactly this function -- which is what makes
    worker-count-independence trivially true.
    """
    # Imported here (not at module top) to keep the import graph acyclic:
    # the cluster layer must not depend on the perf layer at import time.
    from ..cluster.simulation import run_simulation
    from ..core.policies import make_scheduler

    spec_checkpoint_dir = None
    if spec.checkpoint_dir is not None:
        import os
        from ..obs.telemetry import sanitize_run_id
        spec_checkpoint_dir = os.path.join(spec.checkpoint_dir,
                                           sanitize_run_id(spec.name))
    trace = None
    if spec.use_trace_cache:
        trace = shared_trace(spec.config,
                             shift_hours=spec.trace_shift_hours)
    elif spec.trace_shift_hours:
        # Cache bypass still honors the stagger: same generation path,
        # just without memoization.
        from ..sim.rng import RngStreams
        from ..workloads.trace import TwoDayTrace
        rng = RngStreams(spec.config.seed).stream("trace")
        trace = TwoDayTrace(spec.config.trace).generate(
            spec.config.num_servers, spec.config.server.cores,
            rng=rng).shifted(spec.trace_shift_hours)
    profiler = TickProfiler() if spec.profile else None
    scheduler = make_scheduler(spec.policy, spec.config)
    telemetry = None
    if spec.telemetry_dir is not None:
        from ..obs.telemetry import Telemetry
        telemetry = Telemetry(spec.telemetry_dir)
        telemetry.use_profiler(profiler)
        # Bind here (not in the simulation) so the manifest carries the
        # spec's identity: its name as run id, its policy key verbatim.
        telemetry.bind(spec.name, policy=spec.policy,
                       capacity=spec.config.trace.num_steps)
        if spec.scenario is not None:
            telemetry.annotate(scenario=spec.scenario,
                               scenario_sha256=spec.scenario_sha256)
        if profiler is None:
            profiler = telemetry.profiler
    deadline = Deadline.of(spec.timeout_s)
    if spec_checkpoint_dir is not None:
        resumable = _compatible_checkpoint(spec, spec_checkpoint_dir)
        if resumable is not None:
            from ..state import restore_simulation
            sim = restore_simulation(
                resumable, telemetry=telemetry, checks=spec.checks,
                backend=spec.backend,
                checkpoint_every=spec.checkpoint_every,
                checkpoint_dir=spec_checkpoint_dir,
                deadline=deadline)
            return sim.run()
    return run_simulation(spec.config, scheduler, trace=trace,
                          record_heatmaps=spec.record_heatmaps,
                          profiler=profiler,
                          telemetry=telemetry,
                          checks=spec.checks,
                          backend=spec.backend,
                          checkpoint_every=spec.checkpoint_every,
                          checkpoint_dir=spec_checkpoint_dir,
                          deadline=deadline)


def _compatible_checkpoint(spec: RunSpec, directory: str):
    """The spec's latest resumable snapshot, or ``None`` to run fresh.

    A checkpoint left behind by a *different* configuration (the sweep
    was edited between the crash and the retry) is ignored rather than
    resumed into the wrong experiment; an unreadable (half-written,
    corrupted) checkpoint likewise falls back to the previous one, then
    to a fresh run.
    """
    from ..errors import CheckpointError
    from ..obs.ledger import config_sha256
    from ..state import list_checkpoints, load_snapshot

    expected_sha = config_sha256(spec.config)
    for _, path in reversed(list_checkpoints(directory)):
        try:
            snapshot = load_snapshot(path)
        except CheckpointError:
            continue
        if (snapshot.policy == spec.policy
                and snapshot.config_sha256 == expected_sha):
            return snapshot
    return None


def _execute_captured(spec: RunSpec) -> Outcome:
    """Worker entry point: never lets an exception escape the job."""
    _maybe_die_for_test(spec)
    try:
        return execute_spec(spec)
    except BaseException as exc:  # noqa: BLE001 -- capture by design
        return RunFailure(spec=spec, error_type=type(exc).__name__,
                          message=str(exc),
                          traceback_text=traceback.format_exc())


#: Valid :class:`ExperimentRunner` pool flavors.
WORKERS_MODES = ("process", "thread")


class ExperimentRunner:
    """Runs batches of :class:`RunSpec` jobs, parallel when it helps.

    Parameters
    ----------
    max_workers:
        Upper bound on workers.  ``1`` forces in-process serial
        execution; ``None`` uses every available core.  The pool is
        created per :meth:`run` call and sized to
        ``min(max_workers, len(specs))``.
    workers_mode:
        ``"process"`` (default) fans jobs across a process pool;
        ``"thread"`` uses a thread pool instead.  Threads share the
        parent's read-only trace cache (no per-worker regeneration, no
        pickling) and suit the fast backend, whose whole-run numpy
        kernels release the GIL for much of their work; pure-python
        reference ticks serialize on the GIL and rarely benefit.
        Results are bit-identical across all modes.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 workers_mode: str = "process") -> None:
        if max_workers is not None and max_workers < 1:
            raise SimulationError("max_workers must be >= 1 (or None)")
        if workers_mode not in WORKERS_MODES:
            raise SimulationError(
                f"workers_mode must be one of {WORKERS_MODES}, "
                f"got {workers_mode!r}")
        self._max_workers = max_workers
        self._workers_mode = workers_mode

    @property
    def max_workers(self) -> Optional[int]:
        """The configured worker bound (``None`` = all cores)."""
        return self._max_workers

    @property
    def workers_mode(self) -> str:
        """The configured pool flavor ("process" | "thread")."""
        return self._workers_mode

    def _worker_count(self, num_jobs: int) -> int:
        import os
        limit = self._max_workers
        if limit is None:
            limit = os.cpu_count() or 1
        return max(1, min(limit, num_jobs))

    def run(self, specs: Sequence[RunSpec], *,
            raise_on_error: bool = True) -> List[Outcome]:
        """Execute every spec and return results in submission order.

        With ``raise_on_error`` (the default) the first failing job
        aborts the batch with a :class:`SimulationError` that names the
        failing spec; otherwise failures come back as :class:`RunFailure`
        entries in the result list, positionally aligned with their
        specs.
        """
        specs = list(specs)
        if not specs:
            return []
        workers = self._worker_count(len(specs))
        if workers <= 1:
            outcomes = self._run_serial(specs)
        elif self._workers_mode == "thread":
            outcomes = self._run_threads(specs, workers)
        else:
            outcomes = self._run_pool(specs, workers)
        if raise_on_error:
            for outcome in outcomes:
                if isinstance(outcome, RunFailure):
                    outcome.raise_()
        return outcomes

    def run_one(self, spec: RunSpec) -> SimulationResult:
        """Convenience: execute a single spec in-process."""
        result = self.run([spec])[0]
        assert isinstance(result, SimulationResult)
        return result

    @staticmethod
    def _run_serial(specs: Sequence[RunSpec]) -> List[Outcome]:
        return [_execute_captured(spec) for spec in specs]

    @staticmethod
    def _run_threads(specs: Sequence[RunSpec],
                     workers: int) -> List[Outcome]:
        """Thread-pool execution: shared memory, no pickling.

        Every job still goes through :func:`_execute_captured`, so
        failures come back as :class:`RunFailure` rows exactly like the
        other modes.  Jobs share the process-wide trace cache, whose
        demand matrices are read-only (``writeable=False``) zero-copy
        views -- concurrent readers are safe by construction.  Threads
        cannot die the way a SIGKILLed worker process can, so no retry
        pass is needed.
        """
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_captured, spec)
                       for spec in specs]
            return [future.result() for future in futures]

    def _run_pool(self, specs: Sequence[RunSpec],
                  workers: int) -> List[Outcome]:
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, NotImplementedError):
            # No usable process pool on this host (e.g. missing POSIX
            # semaphores in sandboxes): degrade to serial, same results.
            return self._run_serial(specs)
        outcomes: List[Optional[Outcome]] = [None] * len(specs)
        try:
            with pool:
                futures = [pool.submit(_execute_captured, spec)
                           for spec in specs]
                # Collect in submission order, not completion order, so
                # callers can zip results back onto their specs.  A
                # worker dying hard (segfault, OOM/SIGKILL) breaks the
                # pool and fails every uncollected future; capture those
                # per-future instead of aborting, then retry below.
                for index, future in enumerate(futures):
                    try:
                        outcomes[index] = future.result()
                    except BaseException:  # noqa: BLE001
                        outcomes[index] = None
        except BaseException:  # noqa: BLE001 -- submit/shutdown crashed
            pass
        missing = [i for i, outcome in enumerate(outcomes)
                   if outcome is None]
        if missing:
            # Bounded recovery: exactly one serial retry, in-process, of
            # the jobs the crashed pool never delivered.  A job that
            # fails again comes back as a RunFailure (attempts=2); the
            # batch itself always completes.
            for index in missing:
                retried = _execute_captured(specs[index])
                if isinstance(retried, RunFailure):
                    retried = replace(retried, attempts=2)
                outcomes[index] = retried
        return outcomes  # type: ignore[return-value]

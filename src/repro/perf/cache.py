"""Process-local cache of generated demand traces.

Every simulation in a sweep regenerating the same two-day trace is pure
waste: the trace depends only on (trace config, cluster size, cores per
server, seed), none of which change across a GV or wax-threshold sweep.
:class:`TraceCache` builds each distinct trace exactly once and hands
the same :class:`~repro.workloads.trace.TraceMatrix` to every run --
safe because a ``TraceMatrix`` is immutable from the simulation's point
of view (the demand matrix is frozen read-only; accessors hand out
read-only views or copies) -- which also makes sharing one cached trace
across a thread-pool sweep free.

The generation path is *identical* to what
:class:`~repro.cluster.simulation.ClusterSimulation` does when no trace
is passed: ``TwoDayTrace(trace_config).generate(num_servers, cores,
rng=RngStreams(seed).stream("trace"))``.  Named RNG streams are derived
independently per (seed, name) pair, so pre-building the trace stream
outside the simulation leaves every other stream's sequence untouched
and the results bit-identical.

Time-shifted variants (multi-cluster stagger) are derived from the
cached base trace and cached themselves, keyed by the shift.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..config import SimulationConfig, TraceConfig
from ..sim.rng import RngStreams
from ..workloads.trace import TraceMatrix, TwoDayTrace

#: Cache key: (trace config, num_servers, cores_per_server, seed, shift).
_Key = Tuple[TraceConfig, int, int, Optional[int], float]


class TraceCache:
    """Builds each distinct demand trace once and memoizes it."""

    def __init__(self) -> None:
        self._traces: Dict[_Key, TraceMatrix] = {}
        self._hits = 0
        self._misses = 0
        # Reentrant: the shifted-variant path recurses into get() for
        # its base trace.  Without the lock, a thread-pool sweep's
        # first wave would all miss the empty cache at once and each
        # generate the same trace.
        self._lock = threading.RLock()

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to generate a trace."""
        return self._misses

    def __len__(self) -> int:
        return len(self._traces)

    def get(self, trace_config: TraceConfig, num_servers: int,
            cores_per_server: int, seed: Optional[int], *,
            shift_hours: float = 0.0) -> TraceMatrix:
        """Return the trace for the key, generating it on first use.

        ``seed`` is the *simulation* seed whose ``"trace"`` RNG stream
        drives the trace noise; ``None`` reproduces the legacy
        rng-less generation (noise seeded from the trace config alone).
        """
        key: _Key = (trace_config, int(num_servers), int(cores_per_server),
                     seed if seed is None else int(seed),
                     float(shift_hours))
        cached = self._traces.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        with self._lock:
            cached = self._traces.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            self._misses += 1
            if shift_hours:
                base = self.get(trace_config, num_servers,
                                cores_per_server, seed)
                trace = base.shifted(shift_hours)
            else:
                rng = (RngStreams(seed).stream("trace")
                       if seed is not None else None)
                trace = TwoDayTrace(trace_config).generate(
                    num_servers, cores_per_server, rng=rng)
            self._traces[key] = trace
            return trace

    def get_for(self, config: SimulationConfig, *,
                shift_hours: float = 0.0) -> TraceMatrix:
        """Key the lookup off a full :class:`SimulationConfig`."""
        return self.get(config.trace, config.num_servers,
                        config.server.cores, config.seed,
                        shift_hours=shift_hours)

    def clear(self) -> None:
        """Drop every cached trace and reset the hit/miss counters."""
        with self._lock:
            self._traces.clear()
            self._hits = 0
            self._misses = 0


#: The process-wide cache used by the experiment runner.  Worker
#: processes each get their own copy (module state does not cross the
#: process boundary), which is exactly the sharing granularity we want:
#: each worker builds each distinct trace at most once.
_SHARED = TraceCache()


def shared_trace(config: SimulationConfig, *,
                 shift_hours: float = 0.0) -> TraceMatrix:
    """Fetch ``config``'s trace from the process-wide cache."""
    return _SHARED.get_for(config, shift_hours=shift_hours)


def shared_cache() -> TraceCache:
    """The process-wide :class:`TraceCache` (for inspection/tests)."""
    return _SHARED


def clear_shared_cache() -> None:
    """Empty the process-wide cache (tests, memory pressure)."""
    _SHARED.clear()

"""Repeat-timing discipline for the perf benchmarks.

Wall-clock numbers on shared or thermally-throttled hosts drift by tens
of percent over seconds, which is enough to make a cheap code path
*measure* slower than an expensive one (or report negative overheads)
when the two are timed in separate blocks.  Every entry written to
``BENCH_perf.json`` therefore follows the same protocol:

* **warm-up** -- each case runs once untimed first, so lazy imports,
  allocator growth, and cold caches are paid outside the measurement;
* **interleaving** -- repeat rounds cycle through all cases round-robin
  (A B C, A B C, ...), so slow machine phases hit every case alike
  instead of biasing whichever case owned that block of seconds;
* **best-of-N** -- the minimum over rounds is kept per case: wall-clock
  noise on an otherwise idle host is strictly additive, so the minimum
  is the least-contaminated observation of the true cost.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Tuple, TypeVar

T = TypeVar("T")


def time_call(fn: Callable[[], T]) -> Tuple[float, T]:
    """Run ``fn`` once; return ``(elapsed_seconds, fn())``."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def interleaved_best(cases: Mapping[str, Callable[[], Dict]],
                     *, repeats: int = 3, key: str,
                     warmup: bool = True) -> Dict[str, Dict]:
    """Best-of-``repeats`` per case, with rounds interleaved round-robin.

    Each case is a zero-argument callable returning a dict that carries
    its own timing under ``key`` (so callers control exactly what is
    timed -- full wall, instrumented sections only, ...).  Returns the
    minimum-``key`` dict per case name.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    names = list(cases)
    if warmup:
        for name in names:
            cases[name]()
    best: Dict[str, Dict] = {}
    for _ in range(repeats):
        for name in names:
            run = cases[name]()
            if name not in best or run[key] < best[name][key]:
                best[name] = run
    return best

#!/usr/bin/env python3
"""Multi-cluster datacenters: does VMT still help when load is staggered?

A datacenter serving several regions sees each cluster's diurnal peak at
a different wall-clock hour, which already flattens the aggregate
cooling load.  This example simulates a small multi-cluster datacenter
directly (instead of the paper's linear scaling) and asks how VMT
composes with timezone staggering.

Usage::

    python examples/datacenter_stagger.py [servers_per_cluster] [clusters]
"""

import sys

from repro import api


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    clusters = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    print(f"Simulating {clusters} clusters x {servers} servers "
          f"({clusters * 2} full runs)...\n")

    rows = []
    results = {}
    for stagger in (0.0, 8.0):
        for policy in ("round-robin", "vmt-ta"):
            result = api.datacenter(num_clusters=clusters, policy=policy,
                                    num_servers=servers, gv=22.0,
                                    stagger_hours=stagger)
            results[(stagger, policy)] = result
            rows.append((f"{stagger:.0f} h", policy,
                         f"{result.peak_cooling_load_w / 1e3:.1f} kW"))

    print(f"{'stagger':<8} {'policy':<14} {'aggregate peak':>15}")
    for stagger, policy, peak in rows:
        print(f"{stagger:<8} {policy:<14} {peak:>15}")

    aligned = results[(0.0, "round-robin")]
    for stagger in (0.0, 8.0):
        rr = results[(stagger, "round-robin")]
        vmt = results[(stagger, "vmt-ta")]
        vs_rr = vmt.peak_reduction_vs(rr) * 100
        print(f"\nstagger {stagger:.0f} h: staggering alone cuts the "
              f"aligned peak by "
              f"{rr.peak_reduction_vs(aligned) * 100:.1f}%; "
              f"per-cluster VMT then changes the aggregate peak by "
              f"{vs_rr:+.1f}%")

    print(
        "\nLesson: with aligned clusters VMT's storage attacks the shared"
        "\npeak directly.  Under heavy staggering the aggregate peak"
        "\nhappens while some clusters are off-peak -- and *their* wax is"
        "\nrefreezing, releasing heat into the shared plant at exactly the"
        "\nwrong moment.  Deploying VMT datacenter-wide therefore needs"
        "\nGV (and release timing) tuned against the aggregate load, not"
        "\neach cluster's own -- the kind of what-if this simulator makes"
        "\ncheap to run.")


if __name__ == "__main__":
    main()

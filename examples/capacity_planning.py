#!/usr/bin/env python3
"""Capacity planning: what a VMT deployment is worth (Section V-E).

Given a measured peak cooling load reduction, a datacenter operator can
either install a smaller cooling plant or add servers under the existing
one.  This example measures the reduction on a simulated cluster, scales
it to the paper's 25 MW datacenter, and prints both options' dollar
values -- including the cautionary comparison against buying low-melt
n-paraffin and relying on passive TTS instead.

Usage::

    python examples/capacity_planning.py [num_servers]
"""

import sys

from repro import Datacenter, TCOModel, WaxConfig
from repro.analysis import tco_analysis
from repro.tco import wax_deployment_cost_usd


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    print(f"Measuring the headline reduction (VMT-TA, GV=22) on "
          f"{num_servers} servers...\n")
    study = tco_analysis(num_servers=num_servers)
    datacenter = study.impact.datacenter

    print(f"Datacenter: {datacenter.critical_power_w / 1e6:.0f} MW "
          f"critical power, {datacenter.num_servers:,} servers "
          f"({datacenter.num_clusters} clusters)")
    print(f"Measured peak cooling load reduction: "
          f"{study.measured_reduction * 100:.1f}%\n")

    print("Option A -- install a smaller cooling system:")
    print(f"  peak cooling load: "
          f"{study.impact.baseline_peak_cooling_w / 1e6:.1f} MW -> "
          f"{study.impact.reduced_peak_cooling_w / 1e6:.1f} MW "
          f"(-{study.impact.cooling_reduction_w / 1e6:.1f} MW)")
    print(f"  lifetime cooling savings: "
          f"${study.savings.gross_cooling_savings_usd:,.0f}")
    print(f"  wax deployment cost:      "
          f"-${study.savings.wax_deployment_cost_usd:,.0f}")
    print(f"  net savings:              "
          f"${study.savings.net_savings_usd:,.0f}\n")

    print("Option B -- add servers under the same cooling budget:")
    print(f"  +{study.impact.additional_server_fraction * 100:.1f}% "
          f"servers: {study.impact.additional_servers:,} datacenter-wide "
          f"({study.impact.additional_servers_per_cluster} per cluster)\n")

    print(f"Conservative plan ({study.conservative_reduction * 100:.0f}% "
          "reduction, to absorb load variation):")
    print(f"  savings ${study.conservative_savings.gross_cooling_savings_usd:,.0f}"
          f" or +{study.conservative_impact.additional_servers:,} servers\n")

    print("For contrast, achieving a ~30 C melting point with passive "
          "TTS would need\nmolecular n-paraffin costing "
          f"${study.n_paraffin_cost_usd:,.0f} datacenter-wide -- versus "
          f"${wax_deployment_cost_usd(WaxConfig(), datacenter.num_servers):,.0f} "
          "for the\ncommercial wax VMT uses.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cooling electricity bill: what time-shifting heat is worth.

TTS/VMT do not reduce the heat a datacenter produces -- they move its
removal in time.  Under a time-of-use tariff that alone is worth money:
wax absorbs heat during expensive afternoon hours and releases it into
cheap overnight hours.  This example runs the two-day trace under round
robin and VMT-TA, feeds both cooling load series through a chiller plant
model (DOE-2-style part-load curve), and prices them under a two-rate
tariff -- the "less expensive off-peak power" benefit the paper's
Section V-E sketches.

Usage::

    python examples/energy_bill.py [num_servers]
"""

import sys

from repro import (ChillerPlant, ElectricityTariff, compare_cooling_bills,
                   make_scheduler, paper_cluster_config, run_simulation)


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    config = paper_cluster_config(num_servers=num_servers,
                                  grouping_value=22.0)
    print(f"Simulating {num_servers} servers under round robin and "
          "VMT-TA...\n")
    baseline = run_simulation(config,
                              make_scheduler("round-robin", config),
                              record_heatmaps=False)
    vmt = run_simulation(config, make_scheduler("vmt-ta", config),
                         record_heatmaps=False)

    # Plant sized for the baseline peak; tariff peaks noon to 10 pm.
    plant = ChillerPlant(capacity_w=baseline.peak_cooling_load_w)
    tariff = ElectricityTariff()
    dt_s = float(baseline.times_s[1] - baseline.times_s[0])
    bill = compare_cooling_bills(plant, baseline.cooling_load_w,
                                 vmt.cooling_load_w, baseline.times_hours,
                                 tariff, dt_s)

    print(f"chiller plant: {plant.capacity_w / 1e3:.0f} kW thermal, "
          f"COP {plant.cop_nominal}")
    print(f"tariff: ${tariff.peak_rate_usd_per_kwh:.2f}/kWh peak "
          f"({tariff.peak_window_h[0]:.0f}:00-"
          f"{tariff.peak_window_h[1]:.0f}:00), "
          f"${tariff.off_peak_rate_usd_per_kwh:.2f}/kWh off-peak\n")

    print(f"{'':<14} {'energy (kWh)':>14} {'2-day bill':>12}")
    print(f"{'round robin':<14} {bill.baseline_energy_kwh:>14.1f} "
          f"${bill.baseline_cost_usd:>10.2f}")
    print(f"{'VMT-TA':<14} {bill.vmt_energy_kwh:>14.1f} "
          f"${bill.vmt_cost_usd:>10.2f}")
    print(f"\nsavings over two days: ${bill.cost_savings_usd:.2f} "
          f"({bill.cost_savings_usd / max(bill.baseline_cost_usd, 1e-9) * 100:.1f}%)")
    print(f"energy conserved (heat was shifted, not removed): "
          f"{'yes' if bill.peak_energy_shifted else 'no'}")

    annual = bill.cost_savings_usd / 2 * 365
    fleet_scale = 50_000 / num_servers
    print(f"\nextrapolated to the paper's 50,000-server datacenter: "
          f"~${annual * fleet_scale:,.0f}/year on cooling energy alone, "
          f"on top of the\ncapital savings from the smaller plant "
          f"(see examples/capacity_planning.py).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Visualize cluster thermals as ASCII heatmaps (Figs. 9-11/14).

Runs a 100-server, two-day simulation under a chosen scheduler and
prints the air-temperature and wax-melted heatmaps the paper plots:
rows are servers, columns are time.  Under round robin nothing melts;
under VMT-TA the hot group (bottom rows) visibly crosses the melting
point and its wax melts; under VMT-WA the hot group extends mid-peak.

Usage::

    python examples/thermal_heatmap.py [round-robin|coolest-first|vmt-ta|vmt-wa]
"""

import sys

import numpy as np

from repro.analysis import format_heatmap, heatmap_experiment


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else "vmt-ta"
    grouping_value = 20.0 if policy == "vmt-wa" else 22.0
    print(f"Running {policy} (GV={grouping_value:g}) on 100 servers...\n")
    result = heatmap_experiment(policy, grouping_value=grouping_value)

    print(format_heatmap(result.temp_heatmap,
                         title=f"Air temperature at the wax, {policy}",
                         vmin=10.0, vmax=50.0))
    print()
    print(format_heatmap(result.melt_heatmap,
                         title=f"Wax melted, {policy}",
                         vmin=0.0, vmax=1.0))

    melted = float(np.max(result.melt_heatmap))
    print(f"\nPeak cooling load: {result.peak_cooling_load_w / 1e3:.1f} kW; "
          f"max per-server wax melted: {melted * 100:.0f}%")
    if melted < 0.05:
        print("No significant wax melts under this scheduler -- the "
              "cluster needs VMT.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Day-ahead GV planning (the paper's Section V-C workflow).

"In a scenario where the operators can predict load accurately day to
day, they can actually change the GV to the optimal value each day."
This example plays an operator: given tomorrow's load forecast, the
:class:`~repro.core.planner.GVPlanner` recommends a grouping value from
first principles (cold group just fits the peak cold demand; hot group
must clear the melting point), and we verify the recommendation against
a brute-force sweep.

Usage::

    python examples/day_ahead_planning.py [num_servers]
"""

import sys

from repro import make_scheduler, paper_cluster_config, run_simulation
from repro.core import GVPlanner, LoadForecast


def measure(gv, num_servers, baseline):
    config = paper_cluster_config(num_servers=num_servers,
                                  grouping_value=gv)
    result = run_simulation(config, make_scheduler("vmt-ta", config),
                            record_heatmaps=False)
    return result.peak_reduction_vs(baseline) * 100.0


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    config = paper_cluster_config(num_servers=num_servers)
    planner = GVPlanner(config)

    forecast = LoadForecast(peak_utilization=0.955, hot_share=0.60)
    plan = planner.plan(forecast)
    plan_ta = planner.plan(forecast, for_algorithm="vmt-ta")
    print("Tomorrow's forecast: peak utilization "
          f"{forecast.peak_utilization * 100:.1f}%, hot share "
          f"{forecast.hot_share * 100:.0f}%")
    print(f"planner (VMT-WA): GV={plan.grouping_value:.2f} "
          f"(hot group {plan.hot_fraction * 100:.1f}%, predicted "
          f"{plan.predicted_hot_group_temp_c:.1f} C)")
    print(f"planner (VMT-TA, conservative): "
          f"GV={plan_ta.grouping_value:.2f}\n")

    print(f"Verifying against a sweep on {num_servers} servers...")
    baseline = run_simulation(config,
                              make_scheduler("round-robin", config),
                              record_heatmaps=False)
    print(f"{'GV':>6} {'reduction':>10}")
    best_gv, best = None, -1e9
    for gv in (18.0, 20.0, round(plan.grouping_value, 2), 24.0, 26.0):
        reduction = measure(gv, num_servers, baseline)
        marker = "  <- planner" if gv == round(plan.grouping_value, 2) \
            else ""
        print(f"{gv:>6g} {reduction:>9.1f}%{marker}")
        if reduction > best:
            best_gv, best = gv, reduction
    print(f"\nbest swept GV: {best_gv:g} ({best:.1f}%)")
    if best_gv == round(plan.grouping_value, 2):
        print("The planner's first-principles recommendation matches the "
              "brute-force optimum\n-- no sweep required in production.")
    else:
        print("The planner landed within the optimum's plateau; VMT-WA "
              "absorbs the residual miss.")


if __name__ == "__main__":
    main()

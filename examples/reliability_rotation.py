#!/usr/bin/env python3
"""Wear leveling: is running a hot group bad for the servers? (Fig. 7)

VMT deliberately runs some servers hotter, which raises their failure
rate (a rule of thumb: +10 C doubles it).  The paper's answer is monthly
rotation: 20% of servers swap between the hot and cold groups each month
(three months hot, two cold).  This example reproduces the cumulative
failure comparison and sweeps the rotation policy to show why rotation
matters.

Usage::

    python examples/reliability_rotation.py
"""

from repro.analysis import figure7_reliability, format_table
from repro.server.reliability import (ReliabilityModel, RotationPolicy,
                                      failure_curves)


def main() -> None:
    curves = figure7_reliability(months=36)
    print("Cumulative failure probability, round robin vs rotated VMT:\n")
    rows = []
    for month in (6, 12, 24, 36):
        idx = int(month)
        rows.append((month,
                     f"{curves.round_robin[idx] * 100:.2f}%",
                     f"{curves.vmt[idx] * 100:.2f}%",
                     f"+{(curves.vmt[idx] - curves.round_robin[idx]) * 100:.2f}%"))
    print(format_table(["month", "round robin", "VMT (rotated)", "gap"],
                       rows))
    print(f"\nAfter 3 years the rotated VMT fleet's cumulative failure "
          f"rate is only\n{curves.final_gap_percent:.2f}% higher than "
          f"round robin (the paper reports 0.4-0.6%).\n")

    print("Why rotation matters -- 36-month gap vs policy:\n")
    model = ReliabilityModel()
    rows = []
    for months_hot, months_cold, label in (
            (3, 2, "paper: 3 hot / 2 cold (20%/month)"),
            (1, 1, "fast: 1 hot / 1 cold"),
            (6, 4, "slow: 6 hot / 4 cold"),
            (1, 0, "none: always hot (no rotation)")):
        policy = RotationPolicy(months_hot=months_hot,
                                months_cold=months_cold)
        # Without rotation a hot-group server sits at the hot temperature
        # for its whole life; with rotation it averages per the policy.
        __, rr, vmt = failure_curves(model, policy, months=36)
        rows.append((label, f"{(vmt[-1] - rr[-1]) * 100:.2f}%"))
    print(format_table(["rotation policy", "36-month failure gap"], rows))
    print("\nAny regular rotation keeps the time-averaged exposure (and "
          "thus the gap)\nsmall; never rotating concentrates all the "
          "extra wear on the same machines.")


if __name__ == "__main__":
    main()

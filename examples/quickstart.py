#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on a small cluster.

Runs the two-day evaluation trace on a 100-server PCM-enabled cluster
under four schedulers -- round robin, coolest first, VMT-TA, and VMT-WA
-- and reports each policy's peak cooling load and its reduction against
the round-robin baseline (the paper's Figure 13/16 bars).

Everything goes through the stable :mod:`repro.api` facade: one
``compare`` call runs all four policies against the identical cluster
and trace.

Usage::

    python examples/quickstart.py [num_servers]
"""

import sys

from repro import api


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    duel = api.compare(
        policies=("round-robin", "coolest-first", "vmt-ta", "vmt-wa"),
        num_servers=num_servers, gv=22.0)
    print(f"Simulated {num_servers} PCM-enabled servers over the "
          f"two-day trace ({duel.config.trace.num_steps} one-minute "
          f"ticks)\n")

    print(f"{'policy':<16} {'peak cooling (kW)':>18} {'reduction':>10}")
    for policy in duel.policies:
        result = duel[policy]
        if policy == "round-robin":
            reduction = "--"
        else:
            reduction = f"{duel.peak_reduction(policy) * 100:.1f}%"
        print(f"{result.scheduler_name:<16} "
              f"{result.peak_cooling_load_w / 1e3:>18.2f} "
              f"{reduction:>10}")

    print("\nThe VMT policies melt wax in a hot group of servers even "
          "though the\ncluster average temperature never reaches the "
          "35.7 C melting point,\nwhich is why the baselines show no "
          "reduction (the paper's Figs. 9-11).")


if __name__ == "__main__":
    main()

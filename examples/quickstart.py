#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on a small cluster.

Runs the two-day evaluation trace on a 100-server PCM-enabled cluster
under four schedulers -- round robin, coolest first, VMT-TA, and VMT-WA
-- and reports each policy's peak cooling load and its reduction against
the round-robin baseline (the paper's Figure 13/16 bars).

Usage::

    python examples/quickstart.py [num_servers]
"""

import sys

from repro import make_scheduler, paper_cluster_config, run_simulation


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    config = paper_cluster_config(num_servers=num_servers,
                                  grouping_value=22.0)
    print(f"Simulating {num_servers} PCM-enabled servers over the "
          f"two-day trace ({config.trace.num_steps} one-minute ticks)\n")

    baseline = run_simulation(config,
                              make_scheduler("round-robin", config),
                              record_heatmaps=False)
    print(f"{'policy':<16} {'peak cooling (kW)':>18} {'reduction':>10}")
    print(f"{baseline.scheduler_name:<16} "
          f"{baseline.peak_cooling_load_w / 1e3:>18.2f} {'--':>10}")

    for policy in ("coolest-first", "vmt-ta", "vmt-wa"):
        result = run_simulation(config, make_scheduler(policy, config),
                                record_heatmaps=False)
        reduction = result.peak_reduction_vs(baseline) * 100.0
        print(f"{result.scheduler_name:<16} "
              f"{result.peak_cooling_load_w / 1e3:>18.2f} "
              f"{reduction:>9.1f}%")

    print("\nThe VMT policies melt wax in a hot group of servers even "
          "though the\ncluster average temperature never reaches the "
          "35.7 C melting point,\nwhich is why the baselines show no "
          "reduction (the paper's Figs. 9-11).")


if __name__ == "__main__":
    main()

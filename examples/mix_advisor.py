#!/usr/bin/env python3
"""Mixture advisor: does this workload blend need VMT? (Fig. 1)

Before buying wax, an operator should know whether their workload
mixture can melt it at all -- passively (TTS), only with thermal-aware
placement (VMT), or not at all.  This example classifies every
two-workload mixture of the paper's suite across work ratios and prints
the region boundaries, reproducing the six panels of Fig. 1.

Usage::

    python examples/mix_advisor.py
"""

from repro.analysis import format_table
from repro.analysis.regions import MixRegion, all_figure1_panels


def main() -> None:
    print("Region of each two-workload mixture as the work ratio (share "
          "of the\nfirst workload) sweeps 0..100%:\n")
    for panel in all_figure1_panels():
        print(panel.title)
        rows = []
        for region, start, end in panel.region_spans():
            i0 = int(round(start))
            i1 = int(round(end))
            lo = panel.exhaust_temps_c[min(i0, i1)]
            hi = panel.exhaust_temps_c[max(i0, i1)]
            rows.append((f"{start:.0f}%..{end:.0f}%", region.value,
                         f"{min(lo, hi):.1f}..{max(lo, hi):.1f} C"))
        print(format_table(["work ratio", "region", "exhaust temp"], rows))
        print()

    needs_vmt = sum(
        r is MixRegion.NEEDS_VMT
        for panel in all_figure1_panels() for r in panel.regions)
    total = sum(len(panel.regions) for panel in all_figure1_panels())
    print(f"{needs_vmt}/{total} mixture points across the six panels "
          "cannot melt wax passively\nbut can with VMT -- the yellow "
          "band the paper's Fig. 1 highlights.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tune the Grouping Value for a cluster (the paper's Fig. 18 workflow).

An operator deploying VMT must pick the GV that maximizes peak cooling
load reduction for their workload mixture.  This example sweeps GV for
both VMT algorithms through :func:`repro.api.sweep`, prints the
reduction curves, and reports the best setting -- plus the risk picture
the paper highlights: VMT-TA collapses when the GV is set too low (wax
melts out before the peak) while VMT-WA degrades gracefully, so
operators who cannot predict load day-to-day should bias high or run
VMT-WA.

Usage::

    python examples/gv_sweep.py [num_servers]
"""

import sys

from repro import api
from repro.analysis import format_table


def main() -> None:
    num_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    grouping_values = [14, 16, 18, 20, 21, 22, 23, 24, 26, 28, 30]
    print(f"Sweeping GV over {grouping_values} on {num_servers} servers "
          f"(two full simulations per GV)...\n")
    sweep = api.sweep(grouping_values=grouping_values,
                      policies=("vmt-ta", "vmt-wa"),
                      num_servers=num_servers)

    rows = []
    for i, gv in enumerate(sweep.values):
        rows.append((f"{gv:g}",
                     f"{sweep.reductions['vmt-ta'][i] * 100:.1f}%",
                     f"{sweep.reductions['vmt-wa'][i] * 100:.1f}%"))
    print(format_table(["GV", "VMT-TA reduction", "VMT-WA reduction"],
                       rows))

    best_ta = sweep.best("vmt-ta")
    best_wa = sweep.best("vmt-wa")
    print(f"\nBest VMT-TA: GV={best_ta[0]:g} "
          f"({best_ta[1] * 100:.1f}% peak reduction)")
    print(f"Best VMT-WA: GV={best_wa[0]:g} "
          f"({best_wa[1] * 100:.1f}% peak reduction)")

    # The robustness argument (Section V-C): compare the downside of
    # missing the optimum low by two GV points.
    low = max(best_ta[0] - 2.0, min(grouping_values))
    idx = int(list(sweep.values).index(low)) if low in sweep.values else 0
    print(f"\nIf tomorrow's load runs hotter than planned (effective "
          f"GV={low:g}):")
    print(f"  VMT-TA keeps {sweep.reductions['vmt-ta'][idx] * 100:.1f}% "
          f"-- the wax melts out early and the benefit collapses;")
    print(f"  VMT-WA keeps {sweep.reductions['vmt-wa'][idx] * 100:.1f}% "
          f"-- the hot group extends itself and keeps melting fresh wax.")


if __name__ == "__main__":
    main()

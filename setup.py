"""Legacy entry point so ``python setup.py develop`` works in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
need it).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()

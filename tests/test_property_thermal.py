"""Property-based tests on thermal invariants at the cluster level.

Physics the whole reproduction leans on: energy bookkeeping closes,
state stays in bounds, and the cooling-load identity holds under random
workloads and timesteps.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import SimulationConfig, ThermalConfig, WaxConfig
from repro.core.scheduler import NUM_WORKLOADS
from repro.thermal.pcm import PCMBank

CONFIG = SimulationConfig(num_servers=6)


@given(loads=st.lists(
    st.lists(st.integers(min_value=0, max_value=32),
             min_size=6, max_size=6),
    min_size=3, max_size=12))
@settings(max_examples=25, deadline=None)
def test_property_cooling_identity_under_random_loads(loads):
    """cooling = power - absorption, exactly, every tick."""
    cluster = Cluster(CONFIG)
    for row in loads:
        allocation = np.zeros((6, NUM_WORKLOADS), dtype=np.int64)
        allocation[:, 2] = row  # video encoding, the hottest workload
        summary = cluster.step(allocation, 60.0)
        assert summary["cooling_load_w"] == pytest.approx(
            summary["power_w"] - summary["wax_absorption_w"], abs=1e-6)
        assert np.all(cluster.wax_melt_fraction >= 0.0)
        assert np.all(cluster.wax_melt_fraction <= 1.0)


@given(st.floats(min_value=20.0, max_value=50.0),
       st.integers(min_value=1, max_value=40),
       st.floats(min_value=10.0, max_value=600.0))
@settings(max_examples=30, deadline=None)
def test_property_pcm_energy_bookkeeping(air_temp, steps, dt):
    """Integrated absorbed power equals the enthalpy gained, always."""
    wax = WaxConfig()
    bank = PCMBank(wax, 2, initial_temp_c=25.0)
    total_j = 0.0
    for __ in range(steps):
        q = bank.step(air_temp, 14.0, dt)
        total_j += float(q.sum()) * dt
    # Reconstruct enthalpy change from final state.
    cp_s = wax.specific_heat_solid_j_per_kg_k
    cp_l = wax.specific_heat_liquid_j_per_kg_k
    final_t = bank.temperature_c
    final_f = bank.melt_fraction
    per_server = np.where(
        final_f <= 0.0,
        cp_s * (final_t - 25.0) * wax.mass_kg,
        np.where(final_f >= 1.0,
                 (cp_s * (wax.melt_temp_c - 25.0)
                  + wax.latent_heat_j_per_kg
                  + cp_l * (final_t - wax.melt_temp_c)) * wax.mass_kg,
                 (cp_s * (wax.melt_temp_c - 25.0)
                  + final_f * wax.latent_heat_j_per_kg) * wax.mass_kg))
    assert total_j == pytest.approx(float(per_server.sum()),
                                    rel=1e-6, abs=1e-3)


@given(st.floats(min_value=0.0, max_value=3.0),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_property_inlet_variation_preserves_mean(stdev, seed):
    """Inlet draws stay centered on the nominal inlet temperature."""
    from repro.thermal.inlet import draw_inlet_temperatures
    thermal = ThermalConfig(inlet_stdev_c=stdev)
    temps = draw_inlet_temperatures(thermal, 2000,
                                    np.random.default_rng(seed))
    assert abs(float(temps.mean()) - thermal.inlet_temp_c) < \
        max(0.3, 6 * stdev / np.sqrt(2000))


@given(st.floats(min_value=25.0, max_value=45.0))
@settings(max_examples=20, deadline=None)
def test_property_melt_then_freeze_is_reversible(air_temp):
    """A melt/freeze round trip returns all stored energy (no leaks)."""
    bank = PCMBank(WaxConfig(), 1, initial_temp_c=30.0)
    absorbed = 0.0
    for __ in range(600):
        absorbed += float(bank.step(air_temp, 14.0, 60.0)[0]) * 60.0
    for __ in range(3000):
        absorbed += float(bank.step(30.0, 14.0, 60.0)[0]) * 60.0
    # Back at 30 C fully relaxed: the books must balance to ~zero.
    assert bank.temperature_c[0] == pytest.approx(30.0, abs=0.05)
    assert abs(absorbed) < 2e3  # J; < 0.3% of the latent capacity

"""Tests for CPU throttling checks, the QoS monitor, and the GV planner."""

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSimulation, run_simulation
from repro.config import (ServerConfig, SimulationConfig, ThermalConfig,
                          TraceConfig, paper_cluster_config)
from repro.core import (GVPlanner, LoadForecast, RoundRobinScheduler,
                        VMTThermalAwareScheduler, make_scheduler)
from repro.errors import ConfigurationError
from repro.thermal.throttling import (CPUThermalModel,
                                      worst_case_junction_temp_c)
from repro.workloads.qos_monitor import QoSMonitor, QoSTargets

SERVER = ServerConfig()


class TestCPUThermalModel:
    def test_junction_above_inlet(self):
        model = CPUThermalModel()
        temp = model.junction_temp_c(20.0, 200.0, SERVER)
        assert temp > 20.0

    def test_junction_scales_with_power(self):
        model = CPUThermalModel()
        low = model.junction_temp_c(20.0, 100.0, SERVER)
        high = model.junction_temp_c(20.0, 400.0, SERVER)
        assert high > low

    def test_full_power_server_does_not_throttle_at_nominal_inlet(self):
        """The paper's CFD constraint: wax deployment must not push CPUs
        past their limits even at peak power."""
        worst = worst_case_junction_temp_c(SERVER, ThermalConfig())
        assert worst < CPUThermalModel().throttle_temp_c

    def test_throttle_mask(self):
        model = CPUThermalModel(throttle_temp_c=30.0)
        mask = model.throttled(np.array([20.0, 20.0]),
                               np.array([0.0, 400.0]), SERVER)
        assert list(mask) == [False, True]

    def test_headroom_sign(self):
        model = CPUThermalModel()
        head = model.headroom_c(20.0, 100.0, SERVER)
        assert head > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CPUThermalModel(theta_sa_c_per_w=0)
        with pytest.raises(ConfigurationError):
            CPUThermalModel().junction_temp_c(20.0, -1.0, SERVER)


class TestClusterThrottlingIntegration:
    def test_simulation_records_cpu_temps(self, small_config):
        result = run_simulation(small_config,
                                RoundRobinScheduler(small_config))
        assert result.max_cpu_temp_c is not None
        assert np.isfinite(result.max_cpu_temp_c).all()
        assert result.peak_cpu_temp_c() > small_config.thermal.inlet_temp_c

    def test_no_throttling_in_the_paper_configuration(self):
        """VMT's hot group must stay inside CPU thermal limits."""
        config = paper_cluster_config(num_servers=50, grouping_value=20.0)
        result = run_simulation(config,
                                VMTThermalAwareScheduler(config),
                                record_heatmaps=False)
        assert not result.throttling_occurred()
        assert result.peak_cpu_temp_c() < 80.0


class TestQoSMonitor:
    def _run_with_monitor(self, policy, num_servers=30):
        config = SimulationConfig(num_servers=num_servers,
                                  trace=TraceConfig(duration_hours=8.0),
                                  seed=11)
        sim = ClusterSimulation(config, make_scheduler(policy, config),
                                record_heatmaps=False)
        monitor = QoSMonitor(config)
        sim.add_observer(monitor.observe)
        sim.run()
        return monitor

    def test_monitor_collects_series(self):
        monitor = self._run_with_monitor("round-robin")
        assert len(monitor.times_s) == 480
        assert monitor.mean_caching_latency_ms > 0
        assert monitor.mean_search_latency_s > 0

    def test_latencies_above_uncontended_floor(self):
        monitor = self._run_with_monitor("round-robin")
        uncontended_caching = monitor.caching_base_ms / \
            (1.0 - monitor.caching_utilization)
        assert monitor.mean_caching_latency_ms >= uncontended_caching

    def test_vmt_keeps_violations_comparable_to_round_robin(self):
        """The paper's QoS argument: VMT's colocations are acceptable."""
        rr = self._run_with_monitor("round-robin")
        ta = self._run_with_monitor("vmt-ta")
        assert ta.violation_fraction <= rr.violation_fraction + 0.05
        assert ta.violation_fraction < 0.2

    def test_summary_keys(self):
        monitor = self._run_with_monitor("vmt-wa", num_servers=20)
        summary = monitor.summary()
        assert set(summary) == {"mean_caching_ms", "mean_search_s",
                                "violation_fraction"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QoSMonitor(SimulationConfig(num_servers=5),
                       caching_utilization=1.5)


class TestGVPlanner:
    PLANNER = GVPlanner(paper_cluster_config(100))

    def test_paper_forecast_recovers_the_empirical_optimum(self):
        """The planner's rule lands on GV~22 for the paper's mixture."""
        plan = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.955, hot_share=0.60))
        assert plan.feasible
        assert 21.5 < plan.grouping_value < 22.5
        assert plan.predicted_hot_group_temp_c > 35.7 + 1.0

    def test_ta_plan_is_biased_high(self):
        forecast = LoadForecast(peak_utilization=0.955, hot_share=0.60)
        wa = self.PLANNER.plan(forecast, for_algorithm="vmt-wa")
        ta = self.PLANNER.plan(forecast, for_algorithm="vmt-ta")
        assert ta.grouping_value > wa.grouping_value

    def test_slightly_milder_day_gets_bigger_hot_group(self):
        """Lower peak -> cold group can shrink -> GV rises (while the
        group still clears the melt point)."""
        hot_day = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.95, hot_share=0.6))
        mild_day = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.85, hot_share=0.6))
        assert mild_day.feasible and mild_day.note == ""
        assert mild_day.grouping_value > hot_day.grouping_value

    def test_much_milder_day_becomes_melt_constrained(self):
        """A 70% peak leaves the capacity-optimal group too cool; the
        planner shrinks it until it melts again."""
        plan = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.70, hot_share=0.6))
        assert plan.feasible
        assert "shrunk" in plan.note
        assert plan.predicted_hot_group_temp_c >= 35.7 + 1.0

    def test_cool_forecast_shrinks_the_group(self):
        plan = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.5, hot_share=0.2))
        assert plan.feasible
        assert "shrunk" in plan.note

    def test_all_cold_mixture_is_infeasible(self):
        plan = self.PLANNER.plan(
            LoadForecast(peak_utilization=0.9, hot_share=0.0))
        assert not plan.feasible
        assert "Neither" in plan.note

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadForecast(peak_utilization=0.0, hot_share=0.5)
        with pytest.raises(ConfigurationError):
            LoadForecast(peak_utilization=0.9, hot_share=1.5)
        with pytest.raises(ConfigurationError):
            self.PLANNER.plan(
                LoadForecast(peak_utilization=0.9, hot_share=0.5),
                for_algorithm="hottest-first")

    def test_planned_gv_beats_a_bad_fixed_gv_in_simulation(self):
        """End to end: following the planner beats guessing low."""
        config = paper_cluster_config(num_servers=50)
        rr = run_simulation(config, make_scheduler("round-robin", config),
                            record_heatmaps=False)
        plan = GVPlanner(config).plan(
            LoadForecast(peak_utilization=0.955, hot_share=0.60))
        planned_config = paper_cluster_config(
            num_servers=50, grouping_value=plan.grouping_value)
        guessed_config = paper_cluster_config(num_servers=50,
                                              grouping_value=19.0)
        planned = run_simulation(
            planned_config, make_scheduler("vmt-ta", planned_config),
            record_heatmaps=False)
        guessed = run_simulation(
            guessed_config, make_scheduler("vmt-ta", guessed_config),
            record_heatmaps=False)
        assert planned.peak_reduction_vs(rr) > \
            guessed.peak_reduction_vs(rr) + 0.05

"""Unit tests for Eq. 1/2 group sizing and the GroupSizer."""

import numpy as np
import pytest

from repro.core.grouping import (GroupSizer, cold_group_size,
                                 hot_group_size)
from repro.errors import ConfigurationError


class TestEquation1:
    def test_paper_example_gv22(self):
        """GV=22, PMT=35.7, 1000 servers -> 616-server hot group."""
        assert hot_group_size(22.0, 35.7, 1000) == 616

    def test_gv20_and_gv24(self):
        assert hot_group_size(20.0, 35.7, 1000) == 560
        assert hot_group_size(24.0, 35.7, 1000) == 672

    def test_scales_linearly_with_cluster_size(self):
        assert hot_group_size(22.0, 35.7, 100) == 62

    def test_clipped_to_cluster(self):
        assert hot_group_size(50.0, 35.7, 100) == 100

    def test_equation2_complement(self):
        assert cold_group_size(22.0, 35.7, 1000) == 384

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            hot_group_size(0.0, 35.7, 100)
        with pytest.raises(ConfigurationError):
            hot_group_size(22.0, 0.0, 100)
        with pytest.raises(ConfigurationError):
            hot_group_size(22.0, 35.7, 0)

    def test_monotonic_in_gv(self):
        sizes = [hot_group_size(gv, 35.7, 1000)
                 for gv in np.arange(10, 31, 0.5)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_exact_half_rounds_up(self):
        """Exact .5 fractions round half-up, not to the nearest even.

        GV/PMT = 0.5 is exact in binary, so an odd cluster size yields
        an exact ``x.5`` fractional hot group.  Banker's rounding
        (``round()``) would map 2.5 -> 2 and 0.5 -> 0; the convention
        here is ``floor(x + 0.5)``.
        """
        assert hot_group_size(1.0, 2.0, 5) == 3    # 2.5 -> 3, round() gives 2
        assert hot_group_size(1.0, 2.0, 1) == 1    # 0.5 -> 1, round() gives 0
        assert hot_group_size(1.0, 2.0, 9) == 5    # 4.5 -> 5, round() gives 4
        assert hot_group_size(1.0, 2.0, 3) == 2    # 1.5 -> 2, same either way

    def test_half_boundary_keeps_monotonicity(self):
        """Half-up keeps adjacent odd/even sizes monotone at the boundary."""
        sizes = [hot_group_size(1.0, 2.0, n) for n in range(1, 12)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))


class TestGroupSizer:
    def test_sizes_and_fraction(self):
        sizer = GroupSizer(22.0, 35.7, 1000)
        assert sizer.hot_size == 616
        assert sizer.cold_size == 384
        assert sizer.hot_fraction == pytest.approx(0.616)

    def test_mask_low_ids_are_hot(self):
        sizer = GroupSizer(22.0, 35.7, 10)
        mask = sizer.hot_mask()
        assert mask.sum() == sizer.hot_size
        assert mask[:sizer.hot_size].all()
        assert not mask[sizer.hot_size:].any()

"""Unit and property tests for the job-dealing primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (NUM_WORKLOADS, deal_types, pack_quotas,
                                  waterfill_quotas)
from repro.errors import CapacityError, SchedulingError


class TestWaterfill:
    def test_even_split_no_caps_binding(self):
        quotas = waterfill_quotas(30, np.full(10, 32))
        assert quotas.sum() == 30
        assert quotas.max() - quotas.min() <= 1

    def test_caps_bind(self):
        quotas = waterfill_quotas(10, np.array([2, 2, 32]))
        assert quotas.sum() == 10
        assert quotas[0] == 2 and quotas[1] == 2 and quotas[2] == 6

    def test_remainder_rotates_with_offset(self):
        a = waterfill_quotas(1, np.full(4, 32), tie_offset=0)
        b = waterfill_quotas(1, np.full(4, 32), tie_offset=1)
        assert np.argmax(a) != np.argmax(b)

    def test_zero_total(self):
        assert waterfill_quotas(0, np.full(3, 32)).sum() == 0

    def test_exact_capacity(self):
        quotas = waterfill_quotas(96, np.full(3, 32))
        assert list(quotas) == [32, 32, 32]

    def test_over_capacity_raises(self):
        with pytest.raises(CapacityError):
            waterfill_quotas(97, np.full(3, 32))

    def test_negative_inputs_raise(self):
        with pytest.raises(SchedulingError):
            waterfill_quotas(-1, np.full(3, 32))
        with pytest.raises(SchedulingError):
            waterfill_quotas(1, np.array([-1, 2]))

    @given(st.integers(min_value=0, max_value=320),
           st.lists(st.integers(min_value=0, max_value=32), min_size=1,
                    max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_property_conservation_and_fairness(self, total, caps):
        caps = np.asarray(caps)
        total = min(total, int(caps.sum()))
        quotas = waterfill_quotas(total, caps)
        assert quotas.sum() == total
        assert np.all(quotas <= caps)
        assert np.all(quotas >= 0)
        # Evenness: any server below its cap is within 1 of the minimum
        # unconstrained allocation.
        below_cap = quotas < caps
        if below_cap.any():
            assert quotas[below_cap].max() - quotas[below_cap].min() <= 1

    @staticmethod
    def _iterative_waterfill(total, caps, tie_offset):
        """The original round-by-round algorithm, as a reference."""
        quotas = np.zeros_like(caps)
        remaining = total
        while remaining > 0:
            active = np.flatnonzero(quotas < caps)
            share = remaining // len(active)
            if share == 0:
                rotated = np.roll(active, -(tie_offset % len(active)))
                quotas[rotated[:remaining]] += 1
                break
            add = np.minimum(caps[active] - quotas[active], share)
            quotas[active] += add
            remaining -= int(add.sum())
        return quotas

    @given(st.integers(min_value=0, max_value=400),
           st.lists(st.integers(min_value=0, max_value=32), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=25))
    @settings(max_examples=200, deadline=None)
    def test_property_matches_iterative_reference(self, total, caps,
                                                  tie_offset):
        # The closed-form water level must reproduce the iterative
        # dealing *exactly*, remainder rotation included.
        caps = np.asarray(caps, dtype=np.int64)
        total = min(total, int(caps.sum()))
        got = waterfill_quotas(total, caps, tie_offset)
        want = self._iterative_waterfill(total, caps, tie_offset)
        assert np.array_equal(got, want)
        assert got.dtype == want.dtype


class TestPack:
    def test_fills_in_order(self):
        quotas = pack_quotas(40, np.full(3, 32), np.array([2, 0, 1]))
        assert quotas[2] == 32 and quotas[0] == 8 and quotas[1] == 0

    def test_zero_total(self):
        assert pack_quotas(0, np.full(3, 32), np.arange(3)).sum() == 0

    def test_over_capacity_raises(self):
        with pytest.raises(CapacityError):
            pack_quotas(100, np.full(3, 32), np.arange(3))

    @given(st.integers(min_value=0, max_value=96))
    @settings(max_examples=40, deadline=None)
    def test_property_prefix_packing(self, total):
        order = np.array([1, 2, 0])
        quotas = pack_quotas(total, np.full(3, 32), order)
        assert quotas.sum() == total
        # In pack order, a server is only partially filled if every
        # earlier server is full.
        ordered = quotas[order]
        seen_partial = False
        for q in ordered:
            if seen_partial:
                assert q == 0
            if q < 32:
                seen_partial = True


class TestDealTypes:
    def test_conserves_per_workload_counts(self):
        demand = np.array([5, 3, 0, 2, 1])
        quotas = np.array([4, 4, 3])
        allocation = deal_types(demand, quotas)
        assert np.array_equal(allocation.sum(axis=0), demand)
        assert np.array_equal(allocation.sum(axis=1), quotas)

    def test_mismatched_totals_raise(self):
        with pytest.raises(SchedulingError):
            deal_types(np.array([1, 0, 0, 0, 0]), np.array([2]))

    def test_zero_demand(self):
        allocation = deal_types(np.zeros(NUM_WORKLOADS, dtype=int),
                                np.zeros(3, dtype=int))
        assert allocation.sum() == 0

    def test_round_robin_interleaving_spreads_types(self):
        # 4 jobs of each of two types over 4 servers of quota 2: without
        # shuffling, dealing round-robin gives each server one of each.
        demand = np.array([4, 4, 0, 0, 0])
        quotas = np.array([2, 2, 2, 2])
        allocation = deal_types(demand, quotas, rng=None)
        assert np.all(allocation[:, 0] == 1)
        assert np.all(allocation[:, 1] == 1)

    def test_shuffled_dealing_creates_mix_variance(self, rng):
        demand = np.array([64, 64, 0, 0, 0])
        quotas = np.full(4, 32)
        allocation = deal_types(demand, quotas, rng=rng)
        assert np.array_equal(allocation.sum(axis=0), demand)
        # With shuffling, at least one server deviates from the even 16/16.
        assert np.any(allocation[:, 0] != 16)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=5,
                    max_size=5),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_property_conservation(self, demand, num_servers):
        demand = np.asarray(demand)
        total = int(demand.sum())
        base, extra = divmod(total, num_servers)
        quotas = np.full(num_servers, base)
        quotas[:extra] += 1
        allocation = deal_types(demand, quotas,
                                rng=np.random.default_rng(0))
        assert np.array_equal(allocation.sum(axis=0), demand)
        assert np.array_equal(allocation.sum(axis=1), quotas)
        assert np.all(allocation >= 0)

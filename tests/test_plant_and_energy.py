"""Unit tests for the chiller plant and electricity tariff models."""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tco.energy import (CarbonIntensityCurve, ElectricityTariff,
                              PlantOverloadWarning, compare_cooling_bills,
                              cooling_energy_account,
                              cooling_energy_cost_usd)
from repro.thermal.plant import MIN_COP_FRACTION, ChillerPlant

PLANT = ChillerPlant(capacity_w=100e3)


class TestChillerPlant:
    def test_full_load_draw_matches_nominal_cop(self):
        assert PLANT.electrical_power_w(100e3) == pytest.approx(
            100e3 / 4.5)

    def test_idle_draw_is_constant_term(self):
        c0 = PLANT.part_load_coefficients[0]
        assert PLANT.electrical_power_w(0.0) == pytest.approx(
            c0 * PLANT.rated_electrical_w)

    def test_effective_cop_peaks_below_full_load(self):
        loads = np.linspace(1e3, 100e3, 50)
        cop = PLANT.effective_cop(loads)
        best = loads[int(np.argmax(cop))]
        assert 40e3 < best < 90e3
        assert cop.max() >= 4.5

    def test_part_load_ratio_clipped(self):
        assert PLANT.part_load_ratio(np.array([150e3]))[0] == 1.0

    def test_overloaded(self):
        assert PLANT.overloaded([101e3])
        assert not PLANT.overloaded([99e3])

    def test_energy_kwh(self):
        # One hour at full load: rated electrical power for 1 h.
        energy = PLANT.energy_kwh(np.full(60, 100e3), 60.0)
        assert energy == pytest.approx(100e3 / 4.5 / 1e3, rel=1e-6)

    def test_resized(self):
        smaller = PLANT.resized(0.128)
        assert smaller.capacity_w == pytest.approx(87.2e3)
        assert smaller.cop_nominal == PLANT.cop_nominal

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=0)
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=1.0, cop_nominal=0)
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=1.0,
                         part_load_coefficients=(0.5, 0.5, 0.5))
        with pytest.raises(ConfigurationError):
            PLANT.part_load_ratio(np.array([-1.0]))
        with pytest.raises(ConfigurationError):
            PLANT.energy_kwh([1.0], 0.0)
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=1.0, cop_derate_per_c=-0.1)

    def test_overloaded_tick_fraction(self):
        load = np.array([50e3, 120e3, 99e3, 101e3])
        assert PLANT.overloaded_tick_fraction(load) == pytest.approx(0.5)
        assert PLANT.overloaded_tick_fraction([]) == 0.0
        assert PLANT.overloaded_tick_fraction(np.full(10, 50e3)) == 0.0

    def test_ambient_derate_reduces_cop(self):
        derated = ChillerPlant(capacity_w=100e3, cop_derate_per_c=0.02)
        cool = derated.cop_at_ambient(derated.reference_ambient_c)
        hot = derated.cop_at_ambient(derated.reference_ambient_c + 10.0)
        assert cool == pytest.approx(derated.cop_nominal)
        assert hot == pytest.approx(derated.cop_nominal * 0.8)
        # Power draw at the same load rises in the heat.
        assert (derated.electrical_power_w(80e3, ambient_c=40.0)
                > derated.electrical_power_w(80e3, ambient_c=20.0))

    def test_ambient_derate_floored(self):
        derated = ChillerPlant(capacity_w=100e3, cop_derate_per_c=0.02)
        cop = derated.cop_at_ambient(1e6)
        assert cop == pytest.approx(derated.cop_nominal * MIN_COP_FRACTION)

    def test_no_derate_is_bit_identical_to_nominal(self):
        load = np.linspace(0.0, 100e3, 17)
        base = PLANT.electrical_power_w(load)
        assert np.array_equal(PLANT.electrical_power_w(load, ambient_c=45.0),
                              base)
        derated = ChillerPlant(capacity_w=100e3, cop_derate_per_c=0.02)
        assert np.array_equal(derated.electrical_power_w(load, ambient_c=None),
                              base)

    def test_resized_keeps_derate(self):
        derated = ChillerPlant(capacity_w=100e3, cop_derate_per_c=0.02,
                               reference_ambient_c=20.0)
        smaller = derated.resized(0.25)
        assert smaller.cop_derate_per_c == derated.cop_derate_per_c
        assert smaller.reference_ambient_c == derated.reference_ambient_c


class TestElectricityTariff:
    def test_peak_window_classification(self):
        tariff = ElectricityTariff(peak_window_h=(12.0, 22.0))
        times = np.array([0.0, 11.9, 12.0, 21.9, 22.0, 36.0])
        assert list(tariff.is_peak(times)) == [False, False, True, True,
                                               False, True]

    def test_rates(self):
        tariff = ElectricityTariff()
        rates = tariff.rate_usd_per_kwh(np.array([3.0, 15.0]))
        assert rates[0] == tariff.off_peak_rate_usd_per_kwh
        assert rates[1] == tariff.peak_rate_usd_per_kwh

    def test_wrapped_window_spans_midnight(self):
        # A window with start > end wraps through midnight: peak covers
        # [22, 24) plus [0, 8).
        tariff = ElectricityTariff(peak_window_h=(22.0, 8.0))
        assert tariff.wraps_midnight
        times = np.array([21.9, 22.0, 23.5, 0.0, 7.9, 8.0, 12.0])
        assert list(tariff.is_peak(times)) == [False, True, True, True,
                                               True, False, False]

    def test_wrapped_and_unwrapped_windows_partition_the_day(self):
        # (8, 22) and (22, 8) are complements: every hour is peak in
        # exactly one of the two orientations.
        day = ElectricityTariff(peak_window_h=(8.0, 22.0))
        night = ElectricityTariff(peak_window_h=(22.0, 8.0))
        hours = np.linspace(0.0, 48.0, 481, endpoint=False)
        assert np.array_equal(day.is_peak(hours), ~night.is_peak(hours))

    def test_24_boundary(self):
        # 24.0 as a window edge is the same instant as 0.0.
        tariff = ElectricityTariff(peak_window_h=(12.0, 24.0))
        assert not tariff.wraps_midnight
        assert list(tariff.is_peak(np.array([23.9, 24.0, 0.0, 12.0]))) == [
            True, False, False, True]
        wrapped = ElectricityTariff(peak_window_h=(24.0, 12.0))
        assert wrapped.wraps_midnight
        assert list(wrapped.is_peak(np.array([0.0, 11.9, 12.0, 23.9]))) == [
            True, True, False, False]

    def test_rejects_bad_window(self):
        # Zero-width windows are ambiguous (always-peak vs never-peak).
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_window_h=(12.0, 12.0))
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_window_h=(-1.0, 12.0))
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_window_h=(12.0, 25.0))
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_rate_usd_per_kwh=-1.0)

    def test_cost_accounts_for_time_of_use(self):
        tariff = ElectricityTariff(peak_rate_usd_per_kwh=0.2,
                                   off_peak_rate_usd_per_kwh=0.1,
                                   peak_window_h=(12.0, 24.0))
        # Same energy, all-peak vs all-off-peak: 2x the cost.
        load = np.full(60, 50e3)
        hours_peak = np.linspace(12.0, 13.0, 60)
        hours_off = np.linspace(0.0, 1.0, 60)
        cost_peak = cooling_energy_cost_usd(PLANT, load, hours_peak,
                                            tariff, 60.0)
        cost_off = cooling_energy_cost_usd(PLANT, load, hours_off,
                                           tariff, 60.0)
        assert cost_peak == pytest.approx(2 * cost_off)

    def test_cost_rejects_misaligned_series(self):
        with pytest.raises(ConfigurationError):
            cooling_energy_cost_usd(PLANT, [1.0, 2.0], [0.0],
                                    ElectricityTariff(), 60.0)


class TestEnergyBill:
    def test_time_shifting_saves_money_at_equal_energy(self):
        tariff = ElectricityTariff(peak_window_h=(12.0, 24.0))
        hours = np.linspace(0.0, 24.0, 240, endpoint=False)
        # Baseline burns during the expensive half; VMT shifts half of
        # that energy into the cheap half.
        baseline = np.where(hours >= 12.0, 80e3, 20e3)
        vmt = np.where(hours >= 12.0, 50e3, 50e3)
        bill = compare_cooling_bills(PLANT, baseline, vmt, hours, tariff,
                                     360.0)
        assert bill.cost_savings_usd > 0
        assert bill.peak_energy_shifted

    def test_detects_energy_inflation(self):
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        baseline = np.full(24, 50e3)
        inflated = np.full(24, 90e3)
        bill = compare_cooling_bills(PLANT, baseline, inflated, hours,
                                     tariff, 3600.0)
        assert not bill.peak_energy_shifted

    def test_resized_plant_bill_flags_saturation(self):
        # A plant resized below the baseline peak saturates: the bill
        # records which fraction of ticks exceeded capacity and warns.
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        baseline = np.where(hours >= 12.0, 90e3, 40e3)
        vmt = np.full(24, 60e3)
        small = PLANT.resized(0.4)  # 60 kW capacity
        with pytest.warns(PlantOverloadWarning):
            bill = compare_cooling_bills(small, baseline, vmt, hours,
                                         tariff, 3600.0)
        assert bill.saturated
        assert bill.baseline_overloaded_tick_fraction == pytest.approx(0.5)
        assert bill.vmt_overloaded_tick_fraction == 0.0
        assert bill.overloaded_tick_fraction == pytest.approx(0.5)

    def test_healthy_bill_is_not_saturated(self):
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlantOverloadWarning)
            bill = compare_cooling_bills(PLANT, np.full(24, 80e3),
                                         np.full(24, 60e3), hours,
                                         tariff, 3600.0)
        assert not bill.saturated
        assert bill.overloaded_tick_fraction == 0.0


class TestCoolingEnergyAccount:
    def test_account_matches_cost_helper(self):
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        load = np.full(24, 50e3)
        account = cooling_energy_account(PLANT, load, hours, tariff, 3600.0)
        assert account.cost_usd == pytest.approx(
            cooling_energy_cost_usd(PLANT, load, hours, tariff, 3600.0))
        assert account.energy_kwh == pytest.approx(
            PLANT.energy_kwh(load, 3600.0))
        assert account.overloaded_tick_fraction == 0.0

    def test_flat_carbon_curve(self):
        curve = CarbonIntensityCurve(base_g_per_kwh=500.0)
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        # 1 kW for 24 h at 500 g/kWh -> 12 kg.
        assert curve.carbon_kg(np.full(24, 1.0), hours,
                               3600.0) == pytest.approx(12.0)

    def test_diurnal_carbon_curve_peaks_at_peak_hour(self):
        curve = CarbonIntensityCurve(base_g_per_kwh=400.0,
                                     amplitude_g_per_kwh=100.0,
                                     peak_hour=19.0)
        intensity = curve.intensity_g_per_kwh(np.linspace(0, 24, 241))
        assert intensity.max() == pytest.approx(500.0)
        assert intensity.min() == pytest.approx(300.0)
        peak_at = np.linspace(0, 24, 241)[int(np.argmax(intensity))]
        assert peak_at == pytest.approx(19.0, abs=0.1)

    def test_overload_warning_from_cost_path(self):
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        hot = np.full(24, 150e3)
        with pytest.warns(PlantOverloadWarning):
            account = cooling_energy_account(PLANT, hot, hours, tariff,
                                             3600.0)
        assert account.overloaded_tick_fraction == 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("error", PlantOverloadWarning)
            cooling_energy_account(PLANT, hot, hours, tariff, 3600.0,
                                   warn_on_overload=False)

    def test_rejects_bad_carbon_curve(self):
        with pytest.raises(ConfigurationError):
            CarbonIntensityCurve(base_g_per_kwh=-1.0)
        with pytest.raises(ConfigurationError):
            CarbonIntensityCurve(amplitude_g_per_kwh=500.0,
                                 base_g_per_kwh=400.0)

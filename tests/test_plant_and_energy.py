"""Unit tests for the chiller plant and electricity tariff models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tco.energy import (ElectricityTariff, compare_cooling_bills,
                              cooling_energy_cost_usd)
from repro.thermal.plant import ChillerPlant

PLANT = ChillerPlant(capacity_w=100e3)


class TestChillerPlant:
    def test_full_load_draw_matches_nominal_cop(self):
        assert PLANT.electrical_power_w(100e3) == pytest.approx(
            100e3 / 4.5)

    def test_idle_draw_is_constant_term(self):
        c0 = PLANT.part_load_coefficients[0]
        assert PLANT.electrical_power_w(0.0) == pytest.approx(
            c0 * PLANT.rated_electrical_w)

    def test_effective_cop_peaks_below_full_load(self):
        loads = np.linspace(1e3, 100e3, 50)
        cop = PLANT.effective_cop(loads)
        best = loads[int(np.argmax(cop))]
        assert 40e3 < best < 90e3
        assert cop.max() >= 4.5

    def test_part_load_ratio_clipped(self):
        assert PLANT.part_load_ratio(np.array([150e3]))[0] == 1.0

    def test_overloaded(self):
        assert PLANT.overloaded([101e3])
        assert not PLANT.overloaded([99e3])

    def test_energy_kwh(self):
        # One hour at full load: rated electrical power for 1 h.
        energy = PLANT.energy_kwh(np.full(60, 100e3), 60.0)
        assert energy == pytest.approx(100e3 / 4.5 / 1e3, rel=1e-6)

    def test_resized(self):
        smaller = PLANT.resized(0.128)
        assert smaller.capacity_w == pytest.approx(87.2e3)
        assert smaller.cop_nominal == PLANT.cop_nominal

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=0)
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=1.0, cop_nominal=0)
        with pytest.raises(ConfigurationError):
            ChillerPlant(capacity_w=1.0,
                         part_load_coefficients=(0.5, 0.5, 0.5))
        with pytest.raises(ConfigurationError):
            PLANT.part_load_ratio(np.array([-1.0]))
        with pytest.raises(ConfigurationError):
            PLANT.energy_kwh([1.0], 0.0)


class TestElectricityTariff:
    def test_peak_window_classification(self):
        tariff = ElectricityTariff(peak_window_h=(12.0, 22.0))
        times = np.array([0.0, 11.9, 12.0, 21.9, 22.0, 36.0])
        assert list(tariff.is_peak(times)) == [False, False, True, True,
                                               False, True]

    def test_rates(self):
        tariff = ElectricityTariff()
        rates = tariff.rate_usd_per_kwh(np.array([3.0, 15.0]))
        assert rates[0] == tariff.off_peak_rate_usd_per_kwh
        assert rates[1] == tariff.peak_rate_usd_per_kwh

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_window_h=(22.0, 12.0))
        with pytest.raises(ConfigurationError):
            ElectricityTariff(peak_rate_usd_per_kwh=-1.0)

    def test_cost_accounts_for_time_of_use(self):
        tariff = ElectricityTariff(peak_rate_usd_per_kwh=0.2,
                                   off_peak_rate_usd_per_kwh=0.1,
                                   peak_window_h=(12.0, 24.0))
        # Same energy, all-peak vs all-off-peak: 2x the cost.
        load = np.full(60, 50e3)
        hours_peak = np.linspace(12.0, 13.0, 60)
        hours_off = np.linspace(0.0, 1.0, 60)
        cost_peak = cooling_energy_cost_usd(PLANT, load, hours_peak,
                                            tariff, 60.0)
        cost_off = cooling_energy_cost_usd(PLANT, load, hours_off,
                                           tariff, 60.0)
        assert cost_peak == pytest.approx(2 * cost_off)

    def test_cost_rejects_misaligned_series(self):
        with pytest.raises(ConfigurationError):
            cooling_energy_cost_usd(PLANT, [1.0, 2.0], [0.0],
                                    ElectricityTariff(), 60.0)


class TestEnergyBill:
    def test_time_shifting_saves_money_at_equal_energy(self):
        tariff = ElectricityTariff(peak_window_h=(12.0, 24.0))
        hours = np.linspace(0.0, 24.0, 240, endpoint=False)
        # Baseline burns during the expensive half; VMT shifts half of
        # that energy into the cheap half.
        baseline = np.where(hours >= 12.0, 80e3, 20e3)
        vmt = np.where(hours >= 12.0, 50e3, 50e3)
        bill = compare_cooling_bills(PLANT, baseline, vmt, hours, tariff,
                                     360.0)
        assert bill.cost_savings_usd > 0
        assert bill.peak_energy_shifted

    def test_detects_energy_inflation(self):
        tariff = ElectricityTariff()
        hours = np.linspace(0.0, 24.0, 24, endpoint=False)
        baseline = np.full(24, 50e3)
        inflated = np.full(24, 90e3)
        bill = compare_cooling_bills(PLANT, baseline, inflated, hours,
                                     tariff, 3600.0)
        assert not bill.peak_energy_shifted

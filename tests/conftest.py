"""Shared fixtures for the test suite.

Most tests run on deliberately small clusters and short traces; the
integration tests that verify the paper's headline shapes use the full
two-day trace on 100 servers (the paper's own sweep size) and are the
slowest things in the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (SchedulerConfig, SimulationConfig, ThermalConfig,
                          TraceConfig, WaxConfig, paper_cluster_config)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A 20-server cluster with a short 6-hour trace for fast tests."""
    return SimulationConfig(
        num_servers=20,
        trace=TraceConfig(duration_hours=6.0, step_seconds=60.0),
        seed=123,
    )


@pytest.fixture
def paper_config() -> SimulationConfig:
    """The paper's 100-server sweep configuration."""
    return paper_cluster_config(num_servers=100, grouping_value=22.0,
                                seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for tests that need controlled randomness."""
    return np.random.default_rng(42)

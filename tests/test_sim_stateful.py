"""Stateful property test for the discrete-event kernel.

Hypothesis drives a random interleaving of schedule / cancel / run-until
operations against the real :class:`~repro.sim.engine.Engine` and a
naive reference model (a plain list), checking that dispatch order and
the clock always agree.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.sim import Engine


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.fired = []
        # Reference model: list of (time, seq, id, cancelled).
        self.expected = []
        self.seq = 0

    events = Bundle("events")

    @rule(target=events, delay=st.floats(min_value=0.0, max_value=100.0))
    def schedule(self, delay):
        self.seq += 1
        ident = self.seq
        time = self.engine.now + delay
        event = self.engine.schedule_after(
            delay, lambda ev, i=ident: self.fired.append(i))
        self.expected.append([time, self.seq, ident, False])
        return (event, ident)

    @rule(item=events)
    def cancel(self, item):
        event, ident = item
        event.cancel()
        for record in self.expected:
            if record[2] == ident:
                record[3] = True

    def _advance(self, deadline, method):
        method(deadline)
        due = sorted((r for r in self.expected
                      if r[0] <= deadline and not r[3]),
                     key=lambda r: (r[0], r[1]))
        expected_ids = [r[2] for r in due]
        already = len(self.fired) - len(expected_ids)
        # Remove dispatched records from the pending model.
        self.expected = [r for r in self.expected
                         if r[0] > deadline or r[3]]
        assert self.fired[already:] == expected_ids
        assert self.engine.now == deadline

    @rule(advance=st.floats(min_value=0.0, max_value=50.0))
    def run_until(self, advance):
        self._advance(self.engine.now + advance, self.engine.run_until)

    @rule(advance=st.floats(min_value=0.0, max_value=50.0))
    def advance_to(self, advance):
        # The live-streaming spelling must honor the identical contract
        # under arbitrary interleaving with run_until.
        self._advance(self.engine.now + advance, self.engine.advance_to)

    @invariant()
    def clock_never_runs_backwards(self):
        assert self.engine.now >= 0.0


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = __import__("hypothesis").settings(
    max_examples=30, stateful_step_count=30, deadline=None)


class TestAdvanceStopSnapshotInterleave:
    """Regression: the PR 5 stop()/clock-jump contract must hold across
    many ``advance_to`` re-entries, interleaved with snapshot/resume."""

    def test_stop_holds_clock_per_call_across_reentries(self):
        engine = Engine()
        fired = []
        # One stopper and one bystander per 10s slice, for 10 slices.
        for k in range(10):
            t = 10.0 * k + 1.0
            engine.schedule_at(
                t, lambda ev, k=k: (fired.append(("stop", k)),
                                    engine.stop()))
            engine.schedule_at(
                t + 1.0, lambda ev, k=k: fired.append(("after", k)))
        for k in range(10):
            end = 10.0 * (k + 1)
            engine.advance_to(end)
            # The stopper halted this slice: the clock must sit at the
            # stop event, never jump past the undispatched bystander.
            assert engine.now == 10.0 * k + 1.0
            assert fired[-1] == ("stop", k)
            # Re-advancing to the same end drains what the stop left.
            engine.advance_to(end)
            assert engine.now == end
            assert fired[-1] == ("after", k)
        assert len(fired) == 20

    def test_snapshot_resume_interleaved_with_advance_and_stop(self):
        def build(record):
            engine = Engine()
            for k in range(6):
                t = 5.0 * k + 0.5
                engine.schedule_at(
                    t, lambda ev, k=k: record.append(k))
            return engine

        straight_fired = []
        straight = build(straight_fired)
        straight.advance_to(30.0)

        fired = []
        engine = build(fired)
        engine.advance_to(7.0)
        engine.stop()  # no-op outside the loop; must not corrupt state
        engine.advance_to(12.0)
        state = engine.state_dict()
        assert state["now_s"] == 12.0

        resumed_fired = list(fired)
        resumed = Engine()
        resumed.load_state_dict(state)
        # Snapshots are only taken at quiescent boundaries: the owner
        # re-schedules its pending events, exactly like the tick process.
        for k in range(6):
            t = 5.0 * k + 0.5
            if t > resumed.now:
                resumed.schedule_at(
                    t, lambda ev, k=k: resumed_fired.append(k))
        resumed.advance_to(21.0)
        resumed.advance_to(21.0)  # re-entry at the same boundary: no-op
        resumed.advance_to(30.0)
        assert resumed_fired == straight_fired
        assert resumed.now == straight.now == 30.0

"""Stateful property test for the discrete-event kernel.

Hypothesis drives a random interleaving of schedule / cancel / run-until
operations against the real :class:`~repro.sim.engine.Engine` and a
naive reference model (a plain list), checking that dispatch order and
the clock always agree.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.sim import Engine


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.fired = []
        # Reference model: list of (time, seq, id, cancelled).
        self.expected = []
        self.seq = 0

    events = Bundle("events")

    @rule(target=events, delay=st.floats(min_value=0.0, max_value=100.0))
    def schedule(self, delay):
        self.seq += 1
        ident = self.seq
        time = self.engine.now + delay
        event = self.engine.schedule_after(
            delay, lambda ev, i=ident: self.fired.append(i))
        self.expected.append([time, self.seq, ident, False])
        return (event, ident)

    @rule(item=events)
    def cancel(self, item):
        event, ident = item
        event.cancel()
        for record in self.expected:
            if record[2] == ident:
                record[3] = True

    @rule(advance=st.floats(min_value=0.0, max_value=50.0))
    def run_until(self, advance):
        deadline = self.engine.now + advance
        self.engine.run_until(deadline)
        due = sorted((r for r in self.expected
                      if r[0] <= deadline and not r[3]),
                     key=lambda r: (r[0], r[1]))
        expected_ids = [r[2] for r in due]
        already = len(self.fired) - len(expected_ids)
        # Remove dispatched records from the pending model.
        self.expected = [r for r in self.expected
                         if r[0] > deadline or r[3]]
        assert self.fired[already:] == expected_ids
        assert self.engine.now == deadline

    @invariant()
    def clock_never_runs_backwards(self):
        assert self.engine.now >= 0.0


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = __import__("hypothesis").settings(
    max_examples=30, stateful_step_count=30, deadline=None)

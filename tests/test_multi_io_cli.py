"""Tests for the multi-cluster simulation, result I/O, and the CLI."""

import numpy as np
import pytest

from repro.cluster.multi import MultiClusterSimulation, run_datacenter
from repro.cli import build_parser, main
from repro.config import SimulationConfig, TraceConfig
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.io import load_result, save_result
from repro.cluster.simulation import run_simulation
from repro.core import RoundRobinScheduler


def tiny_config(**kwargs):
    return SimulationConfig(
        num_servers=kwargs.pop("num_servers", 10),
        trace=TraceConfig(duration_hours=4.0),
        seed=kwargs.pop("seed", 5), **kwargs)


class TestMultiCluster:
    def test_aggregates_cooling_load(self):
        result = run_datacenter(tiny_config(), 3)
        assert result.num_clusters == 3
        summed = sum(r.cooling_load_w for r in result.cluster_results)
        assert np.allclose(result.total_cooling_load_w, summed)

    def test_clusters_get_distinct_seeds(self):
        result = run_datacenter(tiny_config(), 2)
        a, b = result.cluster_results
        assert a.config.seed != b.config.seed

    def test_stagger_flattens_the_aggregate_peak(self):
        config = SimulationConfig(num_servers=20, seed=3)
        aligned = run_datacenter(config, 3, stagger_hours=0.0)
        staggered = run_datacenter(config, 3, stagger_hours=8.0)
        assert staggered.peak_cooling_load_w < aligned.peak_cooling_load_w

    def test_per_cluster_policies(self):
        sim = MultiClusterSimulation(
            tiny_config(), 2, policies=("round-robin", "vmt-ta"))
        result = sim.run()
        names = [r.scheduler_name for r in result.cluster_results]
        assert names[0] == "round-robin"
        assert names[1].startswith("vmt-ta")

    def test_peak_reduction_vs(self):
        base = run_datacenter(tiny_config(), 2)
        assert base.peak_reduction_vs(base) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiClusterSimulation(tiny_config(), 0)
        with pytest.raises(ConfigurationError):
            MultiClusterSimulation(tiny_config(), 3,
                                   policies=("a", "b"))

    def test_run_failure_surfaces_as_simulation_error(self, monkeypatch):
        # Regression: a RunFailure row must become a SimulationError
        # naming the cluster, its policy, and the captured traceback --
        # not a bare AttributeError off the failure object.
        from repro.perf import runner as runner_mod

        def boom(spec):
            raise ValueError("injected cluster failure")

        monkeypatch.setattr(runner_mod, "execute_spec", boom)
        sim = MultiClusterSimulation(tiny_config(), 2,
                                     policies=("round-robin", "vmt-ta"))
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "cluster 0" in message
        assert "cluster 1" in message
        assert "round-robin" in message
        assert "vmt-ta" in message
        assert "ValueError: injected cluster failure" in message
        assert "Traceback" in message

    def test_killed_worker_recovers_bit_identically(self, monkeypatch):
        # A SIGKILLed pool worker must not change results: the bounded
        # serial retry reruns the lost job in the parent (where the
        # kill hook is inert) and fingerprints stay identical.
        config = tiny_config()
        serial = run_datacenter(config, 2, max_workers=1)
        monkeypatch.setenv("REPRO_KILL_RUN", "cluster-0[round-robin]")
        recovered = run_datacenter(config, 2, max_workers=2)
        assert ([r.fingerprint() for r in recovered.cluster_results]
                == [r.fingerprint() for r in serial.cluster_results])
        assert np.array_equal(recovered.total_cooling_load_w,
                              serial.total_cooling_load_w)

    def test_stagger_full_trace_length_is_identity(self):
        # np.roll wraps: shifting by the whole trace length is a no-op,
        # so stagger == duration reproduces the unstaggered fingerprints.
        config = tiny_config()
        duration = config.trace.duration_hours
        plain = run_datacenter(config, 2, stagger_hours=0.0)
        wrapped = run_datacenter(config, 2, stagger_hours=duration)
        assert ([r.fingerprint() for r in wrapped.cluster_results]
                == [r.fingerprint() for r in plain.cluster_results])

    def test_negative_stagger_wraps_backwards(self):
        # Rolling back one hour is the same as rolling forward
        # duration - 1 hours.
        config = tiny_config()
        duration = config.trace.duration_hours
        back = run_datacenter(config, 2, stagger_hours=-1.0)
        forward = run_datacenter(config, 2, stagger_hours=duration - 1.0)
        assert ([r.fingerprint() for r in back.cluster_results]
                == [r.fingerprint() for r in forward.cluster_results])

    def test_staggered_clusters_share_time_axis(self):
        # Staggering shifts the *trace contents*, not the clock: every
        # cluster reports the same times_s and the aggregate rides on it.
        result = run_datacenter(tiny_config(), 3, stagger_hours=2.0)
        for cluster in result.cluster_results:
            assert np.array_equal(cluster.times_s, result.times_s)
        assert len(result.total_cooling_load_w) == len(result.times_s)


class TestResultIO:
    def test_round_trip(self, tmp_path):
        config = tiny_config()
        result = run_simulation(config, RoundRobinScheduler(config))
        path = save_result(result, tmp_path / "run")
        assert path.suffix == ".npz"
        loaded = load_result(path)
        assert loaded.scheduler_name == result.scheduler_name
        assert loaded.config == result.config
        assert np.allclose(loaded.cooling_load_w, result.cooling_load_w)
        assert np.allclose(loaded.temp_heatmap, result.temp_heatmap)

    def test_round_trip_without_heatmaps(self, tmp_path):
        config = tiny_config()
        result = run_simulation(config, RoundRobinScheduler(config),
                                record_heatmaps=False)
        loaded = load_result(save_result(result, tmp_path / "lean.npz"))
        assert loaded.temp_heatmap is None
        assert loaded.peak_cooling_load_w == pytest.approx(
            result.peak_cooling_load_w)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_result(tmp_path / "nope.npz")

    def test_non_result_file_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ReproError):
            load_result(path)


class TestCLI:
    def test_parser_builds_and_knows_subcommands(self):
        parser = build_parser()
        for command in ("run", "compare", "sweep", "trace", "heatmap",
                        "tco", "info"):
            args = parser.parse_args(
                [command] if command in ("trace", "info")
                else [command, "--servers", "10"])
            assert args.command == command

    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WebSearch" in out
        assert "vmt-wa" in out

    def test_tco_with_fixed_reduction(self, capsys):
        assert main(["tco", "--reduction", "0.128"]) == 0
        out = capsys.readouterr().out
        assert "$2,688,000" in out
        assert "7,339" in out

    def test_run_saves_result(self, tmp_path, capsys):
        target = tmp_path / "cli_run"
        code = main(["run", "--servers", "10", "--policy", "round-robin",
                     "--save", str(target)])
        assert code == 0
        assert (tmp_path / "cli_run.npz").exists()
        out = capsys.readouterr().out
        assert "peak_cooling_kw" in out

    def test_trace_prints_landmarks(self, capsys):
        assert main(["trace", "--servers", "20", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "peaks at hours" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

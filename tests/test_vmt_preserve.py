"""Tests for the wax-preserving VMT extension (Section III future work)."""

import numpy as np
import pytest

from repro.cluster.state import ClusterView
from repro.config import SimulationConfig
from repro.core import VMTPreserveScheduler, make_scheduler
from repro.core.scheduler import NUM_WORKLOADS
from repro.errors import ConfigurationError
from repro.workloads.workload import COLD_INDICES, HOT_INDICES

CONFIG = SimulationConfig(num_servers=10)


def view_for(config, melt=None, temps=None):
    n = config.num_servers
    return ClusterView(
        time_s=0.0, num_servers=n, cores_per_server=config.server.cores,
        air_temp_c=np.full(n, 25.0) if temps is None else np.asarray(temps,
                                                                     float),
        wax_melt_estimate=np.zeros(n) if melt is None else np.asarray(melt,
                                                                      float),
        melt_temp_c=config.wax.melt_temp_c)


def demand(hot=0, cold=0):
    vector = np.zeros(NUM_WORKLOADS, dtype=np.int64)
    if hot:
        vector[HOT_INDICES[0]] = hot
    if cold:
        vector[COLD_INDICES[0]] = cold
    return vector


class TestPreservePhase:
    def test_low_load_dilutes_across_whole_fleet(self):
        scheduler = VMTPreserveScheduler(CONFIG)
        placement = scheduler.place(demand(hot=60, cold=40),
                                    view_for(CONFIG))
        per_server = placement.allocation.sum(axis=1)
        # All ten servers share the load evenly -- no hot concentration.
        assert per_server.max() - per_server.min() <= 1

    def test_melted_servers_absorb_hot_load_first(self):
        scheduler = VMTPreserveScheduler(CONFIG)
        melt = np.zeros(10)
        melt[3] = 0.99
        placement = scheduler.place(demand(hot=40, cold=0),
                                    view_for(CONFIG, melt=melt))
        # The melted server is packed to capacity before anyone else.
        assert placement.allocation[3].sum() == CONFIG.server.cores

    def test_factory_name(self):
        scheduler = make_scheduler("vmt-preserve", CONFIG)
        assert "preserve" in scheduler.name

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            VMTPreserveScheduler(CONFIG, release_utilization=0.0)


class TestReleasePhase:
    def test_high_load_switches_to_wax_aware_grouping(self):
        scheduler = VMTPreserveScheduler(CONFIG, release_utilization=0.5)
        placement = scheduler.place(demand(hot=120, cold=80),
                                    view_for(CONFIG))
        # Release phase groups hot jobs into the Eq. 1 hot group.
        hot_ids = np.flatnonzero(placement.hot_group_mask)
        hot_col = HOT_INDICES[0]
        assert placement.allocation[hot_ids, hot_col].sum() == 120

    def test_hysteresis_keeps_release_mode_through_descent(self):
        scheduler = VMTPreserveScheduler(CONFIG, release_utilization=0.5)
        # Cross the release threshold...
        scheduler.place(demand(hot=120, cold=80), view_for(CONFIG))
        assert scheduler._released
        # ...then drop below it but above the re-arm floor: still released.
        scheduler.place(demand(hot=80, cold=50), view_for(CONFIG))
        assert scheduler._released
        # Deep off-peak re-arms the preserve mode.
        scheduler.place(demand(hot=10, cold=10), view_for(CONFIG))
        assert not scheduler._released

    def test_reset_rearms(self):
        scheduler = VMTPreserveScheduler(CONFIG, release_utilization=0.5)
        scheduler.place(demand(hot=120, cold=80), view_for(CONFIG))
        scheduler.reset()
        assert not scheduler._released


class TestPreserveEndToEnd:
    def test_beats_ta_on_a_warm_shoulder_day(self):
        """The motivating scenario: a long warm shoulder would exhaust
        VMT-TA's wax before the true peak; preservation keeps it."""
        from repro import paper_cluster_config, run_simulation
        from repro.workloads.trace import TwoDayTrace

        shoulder = (
            (0.0, 0.33), (3.0, 0.10), (5.0, 0.00), (8.0, 0.45),
            (10.0, 0.80), (17.0, 0.82), (20.0, 1.00), (21.0, 0.68),
            (22.0, 0.48), (24.0, 0.26), (27.0, 0.06), (29.0, 0.00),
            (32.0, 0.45), (34.0, 0.80), (43.0, 0.82), (46.0, 1.00),
            (46.5, 0.80), (47.0, 0.58), (48.0, 0.45))
        config = paper_cluster_config(num_servers=50, grouping_value=22.0)
        trace = TwoDayTrace(config.trace,
                            shape_points=shoulder).generate(50)
        rr = run_simulation(config, make_scheduler("round-robin", config),
                            trace=trace, record_heatmaps=False)
        ta = run_simulation(config, make_scheduler("vmt-ta", config),
                            trace=trace, record_heatmaps=False)
        preserve = run_simulation(
            config, make_scheduler("vmt-preserve", config), trace=trace,
            record_heatmaps=False)
        assert preserve.peak_reduction_vs(rr) > \
            ta.peak_reduction_vs(rr) + 0.02
